"""Unit tests for the continuous noise laws."""

import numpy as np
import pytest

from repro.distributions import GammaNormVector, GaussianNoise, LaplaceNoise
from repro.exceptions import ValidationError


class TestLaplaceNoise:
    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValidationError):
            LaplaceNoise(0.0)

    def test_log_density_at_zero(self):
        noise = LaplaceNoise(scale=2.0)
        assert noise.log_density(0.0) == pytest.approx(-np.log(4.0))

    def test_log_density_symmetric(self):
        noise = LaplaceNoise(scale=1.5)
        assert noise.log_density(3.0) == pytest.approx(noise.log_density(-3.0))

    def test_density_integrates_to_one(self):
        noise = LaplaceNoise(scale=0.7)
        xs = np.linspace(-30, 30, 200_001)
        densities = np.exp(noise.log_density(xs))
        assert np.trapezoid(densities, xs) == pytest.approx(1.0, abs=1e-6)

    def test_variance_matches_samples(self):
        noise = LaplaceNoise(scale=1.0)
        draws = noise.sample(size=200_000, random_state=0)
        assert np.var(draws) == pytest.approx(noise.variance(), rel=0.05)

    def test_cdf_endpoints(self):
        noise = LaplaceNoise(scale=1.0)
        assert noise.cdf(0.0) == pytest.approx(0.5)
        assert noise.cdf(-50.0) == pytest.approx(0.0, abs=1e-12)
        assert noise.cdf(50.0) == pytest.approx(1.0, abs=1e-12)

    def test_log_density_ratio_is_lipschitz_in_shift(self):
        # The ε-DP property of the Laplace mechanism is exactly:
        # |log f(x - a) - log f(x - b)| <= |a - b| / scale.
        noise = LaplaceNoise(scale=2.0)
        xs = np.linspace(-5, 5, 101)
        ratio = noise.log_density(xs - 0.7) - noise.log_density(xs)
        assert np.abs(ratio).max() <= 0.7 / 2.0 + 1e-12


class TestGaussianNoise:
    def test_log_density_is_normal(self):
        noise = GaussianNoise(sigma=2.0)
        expected = -0.5 * np.log(2 * np.pi * 4.0)
        assert noise.log_density(0.0) == pytest.approx(expected)

    def test_variance(self):
        assert GaussianNoise(sigma=3.0).variance() == pytest.approx(9.0)

    def test_sample_moments(self):
        draws = GaussianNoise(sigma=1.0).sample(size=100_000, random_state=1)
        assert np.mean(draws) == pytest.approx(0.0, abs=0.02)
        assert np.std(draws) == pytest.approx(1.0, rel=0.02)


class TestGammaNormVector:
    def test_rejects_bad_dimension(self):
        with pytest.raises(ValidationError):
            GammaNormVector(dimension=0, scale=1.0)

    def test_sample_shape(self):
        noise = GammaNormVector(dimension=3, scale=1.0)
        single = noise.sample(random_state=0)
        batch = noise.sample(size=5, random_state=0)
        assert single.shape == (3,)
        assert batch.shape == (5, 3)

    def test_norm_is_gamma_distributed(self):
        d, scale = 4, 0.5
        noise = GammaNormVector(dimension=d, scale=scale)
        draws = noise.sample(size=100_000, random_state=2)
        norms = np.linalg.norm(draws, axis=1)
        # Gamma(d, scale): mean d*scale, variance d*scale^2.
        assert norms.mean() == pytest.approx(d * scale, rel=0.02)
        assert norms.var() == pytest.approx(d * scale**2, rel=0.05)

    def test_direction_is_isotropic(self):
        noise = GammaNormVector(dimension=2, scale=1.0)
        draws = noise.sample(size=100_000, random_state=3)
        assert np.abs(draws.mean(axis=0)).max() < 0.02

    def test_log_density_depends_only_on_norm(self):
        noise = GammaNormVector(dimension=3, scale=1.0)
        a = noise.log_density(np.array([1.0, 0.0, 0.0]))
        b = noise.log_density(np.array([0.0, 0.0, -1.0]))
        assert a == pytest.approx(b)

    def test_log_density_ratio_matches_norm_gap(self):
        # The ε-DP property of the vector mechanism: density ratio between
        # shifts a and b is exp((||b|| - ||a||)/scale) <= exp(||a - b||/scale).
        noise = GammaNormVector(dimension=2, scale=2.0)
        v = np.array([0.3, -0.4])
        w = np.array([1.3, -0.4])
        gap = noise.log_density(v) - noise.log_density(w)
        expected = (np.linalg.norm(w) - np.linalg.norm(v)) / 2.0
        assert gap == pytest.approx(expected)

    def test_log_density_rejects_wrong_dimension(self):
        noise = GammaNormVector(dimension=3, scale=1.0)
        with pytest.raises(ValidationError):
            noise.log_density(np.array([1.0, 2.0]))

    def test_density_normalized_in_2d(self):
        # Integrate C * exp(-r/scale) over R^2 in polar coordinates.
        noise = GammaNormVector(dimension=2, scale=0.8)
        rs = np.linspace(1e-9, 40, 400_001)
        log_dens = noise.log_density(
            np.stack([rs, np.zeros_like(rs)], axis=1)
        )
        integrand = np.exp(log_dens) * 2 * np.pi * rs
        assert np.trapezoid(integrand, rs) == pytest.approx(1.0, abs=1e-4)
