"""Unit tests for the hypothesis-testing view of DP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.mechanisms import RandomizedResponse
from repro.privacy.hypothesis_testing import (
    dp_advantage_bound,
    dp_tradeoff_curve,
    membership_advantage,
    optimal_attack_roc,
    verify_tradeoff_dominance,
)


def simplex(size: int):
    return st.lists(st.floats(1e-4, 1.0), min_size=size, max_size=size).map(
        lambda ws: np.array(ws) / sum(ws)
    )


class TestDpTradeoffCurve:
    def test_endpoints(self):
        # At α = 0 DP forces zero power (any rejection set with q-measure 0
        # must have p-measure 0 too), so β(0) = 1; at α = 1, β = 0.
        betas = dp_tradeoff_curve(1.0, [0.0, 1.0])
        assert betas[0] == pytest.approx(1.0)
        assert betas[1] == pytest.approx(0.0)

    def test_interior_value(self):
        # At moderate α the binding constraint is 1 - e^ε·α.
        assert dp_tradeoff_curve(1.0, [0.2])[0] == pytest.approx(
            1.0 - np.e * 0.2
        )

    def test_monotone_decreasing_in_alpha(self):
        alphas = np.linspace(0, 1, 50)
        betas = dp_tradeoff_curve(0.5, alphas)
        assert all(a >= b - 1e-12 for a, b in zip(betas, betas[1:]))

    def test_stronger_privacy_higher_curve(self):
        alphas = np.linspace(0.01, 0.99, 20)
        strict = dp_tradeoff_curve(0.1, alphas)
        loose = dp_tradeoff_curve(3.0, alphas)
        assert np.all(strict >= loose)

    def test_rejects_bad_alphas(self):
        with pytest.raises(ValidationError):
            dp_tradeoff_curve(1.0, [-0.1])


class TestAdvantageBound:
    def test_formula(self):
        assert dp_advantage_bound(np.log(3)) == pytest.approx(0.5)

    def test_small_epsilon_small_advantage(self):
        assert dp_advantage_bound(0.01) < 0.006

    def test_large_epsilon_approaches_one(self):
        assert dp_advantage_bound(20.0) == pytest.approx(1.0, abs=1e-8)


class TestOptimalAttackRoc:
    def test_identical_laws_no_advantage(self):
        p = DiscreteDistribution([0, 1], [0.5, 0.5])
        roc = optimal_attack_roc(p, p)
        assert roc.advantage == pytest.approx(0.0)
        # The ROC is the diagonal: beta = 1 - alpha.
        assert roc.beta_at(0.3) == pytest.approx(0.7)

    def test_disjoint_laws_perfect_attack(self):
        p = DiscreteDistribution([0, 1], [1.0, 0.0])
        q = DiscreteDistribution([0, 1], [0.0, 1.0])
        roc = optimal_attack_roc(p, q)
        assert roc.advantage == pytest.approx(1.0)
        assert roc.beta_at(0.0) == pytest.approx(0.0)

    def test_advantage_equals_total_variation(self):
        p = DiscreteDistribution([0, 1, 2], [0.6, 0.3, 0.1])
        q = DiscreteDistribution([0, 1, 2], [0.2, 0.3, 0.5])
        assert membership_advantage(p, q) == pytest.approx(
            p.total_variation_distance(q)
        )

    @settings(max_examples=40)
    @given(simplex(4), simplex(4))
    def test_advantage_tv_identity_random(self, p_probs, q_probs):
        p = DiscreteDistribution(range(4), p_probs)
        q = DiscreteDistribution(range(4), q_probs)
        assert membership_advantage(p, q) == pytest.approx(
            p.total_variation_distance(q), abs=1e-10
        )

    def test_neyman_pearson_beats_any_deterministic_test(self):
        rng = np.random.default_rng(0)
        p_probs = rng.dirichlet(np.ones(5))
        q_probs = rng.dirichlet(np.ones(5))
        p = DiscreteDistribution(range(5), p_probs)
        q = DiscreteDistribution(range(5), q_probs)
        roc = optimal_attack_roc(p, q)
        # Every deterministic rejection set must lie on/above the curve.
        for mask in range(32):
            s = [bool(mask & (1 << i)) for i in range(5)]
            alpha = float(q_probs[s].sum())
            beta = 1.0 - float(p_probs[s].sum())
            assert beta >= roc.beta_at(alpha) - 1e-9


class TestDominanceVerification:
    def test_randomized_response_exactly_on_the_curve(self):
        """RR saturates ε-DP, so its ROC touches the DP tradeoff bound."""
        epsilon = 1.0
        rr = RandomizedResponse(epsilon)
        t = rr.truth_probability
        p = DiscreteDistribution([0, 1], [t, 1 - t])
        q = DiscreteDistribution([0, 1], [1 - t, t])
        assert verify_tradeoff_dominance(p, q, epsilon)
        roc = optimal_attack_roc(p, q)
        # Advantage attains the DP bound exactly.
        assert roc.advantage == pytest.approx(dp_advantage_bound(epsilon))

    def test_gibbs_channel_dominates_with_slack(self):
        from repro.core import GibbsEstimator
        from repro.learning import BernoulliTask, PredictorGrid

        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        epsilon = 1.0
        est = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=2)
        p = est.output_distribution([0, 0])
        q = est.output_distribution([0, 1])
        assert verify_tradeoff_dominance(p, q, epsilon)
        # And with strict slack: the Gibbs attack is weaker than allowed.
        assert membership_advantage(p, q) < dp_advantage_bound(epsilon)

    def test_violation_detected(self):
        """A pair of laws too far apart for the claimed ε must fail."""
        p = DiscreteDistribution([0, 1], [0.95, 0.05])
        q = DiscreteDistribution([0, 1], [0.05, 0.95])
        assert not verify_tradeoff_dominance(p, q, epsilon=0.5)
