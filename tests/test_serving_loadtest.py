"""Load-test harness tests: determinism, batching wins, budget safety.

The acceptance bar for the serving PR lives here: identical reports
across runs (modulo wall-clock fields), a ≥5× batching speedup at 1 000
simulated clients, and zero tenant over-spend under every workload.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.serving import (
    LOADTEST_SCHEMA_VERSION,
    LoadTestSpec,
    deterministic_view,
    measure_speedup,
    run_loadtest,
    validate_report,
    write_report,
)

SMOKE = LoadTestSpec(
    loadtest_id="smoke", clients=16, requests_per_client=4, tenants=3, seed=7
)


class TestDeterminism:
    def test_reports_are_bit_identical_modulo_wall_clock(self):
        first = run_loadtest(SMOKE)
        second = run_loadtest(SMOKE)
        assert deterministic_view(first) == deterministic_view(second)
        # Wall-clock fields exist but are excluded from the comparison.
        assert "seconds" in first["wall_clock"]

    def test_seed_changes_the_outputs(self):
        import dataclasses

        first = run_loadtest(SMOKE)
        second = run_loadtest(dataclasses.replace(SMOKE, seed=8))
        assert (
            first["deterministic"]["outputs_digest"]
            != second["deterministic"]["outputs_digest"]
        )

    def test_batched_and_unbatched_serve_identical_outputs(self):
        """Coalescing is invisible: the stream-equivalence contract makes
        the batched fleet's outputs bit-identical to unbatched serving.

        One request per client, so the submission order — and hence the
        order each tenant's stream is consumed in — is the same in both
        modes. (Multi-round clients pace their *later* submissions by
        completion times, which batching legitimately shifts; the
        per-batch equivalence for a fixed arrival order is pinned down in
        the service-level suite.)"""
        import dataclasses

        single_round = dataclasses.replace(
            SMOKE, clients=64, requests_per_client=1
        )
        batched, unbatched, _ = measure_speedup(single_round)
        assert (
            batched["deterministic"]["outputs_digest"]
            == unbatched["deterministic"]["outputs_digest"]
        )
        assert (
            batched["deterministic"]["outcomes"]
            == unbatched["deterministic"]["outcomes"]
        )


class TestBatchingThroughput:
    def test_batching_wins_5x_at_1000_clients(self):
        """The acceptance criterion: coalescing must buy ≥5× throughput
        on a mechanism whose batch kernel amortizes per-release work
        (the exponential mechanism tilts once per flush)."""
        spec = LoadTestSpec(
            loadtest_id="throughput",
            clients=1000,
            requests_per_client=1,
            tenants=4,
            seed=3,
            mechanism="exponential",
            candidates=256,
            epsilon=0.05,
            budget_epsilon=100.0,
            mean_think=0.01,
            flush_window=0.05,
            max_batch=1024,
        )
        batched, unbatched, speedup = measure_speedup(spec)
        assert speedup >= 5.0, (
            f"batching only bought {speedup:.2f}x "
            f"(batched {batched['wall_clock']['seconds']:.4f}s, "
            f"unbatched {unbatched['wall_clock']['seconds']:.4f}s)"
        )
        # Far fewer flushes, same releases.
        assert (
            batched["deterministic"]["serving"]["flushes"]
            < unbatched["deterministic"]["serving"]["flushes"] / 5
        )
        assert (
            batched["deterministic"]["serving"]["released"]
            == unbatched["deterministic"]["serving"]["released"]
            == 1000
        )


class TestBudgetSafety:
    def test_zero_over_spend_even_under_refusal_pressure(self):
        """Demand exceeding every tenant budget must produce refusals,
        never overshoot."""
        spec = LoadTestSpec(
            loadtest_id="pressure",
            clients=8,
            requests_per_client=20,
            tenants=2,
            seed=5,
            epsilon=0.05,
            budget_epsilon=1.0,
            shards=4,
        )
        report = run_loadtest(spec)
        deterministic = report["deterministic"]
        assert deterministic["serving"]["refusals"] > 0
        assert deterministic["outcomes"]["refused"] > 0
        for tenant in deterministic["tenants"]:
            assert not tenant["over_spend"]
            assert tenant["spent_epsilon"] <= tenant["budget_epsilon"] * (
                1 + 1e-9
            )

    def test_timeouts_refund_everything(self):
        """A timeout shorter than the flush window abandons every queued
        request; all reservations must roll back to zero spend."""
        spec = LoadTestSpec(
            loadtest_id="timeouts",
            clients=6,
            requests_per_client=2,
            tenants=2,
            seed=9,
            mean_think=0.0,
            flush_window=0.5,
            request_timeout=0.01,
        )
        report = run_loadtest(spec)
        deterministic = report["deterministic"]
        assert deterministic["outcomes"] == {"timeout": 12}
        assert deterministic["serving"]["timeouts"] == 12
        assert deterministic["serving"]["released"] == 0
        for tenant in deterministic["tenants"]:
            assert tenant["spent_epsilon"] == 0.0


class TestReportSchema:
    def test_write_and_validate_roundtrip(self, tmp_path):
        report = run_loadtest(SMOKE)
        path = write_report(report, tmp_path)
        assert path.name == "LOADTEST_smoke.json"
        loaded = json.loads(path.read_text())
        validate_report(loaded)
        assert loaded["schema_version"] == LOADTEST_SCHEMA_VERSION
        assert deterministic_view(loaded) == deterministic_view(report)

    def test_validate_rejects_malformed_reports(self):
        with pytest.raises(ValidationError, match="must be a dict"):
            validate_report([])
        with pytest.raises(ValidationError, match="missing keys"):
            validate_report({"schema_version": LOADTEST_SCHEMA_VERSION})
        report = run_loadtest(SMOKE)
        report["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema_version"):
            validate_report(report)
        report["schema_version"] = LOADTEST_SCHEMA_VERSION
        del report["deterministic"]["outcomes"]
        with pytest.raises(ValidationError, match="missing keys"):
            validate_report(report)

    def test_spec_validation(self):
        with pytest.raises(ValidationError):
            LoadTestSpec(clients=0)
        with pytest.raises(ValidationError):
            LoadTestSpec(mechanism="gaussian")
        with pytest.raises(ValidationError):
            LoadTestSpec(mean_think=-1.0)
        with pytest.raises(ValidationError):
            run_loadtest({"clients": 4})


class TestCli:
    def test_loadtest_writes_report_and_exits_zero(self, tmp_path, capsys):
        code = main(
            [
                "loadtest", "--id", "cli", "--clients", "8", "--seed", "2",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "LOADTEST_cli.json").read_text())
        validate_report(payload)
        err = capsys.readouterr().err
        assert "LOADTEST_cli.json" in err

    def test_loadtest_compare_gates_against_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "perf_baseline.json"
        run = [
            "loadtest", "--id", "cli", "--clients", "4",
            "--requests-per-client", "2", "--seed", "2",
            "--output-dir", str(tmp_path),
        ]
        # Fresh run to learn the workload size, then bless a baseline.
        assert main(run) == 0
        report = json.loads((tmp_path / "LOADTEST_cli.json").read_text())
        baseline.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "note": "test",
                    "experiments": {
                        "LOADTEST_cli": {
                            "seconds": report["wall_clock"]["seconds"],
                            "configurations": 8,
                        }
                    },
                }
            )
        )
        assert main(run + ["--compare", str(baseline)]) == 0
        assert "loadtest perf OK" in capsys.readouterr().err
        # An absurdly fast blessed time must trip the gate.
        baseline.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "note": "test",
                    "experiments": {
                        "LOADTEST_cli": {
                            "seconds": 1e-9, "configurations": 8
                        }
                    },
                }
            )
        )
        assert main(run + ["--compare", str(baseline)]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_loadtest_compare_missing_entry_is_usage_error(self, tmp_path):
        baseline = tmp_path / "perf_baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "note": "test",
                    "experiments": {"E5": {"seconds": 1.0}},
                }
            )
        )
        code = main(
            [
                "loadtest", "--id", "cli", "--clients", "4", "--seed", "2",
                "--output-dir", str(tmp_path), "--compare", str(baseline),
            ]
        )
        assert code == 2

    def test_serve_demo_exits_zero(self, capsys):
        code = main(
            [
                "serve", "--clients", "4", "--requests-per-client", "2",
                "--mean-think", "0.001", "--flush-window", "0.005",
            ]
        )
        assert code == 0
        assert "Serving demo" in capsys.readouterr().out
