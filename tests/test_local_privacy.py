"""Unit tests for the DJW local-privacy workload (`repro.local_privacy`).

Mechanism-level: the ℓ2/ℓ∞ sampling channels are exactly on-sphere,
unbiased, and validated at the edges. Estimator-level: the locally
private mean/median land near the truth and the rate helpers order the
three trust models correctly. Information-level: `dpi_report` certifies
contraction and the DJW bound on a real channel, and rejects claims a
non-private channel cannot meet. Statistical ε-audits for these channels
live in the tier-2 `local`/`local-sampling` audit families.
"""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import LogisticLoss, TwoGaussiansTask
from repro.local_privacy import (
    KRandomizedResponse,
    L2SamplingMechanism,
    LInfSamplingMechanism,
    PrivateSGDClassifier,
    central_private_mean,
    central_private_rate,
    dpi_report,
    hypercube_unbiasing_constant,
    local_minimax_rate,
    locally_private_mean,
    locally_private_median,
    nonprivate_rate,
    sphere_unbiasing_constant,
)

EPSILON_EDGE_CASES = [0.0, -2.0, float("nan"), float("inf")]


class TestUnbiasingConstants:
    def test_sphere_known_values(self):
        assert sphere_unbiasing_constant(1) == pytest.approx(1.0)
        assert sphere_unbiasing_constant(2) == pytest.approx(2.0 / np.pi)
        assert sphere_unbiasing_constant(3) == pytest.approx(0.5)

    def test_hypercube_known_values(self):
        assert hypercube_unbiasing_constant(1) == pytest.approx(1.0)
        assert hypercube_unbiasing_constant(2) == pytest.approx(0.5)
        assert hypercube_unbiasing_constant(3) == pytest.approx(0.5)

    def test_constants_match_monte_carlo(self):
        """κ_d is E|⟨u, e₁⟩| over the uniform sphere/hypercube corners —
        check the closed forms against a direct average once."""
        rng = np.random.default_rng(0)
        d = 5
        g = rng.standard_normal((200_000, d))
        sphere = np.abs(g[:, 0] / np.linalg.norm(g, axis=1)).mean()
        assert sphere == pytest.approx(sphere_unbiasing_constant(d), abs=5e-3)
        corners = rng.choice([-1.0, 1.0], size=(200_000, d))
        cube = np.abs(corners.mean(axis=1)).mean()
        assert cube == pytest.approx(hypercube_unbiasing_constant(d), abs=5e-3)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_dimension_validated(self, bad):
        with pytest.raises(ValidationError):
            sphere_unbiasing_constant(bad)
        with pytest.raises(ValidationError):
            hypercube_unbiasing_constant(bad)


class TestL2SamplingMechanism:
    def test_reports_lie_on_the_scale_sphere(self):
        mech = L2SamplingMechanism(3, epsilon=1.0)
        rng = np.random.default_rng(1)
        records = rng.uniform(-0.5, 0.5, size=(200, 3))
        reports = mech.privatize_many(records, random_state=rng)
        norms = np.linalg.norm(reports, axis=1)
        assert norms == pytest.approx(mech.scale)

    def test_unbiased(self):
        mech = L2SamplingMechanism(3, epsilon=2.0)
        record = np.array([0.4, -0.3, 0.2])
        repeated = np.tile(record, (40_000, 1))
        reports = mech.privatize_many(repeated, random_state=0)
        assert reports.mean(axis=0) == pytest.approx(record, abs=0.06)

    def test_second_moment_is_scale_squared(self):
        mech = L2SamplingMechanism(8, epsilon=1.0)
        assert mech.per_record_second_moment() == pytest.approx(
            mech.scale**2
        )
        assert mech.predicted_mean_squared_error(100) == pytest.approx(
            mech.scale**2 / 100
        )

    def test_zero_record_is_valid(self):
        mech = L2SamplingMechanism(4, epsilon=1.0)
        report = mech.privatize(np.zeros(4), random_state=0)
        assert np.linalg.norm(report) == pytest.approx(mech.scale)

    def test_rejects_norm_above_one(self):
        mech = L2SamplingMechanism(3, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize(np.array([1.0, 1.0, 0.0]), random_state=0)

    def test_rejects_wrong_width(self):
        mech = L2SamplingMechanism(3, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize(np.array([0.1, 0.2]), random_state=0)
        with pytest.raises(ValidationError):
            mech.privatize_many(np.zeros((5, 2)), random_state=0)

    def test_rejects_non_finite_records(self):
        mech = L2SamplingMechanism(2, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize(np.array([np.nan, 0.0]), random_state=0)

    @pytest.mark.parametrize("epsilon", EPSILON_EDGE_CASES)
    def test_epsilon_boundaries_rejected(self, epsilon):
        with pytest.raises(ValidationError):
            L2SamplingMechanism(3, epsilon=epsilon)

    def test_dimension_validated(self):
        with pytest.raises(ValidationError):
            L2SamplingMechanism(0, epsilon=1.0)


class TestLInfSamplingMechanism:
    def test_reports_are_scaled_corners(self):
        mech = LInfSamplingMechanism(3, epsilon=1.0)
        rng = np.random.default_rng(2)
        records = rng.uniform(-1.0, 1.0, size=(200, 3))
        reports = mech.privatize_many(records, random_state=rng)
        assert np.abs(reports) == pytest.approx(mech.scale)

    def test_unbiased(self):
        mech = LInfSamplingMechanism(3, epsilon=2.0)
        record = np.array([0.6, -0.2, 0.9])
        repeated = np.tile(record, (40_000, 1))
        reports = mech.privatize_many(repeated, random_state=3)
        assert reports.mean(axis=0) == pytest.approx(record, abs=0.12)

    def test_one_bit_keep_probability(self):
        """At d = 1 the channel is rescaled binary randomized response:
        the report agrees in sign with the record w.p. 1/(1+e^{-ε})."""
        eps = 1.0
        mech = LInfSamplingMechanism(1, epsilon=eps)
        reports = mech.privatize_many(
            np.ones((20_000, 1)), random_state=4
        )
        agree = float((reports[:, 0] > 0).mean())
        assert agree == pytest.approx(1.0 / (1.0 + np.exp(-eps)), abs=0.01)

    def test_second_moment_is_scale_squared_times_d(self):
        mech = LInfSamplingMechanism(5, epsilon=1.0)
        assert mech.per_record_second_moment() == pytest.approx(
            5 * mech.scale**2
        )

    def test_rejects_coordinates_above_one(self):
        mech = LInfSamplingMechanism(3, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize(np.array([0.0, 1.5, 0.0]), random_state=0)

    @pytest.mark.parametrize("epsilon", EPSILON_EDGE_CASES)
    def test_epsilon_boundaries_rejected(self, epsilon):
        with pytest.raises(ValidationError):
            LInfSamplingMechanism(3, epsilon=epsilon)


class TestMeanEstimators:
    def _records(self, n=3_000, d=4, seed=5):
        rng = np.random.default_rng(seed)
        truth = np.zeros(d)
        truth[0] = 0.3
        noise = rng.uniform(-1.0, 1.0, size=(n, d))
        noise /= np.maximum(
            np.linalg.norm(noise, axis=1, keepdims=True) / 0.5, 1.0
        )
        return truth + noise, truth

    def test_local_mean_near_truth_but_noisier_than_central(self):
        records, truth = self._records()
        mechanism = L2SamplingMechanism(records.shape[1], epsilon=1.0)
        local = locally_private_mean(records, mechanism, random_state=6)
        central = central_private_mean(records, 1.0, random_state=6)
        local_error = np.linalg.norm(local - truth)
        central_error = np.linalg.norm(central - truth)
        assert local_error < 0.5
        assert central_error < local_error

    def test_local_mean_requires_local_mechanism(self):
        with pytest.raises(ValidationError):
            locally_private_mean(np.zeros((3, 2)), mechanism=object())

    def test_central_mean_validation(self):
        with pytest.raises(ValidationError):
            central_private_mean(np.zeros((2, 2)), epsilon=0.0)
        with pytest.raises(ValidationError):
            central_private_mean(np.full((2, 2), 2.0), epsilon=1.0)
        with pytest.raises(ValidationError):
            central_private_mean(np.zeros(3), epsilon=1.0)


class TestPrivateMedian:
    def test_estimate_near_truth_and_inside_bounds(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(-0.6, 0.8, size=2_000)
        estimate = locally_private_median(values, 8.0, random_state=rng)
        assert -1.0 <= estimate <= 1.0
        assert abs(estimate - np.median(values)) < 0.1

    def test_respects_custom_bounds(self):
        rng = np.random.default_rng(8)
        values = rng.uniform(2.0, 6.0, size=2_000)
        estimate = locally_private_median(
            values, 8.0, lower=0.0, upper=10.0, random_state=rng
        )
        assert 0.0 <= estimate <= 10.0
        assert abs(estimate - np.median(values)) < 0.6

    def test_validation(self):
        with pytest.raises(ValidationError):
            locally_private_median([], 1.0)
        with pytest.raises(ValidationError):
            locally_private_median([0.5, 2.0], 1.0)
        with pytest.raises(ValidationError):
            locally_private_median([0.5], 1.0, lower=1.0, upper=-1.0)
        with pytest.raises(ValidationError):
            locally_private_median([0.5], 0.0)
        with pytest.raises(ValidationError):
            locally_private_median([0.5, np.nan], 1.0)


class TestRates:
    def test_trust_ordering_at_small_epsilon(self):
        d, n, eps = 8, 1_000, 0.5
        assert nonprivate_rate(d, n) < central_private_rate(d, n, eps)
        assert central_private_rate(d, n, eps) < local_minimax_rate(d, n, eps)

    def test_local_rate_saturates_at_one(self):
        assert local_minimax_rate(100, 10, 0.1) == 1.0

    def test_rates_decrease_in_n_and_epsilon(self):
        d = 4
        assert local_minimax_rate(d, 2_000, 1.0) < local_minimax_rate(
            d, 1_000, 1.0
        )
        assert local_minimax_rate(d, 10_000, 2.0) < local_minimax_rate(
            d, 10_000, 1.0
        )
        assert central_private_rate(d, 2_000, 1.0) < central_private_rate(
            d, 1_000, 1.0
        )

    def test_central_penalty_vanishes_faster(self):
        """The reason to trust a curator: the excess over the
        non-private rate decays like 1/n² centrally but only 1/n
        locally, so the central/non-private ratio tends to 1."""
        d, eps = 4, 1.0
        small = central_private_rate(d, 100, eps) / nonprivate_rate(d, 100)
        large = central_private_rate(d, 100_000, eps) / nonprivate_rate(
            d, 100_000
        )
        assert large < small
        assert large == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValidationError):
            nonprivate_rate(0, 10)
        with pytest.raises(ValidationError):
            local_minimax_rate(3, 0, 1.0)
        with pytest.raises(ValidationError):
            central_private_rate(3, 10, 0.0)


class TestDpiReport:
    P = [0.7, 0.1, 0.1, 0.1]
    Q = [0.1, 0.1, 0.1, 0.7]

    def _channel(self, epsilon=1.0):
        return KRandomizedResponse(
            ("a", "b", "c", "d"), epsilon=epsilon
        ).channel_matrix()

    def test_theorem_holds_on_krr_channel(self):
        report = dpi_report(self._channel(), self.P, self.Q, 1.0)
        assert report["kl_contracts"]
        assert report["tv_contracts"]
        assert report["bound_holds"]
        assert report["output_kl"] < report["input_kl"]
        assert report["output_tv"] < report["input_tv"]
        assert report["symmetrized_output_kl"] <= report["djw_bound"]

    def test_identity_channel_fails_a_small_claim(self):
        """A non-private (identity) channel cannot meet the DJW bound
        for a small claimed ε — the report must say so."""
        report = dpi_report(np.eye(4), self.P, self.Q, 0.1)
        assert not report["bound_holds"]
        assert report["kl_contracts"]  # trivially, equality

    def test_bound_tightens_with_epsilon(self):
        loose = dpi_report(self._channel(4.0), self.P, self.Q, 4.0)
        tight = dpi_report(self._channel(0.5), self.P, self.Q, 0.5)
        assert tight["output_kl"] < loose["output_kl"]
        assert tight["djw_bound"] < loose["djw_bound"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            dpi_report(self._channel(), self.P, self.Q, 0.0)
        with pytest.raises(ValidationError):
            dpi_report(self._channel(), [0.5, 0.5], self.Q, 1.0)
        with pytest.raises(ValidationError):
            dpi_report(np.full((4, 4), 0.5), self.P, self.Q, 1.0)
        with pytest.raises(ValidationError):
            dpi_report(np.zeros(4), self.P, self.Q, 1.0)


class TestPrivateSGDClassifier:
    def _data(self, n=1_500, d=2, seed=9):
        mean = np.zeros(d)
        mean[0] = 1.2
        task = TwoGaussiansTask(mean, clip_features=True)
        return task.sample(n, random_state=seed)

    def test_beats_chance_at_generous_epsilon(self):
        x, y = self._data()
        clf = PrivateSGDClassifier(
            LogisticLoss(), 0.05, 8.0, batch_size=10
        ).fit(x, y, random_state=0)
        x_test, y_test = self._data(seed=99)
        assert clf.accuracy(x_test, y_test) > 0.7

    def test_fit_is_deterministic_given_seed(self):
        x, y = self._data(n=400)
        a = PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0).fit(
            x, y, random_state=5
        )
        b = PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0).fit(
            x, y, random_state=5
        )
        c = PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0).fit(
            x, y, random_state=6
        )
        np.testing.assert_array_equal(a.coefficients, b.coefficients)
        assert not np.array_equal(a.coefficients, c.coefficients)

    def test_release_returns_fitted_coefficients(self):
        x, y = self._data(n=400)
        released = PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0).release(
            (x, y), random_state=7
        )
        fitted = PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0).fit(
            x, y, random_state=7
        )
        np.testing.assert_array_equal(released, fitted.coefficients)

    def test_coefficients_stay_in_projection_ball(self):
        x, y = self._data(n=400)
        regularization = 0.5
        clf = PrivateSGDClassifier(LogisticLoss(), regularization, 0.5).fit(
            x, y, random_state=1
        )
        assert np.linalg.norm(clf.coefficients) <= 1.0 / regularization + 1e-9

    def test_batched_path_differs_from_classical_but_both_fit(self):
        x, y = self._data(n=400)
        one = PrivateSGDClassifier(LogisticLoss(), 0.1, 2.0, batch_size=1).fit(
            x, y, random_state=2
        )
        many = PrivateSGDClassifier(
            LogisticLoss(), 0.1, 2.0, batch_size=40
        ).fit(x, y, random_state=2)
        assert one.coefficients.shape == many.coefficients.shape == (2,)

    def test_validation(self):
        with pytest.raises(ValidationError):
            PrivateSGDClassifier(object(), 0.1, 1.0)
        with pytest.raises(ValidationError):
            PrivateSGDClassifier(LogisticLoss(), 0.0, 1.0)
        with pytest.raises(ValidationError):
            PrivateSGDClassifier(LogisticLoss(), 0.1, 0.0)
        with pytest.raises(ValidationError):
            PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0, batch_size=0)

    def test_rejects_unclipped_features(self):
        x = np.array([[2.0, 0.0], [0.0, 1.0]])
        y = np.array([1, -1])
        with pytest.raises(ValidationError):
            PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0).fit(x, y)

    def test_predict_before_fit_rejected(self):
        clf = PrivateSGDClassifier(LogisticLoss(), 0.1, 1.0)
        with pytest.raises(ValidationError):
            clf.predict(np.zeros((1, 2)))
