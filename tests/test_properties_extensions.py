"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import DiscreteDistribution
from repro.information import renyi_divergence
from repro.mechanisms.histogram import LinearQueryWorkload
from repro.privacy import (
    KRandomizedResponse,
    dp_tradeoff_curve,
    rdp_of_pure_dp,
)
from repro.privacy.local import UnaryEncoding


def simplex(size: int):
    return st.lists(st.floats(1e-4, 1.0), min_size=size, max_size=size).map(
        lambda ws: np.array(ws) / sum(ws)
    )


class TestTiltAlgebra:
    @settings(max_examples=50)
    @given(
        simplex(4),
        st.lists(st.floats(-5, 5), min_size=4, max_size=4),
        st.lists(st.floats(-5, 5), min_size=4, max_size=4),
    )
    def test_tilts_compose_additively(self, prior, a, b):
        """tilt(a) then tilt(b) equals tilt(a+b) — the group structure the
        Gibbs temperature algebra relies on."""
        dist = DiscreteDistribution(range(4), prior)
        sequential = dist.tilt(a).tilt(b)
        combined = dist.tilt(np.asarray(a) + np.asarray(b))
        assert sequential.probabilities == pytest.approx(
            combined.probabilities, abs=1e-10
        )


class TestLocalDpDebiasing:
    @settings(max_examples=40)
    @given(simplex(4), st.floats(0.2, 4.0))
    def test_krr_estimator_inverts_expectation(self, freqs, epsilon):
        """E[observed] = q + (p-q)·f; the estimator applied to that exact
        expectation must return f — unbiasedness as an algebraic identity."""
        mech = KRandomizedResponse(range(4), epsilon=epsilon)
        p, q = mech.truth_probability, mech.lie_probability
        expected_observed = q + (p - q) * np.asarray(freqs)
        recovered = (expected_observed - q) / (p - q)
        assert recovered == pytest.approx(np.asarray(freqs), abs=1e-12)

    @settings(max_examples=40)
    @given(simplex(5), st.floats(0.2, 4.0))
    def test_unary_estimator_inverts_expectation(self, freqs, epsilon):
        mech = UnaryEncoding(range(5), epsilon=epsilon)
        p, q = mech.keep_probability, mech.flip_probability
        expected_bits = q + (p - q) * np.asarray(freqs)
        matrix = np.tile(expected_bits, (10, 1))
        assert mech.estimate_frequencies(matrix) == pytest.approx(
            np.asarray(freqs), abs=1e-12
        )


class TestWorkloadLinearity:
    @settings(max_examples=40)
    @given(
        st.lists(st.floats(-10, 10), min_size=4, max_size=4),
        st.lists(st.floats(-10, 10), min_size=4, max_size=4),
    )
    def test_answers_are_linear(self, counts_a, counts_b):
        workload = LinearQueryWorkload.all_range_queries(range(4))
        combined = workload.answer(np.asarray(counts_a) + np.asarray(counts_b))
        separate = workload.answer(counts_a) + workload.answer(counts_b)
        assert combined == pytest.approx(separate, abs=1e-9)


class TestRdpProperties:
    @settings(max_examples=40)
    @given(st.floats(0.05, 3.0), st.floats(1.1, 50.0))
    def test_pure_dp_curve_below_epsilon(self, epsilon, alpha):
        assert rdp_of_pure_dp(epsilon, alpha).rho <= epsilon + 1e-12

    @settings(max_examples=40)
    @given(st.floats(0.05, 3.0), st.floats(1.1, 20.0), st.floats(1.2, 2.0))
    def test_pure_dp_curve_monotone_in_alpha(self, epsilon, alpha, factor):
        low = rdp_of_pure_dp(epsilon, alpha).rho
        high = rdp_of_pure_dp(epsilon, alpha * factor).rho
        assert low <= high + 1e-12

    @settings(max_examples=30)
    @given(st.floats(0.05, 2.0), st.floats(1.5, 20.0))
    def test_conversion_epsilon_decreasing_in_delta(self, epsilon, alpha):
        spec = rdp_of_pure_dp(epsilon, alpha)
        tight = spec.to_approximate_dp(1e-8).epsilon
        loose = spec.to_approximate_dp(1e-2).epsilon
        assert loose <= tight

    @settings(max_examples=30)
    @given(simplex(3), simplex(3), st.floats(1.2, 10.0))
    def test_renyi_joint_quasi_convexity_instance(self, p, q, alpha):
        """Mixing both arguments with a common third distribution cannot
        increase Rényi divergence (checked at mix weight ½ against the
        uniform)."""
        u = np.full(3, 1 / 3)
        base = renyi_divergence(p, q, alpha)
        mixed = renyi_divergence(
            0.5 * np.asarray(p) + 0.5 * u, 0.5 * np.asarray(q) + 0.5 * u, alpha
        )
        assert mixed <= max(base, 0.0) + 1e-9


class TestTradeoffCurveProperties:
    @settings(max_examples=40)
    @given(st.floats(0.05, 5.0))
    def test_curve_is_convex_and_decreasing(self, epsilon):
        alphas = np.linspace(0, 1, 41)
        betas = dp_tradeoff_curve(epsilon, alphas)
        # Decreasing.
        assert all(a >= b - 1e-12 for a, b in zip(betas, betas[1:]))
        # Convex: midpoint below chord.
        for i in range(1, 40):
            chord = 0.5 * (betas[i - 1] + betas[i + 1])
            assert betas[i] <= chord + 1e-12

    @settings(max_examples=40)
    @given(st.floats(0.05, 5.0), st.floats(0.0, 1.0))
    def test_curve_symmetric_fixed_point(self, epsilon, alpha):
        """β(α) and the inverse tradeoff agree: the curve is its own
        conjugate under (α, β) ↔ (β, α) for pure DP."""
        beta = float(dp_tradeoff_curve(epsilon, [alpha])[0])
        back = float(dp_tradeoff_curve(epsilon, [beta])[0])
        assert back <= alpha + 1e-9
