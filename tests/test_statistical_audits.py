"""Tier-2 statistical audits: every mechanism's claimed ε, empirically.

Each test draws from a mechanism on a worst-case neighbouring pair and
certifies a Clopper–Pearson lower bound on the realized privacy loss; a
bound above the claimed ε fails the build. Seeds are derived from stable
names (see ``repro.testing.statistical``), so the whole module is
deterministic run-over-run. The final tests sabotage mechanisms on
purpose and demand that the harness *fails* them — no green suite without
teeth.
"""

from __future__ import annotations

import pytest

from repro.exceptions import DPAuditError
from repro.privacy import ExactPrivacyAuditor
from repro.testing import (
    AUDIT_FAMILIES,
    assert_dp,
    bit_flip_pair,
    build_audit,
    run_audit,
)

pytestmark = pytest.mark.statistical

EPSILON = 1.0
N = 3
SAMPLES = 8_000


def _assert_family(family: str, **build_options):
    prepared = build_audit(family, epsilon=EPSILON, n=N, **build_options)
    return assert_dp(
        prepared.mechanism,
        prepared.pair,
        epsilon=prepared.epsilon,
        name=prepared.name,
        kind=prepared.kind,
        sampler=prepared.sampler,
        output_key=prepared.output_key,
        n_samples=SAMPLES,
    )


class TestMechanismsHonourClaimedEpsilon:
    @pytest.mark.parametrize("family", AUDIT_FAMILIES)
    def test_family_within_claim(self, family):
        report = _assert_family(family)
        assert report.satisfied
        assert report.epsilon_lower_bound <= report.claimed_epsilon

    @pytest.mark.parametrize(
        "family", ["laplace", "randomized-response", "local"]
    )
    def test_saturating_families_come_close(self, family):
        """RR and Laplace saturate ε; the certified bound should not be
        vacuous (a harness that always reports 0 would pass everything)."""
        report = _assert_family(family)
        assert report.epsilon_lower_bound > 0.5 * EPSILON

    def test_larger_epsilon_still_honoured(self):
        prepared = build_audit("laplace", epsilon=2.0, n=N)
        report = assert_dp(
            prepared.mechanism,
            prepared.pair,
            epsilon=prepared.epsilon,
            name="laplace-eps2",
            kind=prepared.kind,
            sampler=prepared.sampler,
            n_samples=SAMPLES,
        )
        assert report.satisfied


class TestGibbsTheorem41:
    """Theorem 4.1 as an executable claim: statistical vs exact audits."""

    def test_statistical_bound_below_exact_epsilon(self):
        prepared = build_audit("gibbs", epsilon=EPSILON, n=N)
        statistical = run_audit(
            prepared, n_samples=SAMPLES, random_state=20120330
        )
        exact = ExactPrivacyAuditor(
            prepared.mechanism.output_distribution
        ).audit([0, 1], N, claimed_epsilon=prepared.epsilon)
        # The certified lower bound can never exceed the true worst-case
        # loss, which the enumeration audit computes exactly.
        assert statistical.epsilon_lower_bound <= exact.measured_epsilon + 1e-9
        assert exact.satisfied

    def test_gibbs_audit_fails_when_temperature_inflated(self):
        prepared = build_audit("gibbs", epsilon=EPSILON, n=N, noise_scale=0.2)
        with pytest.raises(DPAuditError):
            assert_dp(
                prepared.mechanism,
                prepared.pair,
                epsilon=EPSILON,
                name=prepared.name,
                kind=prepared.kind,
                sampler=prepared.sampler,
                n_samples=SAMPLES,
            )


class TestHarnessHasTeeth:
    """Deliberately broken mechanisms must fail their audits."""

    def test_laplace_with_halved_scale_fails(self):
        prepared = build_audit("laplace", epsilon=EPSILON, n=N, noise_scale=0.5)
        with pytest.raises(DPAuditError) as excinfo:
            assert_dp(
                prepared.mechanism,
                prepared.pair,
                epsilon=EPSILON,
                name=prepared.name,
                kind=prepared.kind,
                sampler=prepared.sampler,
                n_samples=SAMPLES,
            )
        report = excinfo.value.report
        assert report.epsilon_lower_bound > EPSILON

    def test_broken_randomized_response_fails(self):
        prepared = build_audit(
            "randomized-response", epsilon=EPSILON, n=1, noise_scale=0.4
        )
        with pytest.raises(DPAuditError):
            assert_dp(
                prepared.mechanism,
                prepared.pair,
                epsilon=EPSILON,
                name=prepared.name,
                kind=prepared.kind,
                output_key=prepared.output_key,
                n_samples=SAMPLES,
            )

    def test_boosted_local_channel_fails(self):
        """A k-RR report more truthful than ε allows must be rejected —
        the per-record guarantee gives the audit a sharp target."""
        prepared = build_audit("local", epsilon=EPSILON, n=1, noise_scale=0.4)
        with pytest.raises(DPAuditError):
            assert_dp(
                prepared.mechanism,
                prepared.pair,
                epsilon=EPSILON,
                name=prepared.name,
                kind=prepared.kind,
                output_key=prepared.output_key,
                n_samples=SAMPLES,
            )

    def test_nonprivate_release_fails_loudly(self):
        """A mechanism that releases the raw query is caught immediately."""
        prepared = build_audit("laplace", epsilon=EPSILON, n=N)

        def no_noise_sampler(dataset, size, rng):
            return [float(sum(dataset))] * size

        with pytest.raises(DPAuditError) as excinfo:
            assert_dp(
                prepared.mechanism,
                prepared.pair,
                epsilon=EPSILON,
                name="laplace-no-noise",
                kind="discrete",
                sampler=no_noise_sampler,
                n_samples=SAMPLES,
            )
        assert excinfo.value.report.epsilon_lower_bound > 3.0


@pytest.mark.statistical(retries=2)
def test_marker_rerun_reseeds_deterministically(statistical_rng, statistical_policy):
    """The plugin's rerun budget reseeds `statistical_rng` per attempt.

    This test is statistically trivial — it asserts the fixture wiring:
    the derived stream exists, is reproducible, and the policy's flake
    bound is as documented.
    """
    draws = statistical_rng.integers(0, 2**32, size=4)
    assert len(set(draws.tolist())) >= 2
    assert statistical_policy.false_failure_probability() < 1e-5


@pytest.mark.statistical(retries=1)
def test_audit_under_default_policy_passes(statistical_rng):
    """An un-prepared (raw) audit through audit_mechanism also passes."""
    from repro.mechanisms import RandomizedResponse
    from repro.testing import audit_mechanism

    report = audit_mechanism(
        RandomizedResponse(EPSILON),
        bit_flip_pair(1),
        n_samples=SAMPLES,
        random_state=statistical_rng,
        output_key=lambda bits: int(bits[0]),
    )
    assert report.satisfied
