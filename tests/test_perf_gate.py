"""The perf-regression gate: baselines, comparisons, and CLI exit codes.

Unit tests build synthetic :class:`RunManifest` objects so the gate logic
(tolerance, sweep-size drift, cache-hit rejection, missing experiments)
is exercised without running a benchmark. The CLI tests then do one real
``repro bench E5`` dry run per scenario — write a baseline, pass against
it, fail against a deliberately slowed (÷1000 seconds) baseline — pinning
the 0/1/2 exit-code contract the CI perf-gate job relies on.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    PERF_SCHEMA_VERSION,
    PerfBaseline,
    compare_to_baseline,
    load_baseline,
)
from repro.experiments.manifest import ConfigurationRecord, RunManifest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _manifest(experiment_id, seconds, configurations=3, cached=0):
    records = [
        ConfigurationRecord(
            parameters={"i": i},
            outputs={"y": 1.0},
            seconds=seconds / configurations,
            cache_hit=i < cached,
        )
        for i in range(configurations)
    ]
    return RunManifest(
        experiment_id=experiment_id,
        claim="synthetic",
        bench="benchmarks/bench_fake.py",
        code_digest="deadbeef",
        workers=1,
        cache_enabled=False,
        records=records,
    )


class TestPerfBaseline:
    def test_from_manifests_round_trips(self, tmp_path):
        baseline = PerfBaseline.from_manifests(
            [_manifest("E5", 1.2), _manifest("E8", 0.4, configurations=7)],
            note="seed machine",
        )
        path = baseline.write(tmp_path / "perf_baseline.json")
        loaded = load_baseline(path)
        assert loaded == baseline
        assert loaded.experiments["E8"]["configurations"] == 7
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == PERF_SCHEMA_VERSION
        assert payload["note"] == "seed machine"

    def test_from_manifests_rejects_cache_hits(self):
        with pytest.raises(ValidationError, match="cache hits"):
            PerfBaseline.from_manifests([_manifest("E5", 1.0, cached=1)])

    def test_load_missing_file_is_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_baseline(tmp_path / "absent.json")

    def test_load_invalid_json_is_validation_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_baseline(path)

    @pytest.mark.parametrize(
        "payload",
        [
            {"schema_version": 99, "experiments": {"E5": {"seconds": 1.0}}},
            {"schema_version": PERF_SCHEMA_VERSION, "experiments": {}},
            {"schema_version": PERF_SCHEMA_VERSION, "experiments": {"E5": 3}},
            {
                "schema_version": PERF_SCHEMA_VERSION,
                "experiments": {"E5": {"seconds": -1.0}},
            },
        ],
    )
    def test_from_dict_rejects_malformed_payloads(self, payload):
        with pytest.raises(ValidationError):
            PerfBaseline.from_dict(payload)


class TestCompareToBaseline:
    def test_within_tolerance_is_ok(self):
        baseline = PerfBaseline.from_manifests([_manifest("E5", 1.0)])
        comparison = compare_to_baseline(
            [_manifest("E5", 1.4)], baseline, tolerance=1.5
        )
        assert comparison.ok
        assert comparison.regressions == ()
        (entry,) = comparison.entries
        assert entry.ratio == pytest.approx(1.4)
        assert not entry.regressed

    def test_slowdown_past_tolerance_regresses(self):
        baseline = PerfBaseline.from_manifests([_manifest("E5", 1.0)])
        comparison = compare_to_baseline(
            [_manifest("E5", 1.6)], baseline, tolerance=1.5
        )
        assert not comparison.ok
        assert [e.experiment_id for e in comparison.regressions] == ["E5"]
        report = comparison.to_dict()
        assert report["ok"] is False
        assert report["regressions"] == ["E5"]
        assert report["entries"][0]["regressed"] is True

    def test_exactly_at_tolerance_passes(self):
        # The gate is "> tolerance", so ratio == tolerance is a pass.
        baseline = PerfBaseline.from_manifests([_manifest("E5", 1.0)])
        comparison = compare_to_baseline(
            [_manifest("E5", 1.5)], baseline, tolerance=1.5
        )
        assert comparison.ok

    def test_sweep_size_drift_regresses_even_when_faster(self):
        baseline = PerfBaseline.from_manifests(
            [_manifest("E5", 1.0, configurations=3)]
        )
        comparison = compare_to_baseline(
            [_manifest("E5", 0.1, configurations=2)], baseline
        )
        (entry,) = comparison.entries
        assert entry.configurations_changed
        assert entry.regressed
        assert not comparison.ok

    def test_missing_experiment_is_validation_error(self):
        baseline = PerfBaseline.from_manifests([_manifest("E5", 1.0)])
        with pytest.raises(ValidationError, match="not in the perf baseline"):
            compare_to_baseline([_manifest("E8", 1.0)], baseline)

    def test_cache_hits_in_manifest_are_rejected(self):
        baseline = PerfBaseline.from_manifests([_manifest("E5", 1.0)])
        with pytest.raises(ValidationError, match="cache hits"):
            compare_to_baseline([_manifest("E5", 1.0, cached=2)], baseline)

    @pytest.mark.parametrize("tolerance", [0.0, -1.0])
    def test_non_positive_tolerance_is_validation_error(self, tolerance):
        baseline = PerfBaseline.from_manifests([_manifest("E5", 1.0)])
        with pytest.raises(ValidationError, match="tolerance"):
            compare_to_baseline(
                [_manifest("E5", 1.0)], baseline, tolerance=tolerance
            )


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )


class TestBenchCompareExitCodes:
    """One E5 dry run per scenario (E5 is the fastest registered bench)."""

    def test_write_baseline_then_compare_passes(self, tmp_path):
        baseline_path = tmp_path / "perf_baseline.json"
        write = _run_module(
            "bench",
            "E5",
            "--write-baseline",
            str(baseline_path),
            "--output-dir",
            str(tmp_path / "write"),
        )
        assert write.returncode == 0, write.stderr
        baseline = load_baseline(baseline_path)
        assert "E5" in baseline.experiments

        compare = _run_module(
            "bench",
            "E5",
            "--compare",
            str(baseline_path),
            "--tolerance",
            "20.0",
            "--compare-output",
            str(tmp_path / "PERF_COMPARE.json"),
            "--output-dir",
            str(tmp_path / "compare"),
        )
        assert compare.returncode == 0, compare.stderr
        assert "bench perf OK" in compare.stderr
        report = json.loads((tmp_path / "PERF_COMPARE.json").read_text())
        assert report["ok"] is True
        assert report["regressions"] == []

    def test_compare_fails_a_slowed_kernel_dry_run(self, tmp_path):
        # Simulate a 1000x kernel slowdown by shrinking the blessed
        # seconds instead of actually slowing the code: the gate only
        # sees the ratio, so the exit path is identical.
        baseline_path = tmp_path / "perf_baseline.json"
        write = _run_module(
            "bench",
            "E5",
            "--write-baseline",
            str(baseline_path),
            "--output-dir",
            str(tmp_path / "write"),
        )
        assert write.returncode == 0, write.stderr
        payload = json.loads(baseline_path.read_text())
        for entry in payload["experiments"].values():
            entry["seconds"] /= 1000.0
        baseline_path.write_text(json.dumps(payload))

        compare = _run_module(
            "bench",
            "E5",
            "--compare",
            str(baseline_path),
            "--tolerance",
            "1.5",
            "--compare-output",
            str(tmp_path / "PERF_COMPARE.json"),
            "--output-dir",
            str(tmp_path / "compare"),
        )
        assert compare.returncode == 1
        assert "PERF REGRESSION" in compare.stderr
        report = json.loads((tmp_path / "PERF_COMPARE.json").read_text())
        assert report["ok"] is False
        assert report["regressions"] == ["E5"]

    def test_missing_baseline_is_usage_error(self, tmp_path):
        compare = _run_module(
            "bench",
            "E5",
            "--compare",
            str(tmp_path / "absent.json"),
            "--output-dir",
            str(tmp_path / "out"),
        )
        assert compare.returncode == 2
        assert "not found" in compare.stderr

    def test_bad_tolerance_is_usage_error(self, tmp_path):
        baseline_path = tmp_path / "perf_baseline.json"
        PerfBaseline({"E5": {"seconds": 1.0, "configurations": 1}}).write(
            baseline_path
        )
        compare = _run_module(
            "bench",
            "E5",
            "--compare",
            str(baseline_path),
            "--tolerance",
            "-2",
            "--output-dir",
            str(tmp_path / "out"),
        )
        assert compare.returncode == 2
