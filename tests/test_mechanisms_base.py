"""Unit tests for PrivacySpec and the Mechanism interface."""

import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import Mechanism, PrivacySpec


class TestPrivacySpec:
    def test_pure_dp(self):
        spec = PrivacySpec(epsilon=1.0)
        assert spec.is_pure
        assert str(spec) == "1-DP"

    def test_approximate_dp(self):
        spec = PrivacySpec(epsilon=0.5, delta=1e-6)
        assert not spec.is_pure
        assert "1e-06" in str(spec)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValidationError):
            PrivacySpec(epsilon=0.0)

    def test_rejects_delta_out_of_range(self):
        with pytest.raises(ValidationError):
            PrivacySpec(epsilon=1.0, delta=1.5)

    def test_compose_adds(self):
        a = PrivacySpec(epsilon=1.0, delta=0.1)
        b = PrivacySpec(epsilon=0.5, delta=0.2)
        composed = a.compose(b)
        assert composed.epsilon == pytest.approx(1.5)
        assert composed.delta == pytest.approx(0.3)

    def test_frozen(self):
        spec = PrivacySpec(epsilon=1.0)
        with pytest.raises(AttributeError):
            spec.epsilon = 2.0


class TestMechanism:
    def test_exposes_privacy(self):
        class Constant(Mechanism):
            def release(self, dataset, random_state=None):
                return 0

        mech = Constant(PrivacySpec(epsilon=2.0, delta=0.01))
        assert mech.epsilon == 2.0
        assert mech.delta == 0.01
        assert "Constant" in repr(mech)

    def test_rejects_non_spec(self):
        class Constant(Mechanism):
            def release(self, dataset, random_state=None):
                return 0

        with pytest.raises(ValidationError):
            Constant("1.0")
