"""Unit tests for composition theorems and the accountant."""

import pytest

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms import (
    LaplaceMechanism,
    PrivacyAccountant,
    PrivacySpec,
    advanced_composition,
    parallel_composition,
    sequential_composition,
)
from repro.mechanisms.composition import best_composition


class TestSequentialComposition:
    def test_epsilons_add(self):
        specs = [PrivacySpec(0.5), PrivacySpec(1.0), PrivacySpec(0.25)]
        assert sequential_composition(specs).epsilon == pytest.approx(1.75)

    def test_deltas_add_and_cap(self):
        specs = [PrivacySpec(1.0, 0.6), PrivacySpec(1.0, 0.6)]
        assert sequential_composition(specs).delta == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            sequential_composition([])

    def test_rejects_non_specs(self):
        with pytest.raises(ValidationError):
            sequential_composition([1.0])


class TestParallelComposition:
    def test_takes_maximum(self):
        specs = [PrivacySpec(0.5), PrivacySpec(2.0)]
        assert parallel_composition(specs).epsilon == pytest.approx(2.0)


class TestAdvancedComposition:
    def test_formula(self):
        import numpy as np

        eps, k, dp = 0.1, 100, 1e-6
        out = advanced_composition(eps, 0.0, k, dp)
        expected = eps * np.sqrt(2 * k * np.log(1 / dp)) + k * eps * (
            np.exp(eps) - 1
        )
        assert out.epsilon == pytest.approx(expected)
        assert out.delta == pytest.approx(dp)

    def test_sublinear_in_k_for_small_epsilon(self):
        basic = sequential_composition([PrivacySpec(0.01)] * 10_000)
        advanced = advanced_composition(0.01, 0.0, 10_000, 1e-6)
        assert advanced.epsilon < basic.epsilon

    def test_basic_wins_for_few_queries(self):
        basic = sequential_composition([PrivacySpec(0.1)] * 2)
        advanced = advanced_composition(0.1, 0.0, 2, 1e-6)
        assert basic.epsilon < advanced.epsilon

    def test_best_composition_picks_smaller(self):
        few = best_composition(0.1, 0.0, 2, 1e-6)
        many = best_composition(0.01, 0.0, 10_000, 1e-6)
        assert few.epsilon == pytest.approx(0.2)
        assert many.epsilon < 100.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            advanced_composition(0.1, 0.0, 0, 1e-6)
        with pytest.raises(ValidationError):
            advanced_composition(0.1, 0.0, 5, 0.0)


class TestAccountant:
    def test_tracks_spend(self):
        acct = PrivacyAccountant(budget=PrivacySpec(2.0))
        acct.charge(PrivacySpec(0.5), label="q1")
        acct.charge(PrivacySpec(1.0), label="q2")
        assert acct.spent.epsilon == pytest.approx(1.5)
        assert acct.remaining_epsilon == pytest.approx(0.5)

    def test_refuses_over_budget(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        acct.charge(PrivacySpec(0.9))
        with pytest.raises(PrivacyBudgetError):
            acct.charge(PrivacySpec(0.2))

    def test_exact_budget_is_affordable(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        acct.charge(PrivacySpec(0.5))
        acct.charge(PrivacySpec(0.5))
        assert acct.remaining_epsilon == pytest.approx(0.0)

    def test_run_executes_mechanism_and_charges(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        mech = LaplaceMechanism(lambda d: float(sum(d)), 1.0, epsilon=0.4)
        out = acct.run(mech, [1, 0, 1], random_state=0)
        assert isinstance(out, float)
        assert acct.spent.epsilon == pytest.approx(0.4)
        assert acct.ledger()[0].label == "LaplaceMechanism"

    def test_run_refused_when_budget_exhausted(self):
        acct = PrivacyAccountant(budget=PrivacySpec(0.5))
        mech = LaplaceMechanism(lambda d: float(sum(d)), 1.0, epsilon=0.4)
        acct.run(mech, [1], random_state=0)
        with pytest.raises(PrivacyBudgetError):
            acct.run(mech, [1], random_state=0)

    def test_delta_budget_enforced(self):
        acct = PrivacyAccountant(budget=PrivacySpec(10.0, delta=1e-6))
        with pytest.raises(PrivacyBudgetError):
            acct.charge(PrivacySpec(1.0, delta=1e-3))

    def test_empty_ledger(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        assert acct.spent is None
        assert acct.remaining_epsilon == pytest.approx(1.0)

    def test_preloaded_ledger_is_folded_once(self):
        from repro.mechanisms.accountant import LedgerEntry

        entries = [
            LedgerEntry(label=f"q{i}", spec=PrivacySpec(0.1)) for i in range(5)
        ]
        acct = PrivacyAccountant(budget=PrivacySpec(2.0), _ledger=entries)
        assert acct.spent.epsilon == pytest.approx(0.5)
        assert acct.remaining_epsilon == pytest.approx(1.5)


class TestAccountantSinglePassAccounting:
    """Regression: ``spent`` must not re-fold the whole ledger per charge.

    The original implementation recomputed the composed total from scratch
    on every ``spent``/``can_afford``/``charge`` — O(n²) compose calls over
    a run of n releases. The fix keeps a running total, so n charges cost
    exactly n-1 composes (the first charge initializes the total).
    """

    def test_n_charges_compose_linearly(self, monkeypatch):
        compose_calls = 0
        original_compose = PrivacySpec.compose

        def spying_compose(self, other):
            nonlocal compose_calls
            compose_calls += 1
            return original_compose(self, other)

        monkeypatch.setattr(PrivacySpec, "compose", spying_compose)
        n = 50
        acct = PrivacyAccountant(budget=PrivacySpec(100.0))
        for _ in range(n):
            acct.charge(PrivacySpec(0.01))
        # Linear accounting: one compose per charge after the first. The
        # O(n²) fold would have needed n·(n-1)/2 = 1225 composes by now.
        assert compose_calls == n - 1
        # Reading totals afterwards costs nothing further.
        _ = acct.spent, acct.remaining_epsilon, acct.remaining_delta
        assert compose_calls == n - 1

    def test_spent_reads_are_constant_time(self, monkeypatch):
        compose_calls = 0
        original_compose = PrivacySpec.compose

        def spying_compose(self, other):
            nonlocal compose_calls
            compose_calls += 1
            return original_compose(self, other)

        monkeypatch.setattr(PrivacySpec, "compose", spying_compose)
        acct = PrivacyAccountant(budget=PrivacySpec(10.0))
        acct.charge(PrivacySpec(0.5))
        acct.charge(PrivacySpec(0.5))
        before = compose_calls
        for _ in range(100):
            assert acct.spent.epsilon == pytest.approx(1.0)
        assert compose_calls == before


class TestRelativeBudgetTolerance:
    """Regression: the affordability slack must scale with the budget.

    A flat ``1e-12`` tolerance silently granted every accountant an extra
    absolute 1e-12 of ε per comparison — material for tiny budgets and
    wrong in kind for all of them. The relative tolerance admits exact
    exhaustion despite float rounding, but never more than a 1e-9-fraction
    overshoot of the budget itself.
    """

    def test_many_tiny_charges_never_exceed_relative_budget(self):
        budget = PrivacySpec(epsilon=1e-9)
        acct = PrivacyAccountant(budget=budget)
        n, spec = 1000, PrivacySpec(1e-12)
        accepted = 0
        for _ in range(n):
            try:
                acct.charge(spec)
            except PrivacyBudgetError:
                break
            accepted += 1
        assert accepted == n  # 1000 × 1e-12 = 1e-9: exactly affordable
        assert acct.spent.epsilon <= budget.epsilon * (1 + 1e-9)
        # ... and the next tiny charge must be refused outright.
        with pytest.raises(PrivacyBudgetError):
            acct.charge(spec)
        assert acct.spent.epsilon <= budget.epsilon * (1 + 1e-9)

    def test_exact_exhaustion_still_affordable_for_tiny_budgets(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1e-9))
        acct.charge(PrivacySpec(5e-10))
        acct.charge(PrivacySpec(5e-10))
        assert acct.remaining_epsilon == pytest.approx(0.0, abs=1e-24)

    def test_flat_absolute_slack_is_gone(self):
        # Under the old flat 1e-12 tolerance this overshoot (50% of the
        # budget!) was accepted; relative slack refuses it.
        acct = PrivacyAccountant(budget=PrivacySpec(1e-12))
        acct.charge(PrivacySpec(1e-12))
        with pytest.raises(PrivacyBudgetError):
            acct.charge(PrivacySpec(5e-13))
