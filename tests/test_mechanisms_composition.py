"""Unit tests for composition theorems and the accountant."""

import pytest

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms import (
    LaplaceMechanism,
    PrivacyAccountant,
    PrivacySpec,
    advanced_composition,
    parallel_composition,
    sequential_composition,
)
from repro.mechanisms.composition import best_composition


class TestSequentialComposition:
    def test_epsilons_add(self):
        specs = [PrivacySpec(0.5), PrivacySpec(1.0), PrivacySpec(0.25)]
        assert sequential_composition(specs).epsilon == pytest.approx(1.75)

    def test_deltas_add_and_cap(self):
        specs = [PrivacySpec(1.0, 0.6), PrivacySpec(1.0, 0.6)]
        assert sequential_composition(specs).delta == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            sequential_composition([])

    def test_rejects_non_specs(self):
        with pytest.raises(ValidationError):
            sequential_composition([1.0])


class TestParallelComposition:
    def test_takes_maximum(self):
        specs = [PrivacySpec(0.5), PrivacySpec(2.0)]
        assert parallel_composition(specs).epsilon == pytest.approx(2.0)


class TestAdvancedComposition:
    def test_formula(self):
        import numpy as np

        eps, k, dp = 0.1, 100, 1e-6
        out = advanced_composition(eps, 0.0, k, dp)
        expected = eps * np.sqrt(2 * k * np.log(1 / dp)) + k * eps * (
            np.exp(eps) - 1
        )
        assert out.epsilon == pytest.approx(expected)
        assert out.delta == pytest.approx(dp)

    def test_sublinear_in_k_for_small_epsilon(self):
        basic = sequential_composition([PrivacySpec(0.01)] * 10_000)
        advanced = advanced_composition(0.01, 0.0, 10_000, 1e-6)
        assert advanced.epsilon < basic.epsilon

    def test_basic_wins_for_few_queries(self):
        basic = sequential_composition([PrivacySpec(0.1)] * 2)
        advanced = advanced_composition(0.1, 0.0, 2, 1e-6)
        assert basic.epsilon < advanced.epsilon

    def test_best_composition_picks_smaller(self):
        few = best_composition(0.1, 0.0, 2, 1e-6)
        many = best_composition(0.01, 0.0, 10_000, 1e-6)
        assert few.epsilon == pytest.approx(0.2)
        assert many.epsilon < 100.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            advanced_composition(0.1, 0.0, 0, 1e-6)
        with pytest.raises(ValidationError):
            advanced_composition(0.1, 0.0, 5, 0.0)


class TestAccountant:
    def test_tracks_spend(self):
        acct = PrivacyAccountant(budget=PrivacySpec(2.0))
        acct.charge(PrivacySpec(0.5), label="q1")
        acct.charge(PrivacySpec(1.0), label="q2")
        assert acct.spent.epsilon == pytest.approx(1.5)
        assert acct.remaining_epsilon == pytest.approx(0.5)

    def test_refuses_over_budget(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        acct.charge(PrivacySpec(0.9))
        with pytest.raises(PrivacyBudgetError):
            acct.charge(PrivacySpec(0.2))

    def test_exact_budget_is_affordable(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        acct.charge(PrivacySpec(0.5))
        acct.charge(PrivacySpec(0.5))
        assert acct.remaining_epsilon == pytest.approx(0.0)

    def test_run_executes_mechanism_and_charges(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        mech = LaplaceMechanism(lambda d: float(sum(d)), 1.0, epsilon=0.4)
        out = acct.run(mech, [1, 0, 1], random_state=0)
        assert isinstance(out, float)
        assert acct.spent.epsilon == pytest.approx(0.4)
        assert acct.ledger()[0].label == "LaplaceMechanism"

    def test_run_refused_when_budget_exhausted(self):
        acct = PrivacyAccountant(budget=PrivacySpec(0.5))
        mech = LaplaceMechanism(lambda d: float(sum(d)), 1.0, epsilon=0.4)
        acct.run(mech, [1], random_state=0)
        with pytest.raises(PrivacyBudgetError):
            acct.run(mech, [1], random_state=0)

    def test_delta_budget_enforced(self):
        acct = PrivacyAccountant(budget=PrivacySpec(10.0, delta=1e-6))
        with pytest.raises(PrivacyBudgetError):
            acct.charge(PrivacySpec(1.0, delta=1e-3))

    def test_empty_ledger(self):
        acct = PrivacyAccountant(budget=PrivacySpec(1.0))
        assert acct.spent is None
        assert acct.remaining_epsilon == pytest.approx(1.0)
