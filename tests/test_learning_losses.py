"""Unit tests for loss functions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.learning import (
    AbsoluteLoss,
    HingeLoss,
    HuberHingeLoss,
    LogisticLoss,
    SquaredLoss,
    TruncatedLoss,
    ZeroOneLoss,
)

margins = st.floats(-50, 50)


class TestZeroOneLoss:
    def test_values(self):
        loss = ZeroOneLoss()
        assert loss.value([-1.0, 0.0, 1.0]) == pytest.approx([1.0, 1.0, 0.0])

    def test_bounded(self):
        assert ZeroOneLoss().bounds() == (0.0, 1.0)

    def test_not_lipschitz(self):
        assert ZeroOneLoss().lipschitz_constant == np.inf


class TestLogisticLoss:
    def test_value_at_zero(self):
        assert LogisticLoss().value([0.0]) == pytest.approx([np.log(2)])

    def test_stable_for_large_negative_margin(self):
        out = LogisticLoss().value([-500.0])
        assert np.isfinite(out[0])
        assert out[0] == pytest.approx(500.0)

    def test_stable_for_large_positive_margin(self):
        assert LogisticLoss().value([500.0])[0] == pytest.approx(0.0, abs=1e-12)

    def test_derivative_is_negative_sigmoid(self):
        assert LogisticLoss().derivative([0.0]) == pytest.approx([-0.5])

    def test_derivative_matches_finite_difference(self):
        loss = LogisticLoss()
        u, h = 0.7, 1e-6
        fd = (loss.value([u + h])[0] - loss.value([u - h])[0]) / (2 * h)
        assert loss.derivative([u])[0] == pytest.approx(fd, abs=1e-6)

    def test_second_derivative_matches_finite_difference(self):
        loss = LogisticLoss()
        u, h = -0.3, 1e-5
        fd = (
            loss.derivative([u + h])[0] - loss.derivative([u - h])[0]
        ) / (2 * h)
        assert loss.second_derivative([u])[0] == pytest.approx(fd, abs=1e-5)

    def test_curvature_bounded_by_quarter(self):
        us = np.linspace(-20, 20, 401)
        assert LogisticLoss().second_derivative(us).max() <= 0.25 + 1e-12

    @given(margins)
    def test_upper_bounds_zero_one(self, u):
        # log-loss / log(2) >= 0-1 loss; here we check the weaker fact that
        # logistic >= log(2) * zero-one at the decision boundary side.
        if u <= 0:
            assert LogisticLoss().value([u])[0] >= np.log(2) - 1e-12


class TestHingeLoss:
    def test_values(self):
        loss = HingeLoss()
        assert loss.value([2.0, 1.0, 0.0]) == pytest.approx([0.0, 0.0, 1.0])

    def test_derivative(self):
        loss = HingeLoss()
        assert loss.derivative([0.0, 2.0]) == pytest.approx([-1.0, 0.0])

    @given(margins)
    def test_upper_bounds_zero_one(self, u):
        assert HingeLoss().value([u])[0] >= ZeroOneLoss().value([u])[0] - 1e-12


class TestHuberHinge:
    def test_regions(self):
        loss = HuberHingeLoss(smoothing=0.5)
        assert loss.value([2.0])[0] == 0.0
        assert loss.value([-1.0])[0] == pytest.approx(2.0)
        assert 0 < loss.value([1.0])[0] < 1.0

    def test_continuous_at_region_boundaries(self):
        loss = HuberHingeLoss(smoothing=0.5)
        for boundary in [0.5, 1.5]:
            left = loss.value([boundary - 1e-9])[0]
            right = loss.value([boundary + 1e-9])[0]
            assert left == pytest.approx(right, abs=1e-6)

    def test_derivative_continuous(self):
        loss = HuberHingeLoss(smoothing=0.5)
        for boundary in [0.5, 1.5]:
            left = loss.derivative([boundary - 1e-9])[0]
            right = loss.derivative([boundary + 1e-9])[0]
            assert left == pytest.approx(right, abs=1e-6)

    def test_derivative_matches_finite_difference(self):
        loss = HuberHingeLoss(smoothing=0.5)
        for u in [-0.5, 0.8, 1.2, 1.9]:
            h = 1e-7
            fd = (loss.value([u + h])[0] - loss.value([u - h])[0]) / (2 * h)
            assert loss.derivative([u])[0] == pytest.approx(fd, abs=1e-5)

    def test_curvature_bound(self):
        loss = HuberHingeLoss(smoothing=0.25)
        us = np.linspace(-3, 3, 601)
        assert loss.second_derivative(us).max() <= 1 / (2 * 0.25) + 1e-12

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ValidationError):
            HuberHingeLoss(smoothing=0.0)


class TestRegressionLosses:
    def test_squared(self):
        assert SquaredLoss().value([3.0]) == pytest.approx([9.0])
        assert SquaredLoss().derivative([3.0]) == pytest.approx([6.0])

    def test_absolute(self):
        assert AbsoluteLoss().value([-2.0]) == pytest.approx([2.0])
        assert AbsoluteLoss().lipschitz_constant == 1.0


class TestTruncatedLoss:
    def test_clips_at_ceiling(self):
        loss = TruncatedLoss(HingeLoss(), ceiling=1.0)
        assert loss.value([-5.0])[0] == 1.0
        assert loss.bounds() == (0.0, 1.0)

    def test_below_ceiling_unchanged(self):
        loss = TruncatedLoss(HingeLoss(), ceiling=1.0)
        assert loss.value([0.5])[0] == pytest.approx(0.5)

    def test_derivative_zero_in_clipped_region(self):
        loss = TruncatedLoss(HingeLoss(), ceiling=1.0)
        assert loss.derivative([-5.0])[0] == 0.0
        assert loss.derivative([0.5])[0] == -1.0

    def test_rejects_non_margin_base(self):
        with pytest.raises(ValidationError):
            TruncatedLoss(SquaredLoss(), ceiling=1.0)

    @given(margins)
    def test_always_in_bounds(self, u):
        loss = TruncatedLoss(LogisticLoss(), ceiling=2.0)
        value = loss.value([u])[0]
        assert 0.0 <= value <= 2.0
