"""Unit tests for repro.utils.numerics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.utils.numerics import (
    log_mean_exp,
    logsumexp,
    normalize_log_weights,
    softmax,
    stable_log,
    xlogx,
    xlogy,
)


class TestLogsumexp:
    def test_matches_direct_computation(self):
        values = np.array([-1.0, 0.0, 2.0])
        assert logsumexp(values) == pytest.approx(np.log(np.exp(values).sum()))

    def test_no_overflow_for_huge_values(self):
        assert logsumexp([1000.0, 1000.0]) == pytest.approx(1000.0 + np.log(2))

    def test_all_minus_inf_gives_minus_inf(self):
        assert logsumexp([-np.inf, -np.inf]) == -np.inf

    def test_axis_handling(self):
        arr = np.log(np.array([[1.0, 1.0], [2.0, 2.0]]))
        out = logsumexp(arr, axis=1)
        assert out == pytest.approx(np.log([2.0, 4.0]))

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            logsumexp([])

    @given(
        hnp.arrays(
            float,
            st.integers(1, 20),
            elements=st.floats(-50, 50),
        )
    )
    def test_always_at_least_max(self, arr):
        assert logsumexp(arr) >= arr.max() - 1e-12


class TestLogMeanExp:
    def test_mean_of_equal_values(self):
        assert log_mean_exp([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_matches_direct(self):
        values = np.array([0.0, 1.0])
        assert log_mean_exp(values) == pytest.approx(
            np.log(np.exp(values).mean())
        )


class TestSoftmax:
    def test_sums_to_one(self):
        out = softmax([1.0, 2.0, 3.0])
        assert out.sum() == pytest.approx(1.0)

    def test_invariant_to_shift(self):
        a = softmax([1.0, 2.0])
        b = softmax([101.0, 102.0])
        assert a == pytest.approx(b)

    def test_minus_inf_gets_zero(self):
        out = softmax([0.0, -np.inf])
        assert out == pytest.approx([1.0, 0.0])

    def test_all_minus_inf_raises(self):
        with pytest.raises(ValidationError):
            softmax([-np.inf, -np.inf])


class TestNormalizeLogWeights:
    def test_normalizes(self):
        out = normalize_log_weights(np.log([2.0, 6.0]))
        assert out == pytest.approx([0.25, 0.75])

    def test_huge_weights_stable(self):
        out = normalize_log_weights([5000.0, 5000.0])
        assert out == pytest.approx([0.5, 0.5])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            normalize_log_weights([[0.0], [0.0]])


class TestXlog:
    def test_xlogx_zero_convention(self):
        assert xlogx([0.0]) == pytest.approx([0.0])

    def test_xlogx_value(self):
        assert xlogx([np.e]) == pytest.approx([np.e])

    def test_xlogy_zero_times_anything(self):
        assert xlogy([0.0], [0.0]) == pytest.approx([0.0])

    def test_xlogy_positive_mass_on_zero_is_minus_inf(self):
        assert xlogy([0.5], [0.0])[0] == -np.inf

    def test_xlogy_broadcasts(self):
        out = xlogy([[1.0], [2.0]], [np.e])
        assert out.shape == (2, 1)
        assert out.ravel() == pytest.approx([1.0, 2.0])

    def test_stable_log_of_zero(self):
        assert stable_log([0.0])[0] == -np.inf
