"""Unit tests for quantitative-information-flow leakage and DP bounds."""

import numpy as np
import pytest

from repro.core import GibbsEstimator, LearningChannel
from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information import (
    DiscreteChannel,
    alvim_min_entropy_bound,
    leakage_bound_report,
    mi_bound_capacity,
    mi_bound_group_privacy,
    mi_bound_source_entropy,
    min_entropy_leakage,
    multiplicative_leakage_capacity,
    posterior_vulnerability,
    vulnerability,
)
from repro.learning import BernoulliTask, PredictorGrid


@pytest.fixture
def bsc():
    return DiscreteChannel([0, 1], [0, 1], [[0.9, 0.1], [0.1, 0.9]])


class TestVulnerability:
    def test_prior_vulnerability(self):
        assert vulnerability([0.2, 0.8]) == pytest.approx(0.8)

    def test_posterior_vulnerability_bsc(self, bsc):
        # Uniform prior: V = Σ_y max_x 0.5·C[x,y] = 0.45 + 0.45 = 0.9.
        assert posterior_vulnerability(bsc, [0.5, 0.5]) == pytest.approx(0.9)

    def test_posterior_at_least_prior(self, bsc):
        rng = np.random.default_rng(0)
        for _ in range(20):
            prior = rng.dirichlet([1, 1])
            assert posterior_vulnerability(bsc, prior) >= vulnerability(prior) - 1e-12

    def test_length_mismatch_rejected(self, bsc):
        with pytest.raises(ValidationError):
            posterior_vulnerability(bsc, [0.5, 0.25, 0.25])


class TestMinEntropyLeakage:
    def test_nonnegative(self, bsc):
        assert min_entropy_leakage(bsc, [0.3, 0.7]) >= 0.0

    def test_useless_channel_leaks_nothing(self):
        channel = DiscreteChannel([0, 1], [0, 1], [[0.5, 0.5], [0.5, 0.5]])
        assert min_entropy_leakage(channel, [0.4, 0.6]) == pytest.approx(0.0)

    def test_noiseless_channel_leaks_everything(self):
        channel = DiscreteChannel([0, 1], [0, 1], np.eye(2))
        # Uniform prior: leakage = log(1/0.5) = log 2.
        assert min_entropy_leakage(channel, [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_capacity_is_uniform_prior_leakage(self, bsc):
        capacity = multiplicative_leakage_capacity(bsc)
        uniform = min_entropy_leakage(bsc, [0.5, 0.5])
        assert capacity == pytest.approx(uniform)

    def test_capacity_dominates_other_priors(self, bsc):
        capacity = multiplicative_leakage_capacity(bsc)
        rng = np.random.default_rng(1)
        for _ in range(30):
            prior = rng.dirichlet([1, 1])
            assert min_entropy_leakage(bsc, prior) <= capacity + 1e-12


class TestAlvimBound:
    def test_formula(self):
        # n=1, u=2: log(2e^ε / (1 + e^ε)).
        eps = 1.0
        expected = np.log(2 * np.e / (1 + np.e))
        assert alvim_min_entropy_bound(eps, 1, 2) == pytest.approx(expected)

    def test_linear_in_n(self):
        one = alvim_min_entropy_bound(1.0, 1, 2)
        three = alvim_min_entropy_bound(1.0, 3, 2)
        assert three == pytest.approx(3 * one)

    def test_randomized_response_attains_the_bound(self):
        """RR is the worst-case ε-DP channel for min-entropy leakage: its
        per-record leakage equals the Alvim bound exactly."""
        from repro.mechanisms import RandomizedResponse

        eps = 1.3
        channel = RandomizedResponse(eps).as_channel()
        leakage = min_entropy_leakage(channel, [0.5, 0.5])
        assert leakage == pytest.approx(alvim_min_entropy_bound(eps, 1, 2))

    def test_rejects_bad_universe(self):
        with pytest.raises(ValidationError):
            alvim_min_entropy_bound(1.0, 1, 1)


class TestMIBounds:
    def test_group_privacy_formula(self):
        assert mi_bound_group_privacy(0.5, 4) == pytest.approx(2.0)

    def test_capacity_bound_for_bsc(self, bsc):
        cap = mi_bound_capacity(bsc)
        f = 0.1
        expected = np.log(2) + f * np.log(f) + (1 - f) * np.log(1 - f)
        assert cap == pytest.approx(expected, abs=1e-7)

    def test_source_entropy_bound(self):
        assert mi_bound_source_entropy([0.5, 0.5]) == pytest.approx(np.log(2))


class TestLeakageBoundReport:
    @pytest.fixture
    def gibbs_channel(self):
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        estimator = GibbsEstimator.from_privacy(grid, 1.0, expected_sample_size=2)
        law = DiscreteDistribution([0, 1], [0.3, 0.7])
        learning = LearningChannel(law, 2, estimator.gibbs.posterior)
        return learning

    def test_all_bounds_dominate_measured_mi(self, gibbs_channel):
        report = leakage_bound_report(
            gibbs_channel.channel,
            gibbs_channel.sample_law.probabilities,
            epsilon=1.0,
            n=2,
            universe_size=2,
        )
        mi = report["mutual_information"]
        assert mi <= report["bound_group_privacy"] + 1e-9
        assert mi <= report["bound_capacity"] + 1e-7
        assert mi <= report["bound_source_entropy"] + 1e-9

    def test_alvim_bound_dominates_min_entropy_leakage(self, gibbs_channel):
        report = leakage_bound_report(
            gibbs_channel.channel,
            gibbs_channel.sample_law.probabilities,
            epsilon=1.0,
            n=2,
            universe_size=2,
        )
        assert (
            report["min_entropy_leakage"]
            <= report["bound_alvim_min_entropy"] + 1e-9
        )

    def test_capacity_tighter_than_group_privacy_at_large_epsilon(self):
        """With a small output alphabet, capacity saturates at log|Θ| while
        the group-privacy bound grows linearly in ε — the comparison the
        paper's future work asks for."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
        estimator = GibbsEstimator.from_privacy(grid, 10.0, expected_sample_size=2)
        law = DiscreteDistribution([0, 1], [0.5, 0.5])
        learning = LearningChannel(law, 2, estimator.gibbs.posterior)
        report = leakage_bound_report(
            learning.channel,
            learning.sample_law.probabilities,
            epsilon=10.0,
            n=2,
            universe_size=2,
        )
        assert report["bound_capacity"] < report["bound_group_privacy"]
