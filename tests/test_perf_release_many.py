"""Speedup smoke: vectorized ``release_many`` kernels beat the serial loop.

The CI acceptance bar is a >= 5x advantage at n = 50,000 draws; the
kernels actually land around 100x (Laplace) to 500x (exponential), so the
margin here is wide enough to survive shared-runner noise. Serial cost is
measured over a smaller draw count and scaled linearly — release() cost
is draw-count-independent — to keep the smoke fast. The pytest-benchmark
fixture times the batch path so the absolute kernel throughput shows up
in the benchmark table alongside the asserted ratio.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.learning import TwoGaussiansTask
from repro.learning.losses import LogisticLoss, TruncatedLoss
from repro.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.mechanisms.exponential import ExponentialMechanism
from repro.private_learning import RegularizedExponentialMechanism

BATCH_DRAWS = 50_000
SERIAL_DRAWS = 2_000
MIN_SPEEDUP = 5.0


def _case(name):
    if name == "laplace":
        mechanism = LaplaceMechanism(
            lambda d: float(np.sum(d)), sensitivity=1.0, epsilon=1.0
        )
    elif name == "gaussian":
        mechanism = GaussianMechanism(
            lambda d: float(np.sum(d)), 1.0, 1.0, 1e-6
        )
    else:
        mechanism = ExponentialMechanism(
            lambda d, u: -abs(sum(d) - u),
            outputs=range(16),
            sensitivity=1.0,
            epsilon=1.0,
        )
    return mechanism, [0.1, 0.5, 0.9]


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("name", ["laplace", "gaussian", "exponential"])
def test_release_many_is_at_least_5x_faster(benchmark, name):
    mechanism, dataset = _case(name)
    rng = np.random.default_rng(0)

    benchmark.pedantic(
        lambda: mechanism.release_many(dataset, BATCH_DRAWS, random_state=rng),
        rounds=3,
        iterations=1,
    )
    batch_seconds = _best_of(
        lambda: mechanism.release_many(dataset, BATCH_DRAWS, random_state=rng)
    )

    def serial():
        for _ in range(SERIAL_DRAWS):
            mechanism.release(dataset, random_state=rng)

    serial_seconds = _best_of(serial) * (BATCH_DRAWS / SERIAL_DRAWS)

    speedup = serial_seconds / batch_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"{name}: batch {batch_seconds * 1e3:.2f}ms vs projected serial "
        f"{serial_seconds * 1e3:.1f}ms for {BATCH_DRAWS} draws — only "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )


def test_langevin_batched_chains_at_least_5x_faster(benchmark):
    """ISSUE 8 acceptance bar: at d >= 16 the lock-step chain batch must
    beat an equivalent per-chain Python loop by >= 5x (it lands ~15-25x on
    a quiet machine; each serial draw pays `steps` Python-level MALA
    iterations that the batch amortizes across all chains)."""
    chain_batch = 256
    serial_chains = 16
    mean = np.zeros(16)
    mean[0], mean[1] = 1.38, 0.58
    task = TwoGaussiansTask(mean, clip_features=True)
    dataset = task.sample(50, random_state=7)
    mechanism = RegularizedExponentialMechanism(
        TruncatedLoss(LogisticLoss(), ceiling=2.0), 0.05, 1.0, steps=60
    )
    rng = np.random.default_rng(0)

    benchmark.pedantic(
        lambda: mechanism.release_many(dataset, chain_batch, random_state=rng),
        rounds=3,
        iterations=1,
    )
    batch_seconds = _best_of(
        lambda: mechanism.release_many(dataset, chain_batch, random_state=rng)
    )

    def serial():
        for _ in range(serial_chains):
            mechanism.release(dataset, random_state=rng)

    serial_seconds = _best_of(serial) * (chain_batch / serial_chains)

    speedup = serial_seconds / batch_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"langevin: batch {batch_seconds * 1e3:.1f}ms vs projected serial "
        f"{serial_seconds * 1e3:.1f}ms for {chain_batch} chains — only "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )
