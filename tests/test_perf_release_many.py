"""Speedup smoke: vectorized ``release_many`` kernels beat the serial loop.

The CI acceptance bar is a >= 5x advantage at n = 50,000 draws; the
kernels actually land around 100x (Laplace) to 500x (exponential), so the
margin here is wide enough to survive shared-runner noise. Serial cost is
measured over a smaller draw count and scaled linearly — release() cost
is draw-count-independent — to keep the smoke fast. The pytest-benchmark
fixture times the batch path so the absolute kernel throughput shows up
in the benchmark table alongside the asserted ratio.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.learning import TwoGaussiansTask
from repro.learning.losses import LogisticLoss, TruncatedLoss
from repro.mechanisms import GaussianMechanism, LaplaceMechanism
from repro.mechanisms.exponential import ExponentialMechanism
from repro.private_learning import RegularizedExponentialMechanism

BATCH_DRAWS = 50_000
SERIAL_DRAWS = 2_000
MIN_SPEEDUP = 5.0


def _case(name):
    if name == "laplace":
        mechanism = LaplaceMechanism(
            lambda d: float(np.sum(d)), sensitivity=1.0, epsilon=1.0
        )
    elif name == "gaussian":
        mechanism = GaussianMechanism(
            lambda d: float(np.sum(d)), 1.0, 1.0, 1e-6
        )
    else:
        mechanism = ExponentialMechanism(
            lambda d, u: -abs(sum(d) - u),
            outputs=range(16),
            sensitivity=1.0,
            epsilon=1.0,
        )
    return mechanism, [0.1, 0.5, 0.9]


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("name", ["laplace", "gaussian", "exponential"])
def test_release_many_is_at_least_5x_faster(benchmark, name):
    mechanism, dataset = _case(name)
    rng = np.random.default_rng(0)

    benchmark.pedantic(
        lambda: mechanism.release_many(dataset, BATCH_DRAWS, random_state=rng),
        rounds=3,
        iterations=1,
    )
    batch_seconds = _best_of(
        lambda: mechanism.release_many(dataset, BATCH_DRAWS, random_state=rng)
    )

    def serial():
        for _ in range(SERIAL_DRAWS):
            mechanism.release(dataset, random_state=rng)

    serial_seconds = _best_of(serial) * (BATCH_DRAWS / SERIAL_DRAWS)

    speedup = serial_seconds / batch_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"{name}: batch {batch_seconds * 1e3:.2f}ms vs projected serial "
        f"{serial_seconds * 1e3:.1f}ms for {BATCH_DRAWS} draws — only "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )


def test_langevin_batched_chains_at_least_5x_faster(benchmark):
    """ISSUE 8 acceptance bar: at d >= 16 the lock-step chain batch must
    beat an equivalent per-chain Python loop by >= 5x (it lands ~15-25x on
    a quiet machine; each serial draw pays `steps` Python-level MALA
    iterations that the batch amortizes across all chains)."""
    chain_batch = 256
    serial_chains = 16
    mean = np.zeros(16)
    mean[0], mean[1] = 1.38, 0.58
    task = TwoGaussiansTask(mean, clip_features=True)
    dataset = task.sample(50, random_state=7)
    mechanism = RegularizedExponentialMechanism(
        TruncatedLoss(LogisticLoss(), ceiling=2.0), 0.05, 1.0, steps=60
    )
    rng = np.random.default_rng(0)

    benchmark.pedantic(
        lambda: mechanism.release_many(dataset, chain_batch, random_state=rng),
        rounds=3,
        iterations=1,
    )
    batch_seconds = _best_of(
        lambda: mechanism.release_many(dataset, chain_batch, random_state=rng)
    )

    def serial():
        for _ in range(serial_chains):
            mechanism.release(dataset, random_state=rng)

    serial_seconds = _best_of(serial) * (chain_batch / serial_chains)

    speedup = serial_seconds / batch_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"langevin: batch {batch_seconds * 1e3:.1f}ms vs projected serial "
        f"{serial_seconds * 1e3:.1f}ms for {chain_batch} chains — only "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )


def _local_case(name):
    from repro.local_privacy import (
        KRandomizedResponse,
        L2SamplingMechanism,
        LInfSamplingMechanism,
    )

    if name == "k-rr":
        mechanism = KRandomizedResponse(["a", "b", "c", "d"], epsilon=1.0)
        records = ["a", "b", "c", "d"] * (BATCH_DRAWS // 4)
        return mechanism, records
    rng = np.random.default_rng(11)
    d = 8
    matrix = rng.uniform(-1.0, 1.0, size=(BATCH_DRAWS, d))
    if name == "l2-sampling":
        mechanism = L2SamplingMechanism(d, epsilon=1.0)
        norms = np.sqrt((matrix * matrix).sum(axis=1, keepdims=True))
        matrix = matrix / np.maximum(norms, 1.0)
    else:
        mechanism = LInfSamplingMechanism(d, epsilon=1.0)
    return mechanism, matrix


@pytest.mark.parametrize("name", ["k-rr", "l2-sampling", "linf-sampling"])
def test_privatize_many_is_at_least_5x_faster(benchmark, name):
    """ISSUE 10 acceptance bar: the local-model batch kernels must beat
    per-record privatize() by >= 5x at n = 50,000 (they land 1-2 orders
    of magnitude higher; the serial path pays Python dispatch and
    validation per record that the block draw amortizes)."""
    mechanism, records = _local_case(name)
    rng = np.random.default_rng(0)

    benchmark.pedantic(
        lambda: mechanism.privatize_many(records, random_state=rng),
        rounds=3,
        iterations=1,
    )
    batch_seconds = _best_of(
        lambda: mechanism.privatize_many(records, random_state=rng)
    )

    def serial():
        for record in records[:SERIAL_DRAWS]:
            mechanism.privatize(record, random_state=rng)

    serial_seconds = _best_of(serial) * (BATCH_DRAWS / SERIAL_DRAWS)

    speedup = serial_seconds / batch_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"{name}: batch {batch_seconds * 1e3:.2f}ms vs projected serial "
        f"{serial_seconds * 1e3:.1f}ms for {BATCH_DRAWS} records — only "
        f"{speedup:.1f}x, need >= {MIN_SPEEDUP}x"
    )


@pytest.mark.parametrize("name", ["k-rr", "l2-sampling", "linf-sampling"])
def test_privatize_many_bit_identical_to_serial(name):
    """Stream equivalence at the acceptance scale: one shared Generator,
    batch vs per-record, byte-for-byte equal reports (spot-checked on a
    slice so the serial loop stays cheap)."""
    mechanism, records = _local_case(name)
    n = 400
    subset = records[:n]
    batch_rng = np.random.default_rng(123)
    serial_rng = np.random.default_rng(123)
    batch = mechanism.privatize_many(subset, random_state=batch_rng)
    serial = [
        mechanism.privatize(record, random_state=serial_rng)
        for record in subset
    ]
    for got, expected in zip(batch, serial):
        np.testing.assert_array_equal(got, expected)
    assert batch_rng.uniform() == serial_rng.uniform()
