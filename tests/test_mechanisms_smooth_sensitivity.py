"""Unit tests for smooth sensitivity and the private median."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.smooth_sensitivity import (
    SmoothSensitivityMedian,
    median_local_sensitivity_at_distance,
    median_smooth_sensitivity,
)


class TestLocalSensitivity:
    def test_k_zero_is_local_sensitivity(self):
        # Data 0, 0.5, 1 on [0, 1]: moving one point shifts the median to
        # a neighbouring order statistic; A_0 = max gap around the median.
        arr = np.array([0.0, 0.5, 1.0])
        a0 = median_local_sensitivity_at_distance(arr, 0, 0.0, 1.0)
        assert a0 == pytest.approx(0.5)

    def test_saturates_at_full_range(self):
        arr = np.array([0.4, 0.5, 0.6])
        big_k = median_local_sensitivity_at_distance(arr, 10, 0.0, 1.0)
        assert big_k == pytest.approx(1.0)

    def test_monotone_in_k(self):
        rng = np.random.default_rng(0)
        arr = np.sort(rng.uniform(size=11))
        values = [
            median_local_sensitivity_at_distance(arr, k, 0.0, 1.0)
            for k in range(8)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_clustered_data_has_tiny_local_sensitivity(self):
        arr = np.full(101, 0.5)
        assert median_local_sensitivity_at_distance(arr, 0, 0.0, 1.0) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            median_local_sensitivity_at_distance(np.array([]), 0, 0.0, 1.0)


class TestSmoothSensitivity:
    def test_at_least_local_at_most_global(self):
        rng = np.random.default_rng(1)
        arr = rng.uniform(size=25)
        beta = 0.2
        smooth = median_smooth_sensitivity(arr, beta, lower=0.0, upper=1.0)
        local = median_local_sensitivity_at_distance(
            np.sort(arr), 0, 0.0, 1.0
        )
        assert local - 1e-12 <= smooth <= 1.0 + 1e-12

    def test_smoothness_property(self):
        """|S(x)| vs |S(x')| on neighbours: e^{-β} ≤ S(x')/S(x) ≤ e^{β} —
        the defining property that makes noise calibration private."""
        rng = np.random.default_rng(2)
        arr = rng.uniform(size=21)
        beta = 0.3
        base = median_smooth_sensitivity(arr, beta, lower=0.0, upper=1.0)
        for _ in range(10):
            neighbour = arr.copy()
            neighbour[int(rng.integers(21))] = rng.uniform()
            other = median_smooth_sensitivity(
                neighbour, beta, lower=0.0, upper=1.0
            )
            ratio = other / base
            assert np.exp(-beta) - 1e-9 <= ratio <= np.exp(beta) + 1e-9

    def test_concentrated_data_much_below_global(self):
        arr = 0.5 + 0.01 * np.random.default_rng(3).standard_normal(501)
        arr = np.clip(arr, 0, 1)
        smooth = median_smooth_sensitivity(arr, beta=0.1, lower=0.0, upper=1.0)
        assert smooth < 0.05  # global sensitivity would be 1.0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValidationError):
            median_smooth_sensitivity([1.5], 0.1, lower=0.0, upper=1.0)


class TestSmoothSensitivityMedian:
    @pytest.fixture
    def clustered(self):
        rng = np.random.default_rng(4)
        return np.clip(0.6 + 0.02 * rng.standard_normal(301), 0, 1)

    def test_cauchy_variant_is_pure_dp_spec(self):
        mech = SmoothSensitivityMedian(0.0, 1.0, epsilon=1.0)
        assert mech.privacy.is_pure
        assert mech.noise_kind == "cauchy"

    def test_laplace_variant_spec(self):
        mech = SmoothSensitivityMedian(0.0, 1.0, epsilon=1.0, delta=1e-6)
        assert not mech.privacy.is_pure
        assert mech.noise_kind == "laplace"

    def test_release_within_bounds(self, clustered):
        mech = SmoothSensitivityMedian(0.0, 1.0, epsilon=0.5)
        rng = np.random.default_rng(5)
        for _ in range(100):
            assert 0.0 <= mech.release(clustered, random_state=rng) <= 1.0

    def test_accuracy_on_clustered_data(self, clustered):
        """Median absolute error of the smooth mechanism is far below the
        global-sensitivity Laplace comparator on concentrated data."""
        epsilon = 1.0
        mech = SmoothSensitivityMedian(0.0, 1.0, epsilon=epsilon, delta=1e-6)
        rng = np.random.default_rng(6)
        truth = float(np.median(clustered))
        errors = np.array(
            [
                abs(mech.release(clustered, random_state=rng) - truth)
                for _ in range(2000)
            ]
        )
        smooth_error = float(np.median(errors))
        # Global comparator: Laplace(range/ε) has median abs error
        # range/ε · ln 2 ≈ 0.69.
        global_error = mech.global_sensitivity_noise_scale() * np.log(2)
        assert smooth_error < global_error / 10

    def test_utility_improves_with_epsilon(self, clustered):
        truth = float(np.median(clustered))

        def median_error(epsilon, seed):
            mech = SmoothSensitivityMedian(0.0, 1.0, epsilon=epsilon, delta=1e-6)
            rng = np.random.default_rng(seed)
            errs = [
                abs(mech.release(clustered, random_state=rng) - truth)
                for _ in range(500)
            ]
            return float(np.median(errs))

        assert median_error(5.0, 7) < median_error(0.1, 8)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            SmoothSensitivityMedian(1.0, 0.0, epsilon=1.0)
