"""Failure-injection tests: broken inputs must be *detected*, not absorbed.

Each test plants a specific defect — an understated sensitivity, a
miscalibrated temperature, an exhausted iteration budget — and asserts the
library surfaces it (a flagged audit, a raised exception, a ``converged``
flag), because silent acceptance of any of these would void the privacy
or correctness story.
"""

import asyncio

import numpy as np
import pytest

from repro.core import GibbsEstimator, GibbsPosterior
from repro.distributions import DiscreteDistribution
from repro.exceptions import (
    ConvergenceError,
    ServiceClosedError,
    ServingError,
    ServingTimeoutError,
    ValidationError,
)
from repro.learning import BernoulliTask, PredictorGrid, gradient_descent
from repro.mechanisms import ExponentialMechanism, Mechanism, PrivacySpec
from repro.observability import Tracer, tracing
from repro.privacy import ExactPrivacyAuditor
from repro.serving import (
    ReleaseService,
    ServiceConfig,
    SimulatedClock,
    TenantRegistry,
)
from repro.utils.validation import check_random_state


class TestUnderstatedSensitivity:
    def test_exponential_mechanism_flagged(self):
        """Declaring Δq = 0.2 when the true sensitivity is 1 makes the
        mechanism leak more than its claimed ε; the exact auditor must
        catch it."""
        mech = ExponentialMechanism(
            lambda d, u: float(sum(d) == u),  # true sensitivity 1
            outputs=range(4),
            sensitivity=0.2,  # lie
            epsilon=0.5,
        )
        report = ExactPrivacyAuditor(mech.output_distribution).audit(
            [0, 1], n=3, claimed_epsilon=mech.epsilon
        )
        assert not report.satisfied
        assert report.measured_epsilon > mech.epsilon

    def test_honest_sensitivity_passes(self):
        mech = ExponentialMechanism(
            lambda d, u: float(sum(d) == u),
            outputs=range(4),
            sensitivity=1.0,
            epsilon=0.5,
        )
        report = ExactPrivacyAuditor(mech.output_distribution).audit(
            [0, 1], n=3, claimed_epsilon=mech.epsilon
        )
        assert report.satisfied


class TestMiscalibratedTemperature:
    def test_overheated_gibbs_flagged(self):
        """Running the Gibbs posterior at 10× the calibrated temperature
        while still claiming the target ε must fail the audit."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        target_epsilon = 0.5
        n = 2
        honest = GibbsEstimator.from_privacy(grid, target_epsilon, n)
        overheated = GibbsPosterior(grid, honest.temperature * 10)
        report = ExactPrivacyAuditor(overheated.posterior).audit(
            [0, 1], n, claimed_epsilon=target_epsilon
        )
        assert not report.satisfied

    def test_wrong_sample_size_rejected_not_silently_leaking(self):
        """Feeding a smaller sample than the calibration assumed would
        silently weaken privacy; the estimator refuses instead."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        estimator = GibbsEstimator.from_privacy(grid, 1.0, 100)
        with pytest.raises(ValidationError, match="calibrated"):
            estimator.release([1] * 10, random_state=0)


class TestLossBoundViolations:
    def test_out_of_bounds_loss_detected_at_use(self):
        """A loss escaping its declared bounds breaks the sensitivity
        analysis; the grid validates every evaluation."""
        grid = PredictorGrid(
            [0.0, 1.0],
            lambda theta, z: 3.0 * abs(theta - z),  # range [0, 3], not [0, 1]
            loss_bounds=(0.0, 1.0),
        )
        with pytest.raises(ValidationError, match="bounds"):
            grid.empirical_risks([1])


class TestIterationBudgets:
    def test_gradient_descent_raises_when_asked(self):
        # Rosenbrock-like narrow valley; 2 iterations cannot converge.
        def objective(x):
            return float(100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)

        def gradient(x):
            return np.array(
                [
                    -400 * x[0] * (x[1] - x[0] ** 2) - 2 * (1 - x[0]),
                    200 * (x[1] - x[0] ** 2),
                ]
            )

        with pytest.raises(ConvergenceError):
            gradient_descent(
                objective,
                gradient,
                np.array([-1.5, 2.0]),
                max_iterations=2,
                tol=1e-12,
                raise_on_failure=True,
            )

    def test_rate_distortion_flag_and_raise(self):
        from repro.information import rate_distortion

        rng = np.random.default_rng(0)
        d = rng.uniform(size=(6, 6))
        starved = rate_distortion(
            np.full(6, 1 / 6), d, beta=1.0, max_iterations=1, tol=0.0
        )
        assert not starved.converged
        with pytest.raises(ConvergenceError):
            rate_distortion(
                np.full(6, 1 / 6),
                d,
                beta=1.0,
                max_iterations=1,
                tol=0.0,
                raise_on_failure=True,
            )


class TestAuditorInputValidation:
    def test_inconsistent_output_supports_rejected(self):
        """A mechanism whose output support depends on the data leaks
        through the support itself; the exact auditor refuses to compare."""

        def law(dataset):
            if sum(dataset) > 0:
                return DiscreteDistribution(["a", "b"], [0.5, 0.5])
            return DiscreteDistribution(["a", "c"], [0.5, 0.5])

        auditor = ExactPrivacyAuditor(law)
        with pytest.raises(ValidationError, match="support"):
            auditor.audit([0, 1], n=1)


class TestNumericalEdges:
    def test_gibbs_with_identical_risks_is_exactly_prior(self):
        """Constant risk: the tilt must cancel exactly, leaving the prior
        (a regression guard against drift in the log-domain path)."""
        grid = PredictorGrid([0.0, 0.5, 1.0], lambda t, z: 0.5)
        prior = DiscreteDistribution(grid.thetas, [0.2, 0.3, 0.5])
        gibbs = GibbsPosterior(grid, temperature=1e6, prior=prior)
        posterior = gibbs.posterior([1, 2, 3])
        assert posterior.probabilities == pytest.approx(
            prior.probabilities, abs=1e-10
        )

    def test_extreme_epsilon_calibration_finite(self):
        task = BernoulliTask(p=0.5)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
        estimator = GibbsEstimator.from_privacy(grid, 1e6, 10)
        dist = estimator.output_distribution([1] * 10)
        assert np.isfinite(dist.probabilities).all()
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_tiny_epsilon_calibration_finite(self):
        task = BernoulliTask(p=0.5)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
        estimator = GibbsEstimator.from_privacy(grid, 1e-9, 10)
        dist = estimator.output_distribution([1] * 10)
        assert dist.entropy() == pytest.approx(np.log(3), abs=1e-6)


class FlakyMechanism(Mechanism):
    """Test double whose ``release`` raises on chosen draw indices.

    It deliberately does *not* override ``_release_many``, so batch
    flushes run the base fallback loop — the path where a mid-batch
    exception leaves earlier draws done and must still be accounted.
    """

    def __init__(self, fail_on=(), epsilon=0.5):
        super().__init__(PrivacySpec(epsilon))
        self.fail_on = set(fail_on)
        self.calls = 0

    def release(self, dataset, random_state=None):
        rng = check_random_state(random_state)
        self.calls += 1
        if self.calls in self.fail_on:
            raise RuntimeError("injected mid-batch failure")
        return float(rng.normal())


FLAKY_DATASET = [0.25, 0.75]


def flaky_service(clock, mechanism, *, budget=10.0, **config):
    """One-tenant service fronting an injected-fault mechanism."""
    registry = TenantRegistry()
    registry.register("alice", PrivacySpec(budget), seed=13, shards=2)
    service = ReleaseService(
        registry, clock=clock, config=ServiceConfig(**config)
    )
    service.add_mechanism("flaky", mechanism)
    return service


class TestServingFaultInjection:
    """The serving front door under injected faults.

    Reservation semantics under test: a charge rolls back exactly when
    the release provably did not happen (failed batch, queued timeout,
    abort), every rollback leaves a refund event on the ledger, and the
    failure itself surfaces as a raised error — never a silent drop.
    """

    def test_mid_batch_exception_refunds_and_fails_loud(self):
        """A flush that dies mid-loop must refund every rider, fail every
        future with ServingError, and still ledger the draw that
        completed before the fault (the mechanism ran — once)."""
        clock = SimulatedClock()
        mechanism = FlakyMechanism(fail_on={2})
        service = flaky_service(clock, mechanism, flush_window=0.01)
        tracer = Tracer("fault-mid-batch")

        async def main():
            return await asyncio.gather(
                *(
                    service.submit("alice", "flaky", FLAKY_DATASET)
                    for _ in range(3)
                ),
                return_exceptions=True,
            )

        with tracing(tracer):
            results = clock.run(main())
        assert all(isinstance(r, ServingError) for r in results)
        assert all("batch flush failed" in str(r) for r in results)
        accountant = service.registry.get("alice").accountant
        assert accountant.spent_epsilon == 0.0
        refunds = [e for e in tracer.events if e.kind == "refund"]
        assert len(refunds) == 3
        assert tracer.metrics.counter("serving.batch_failures") == 3
        # The draw before the injected fault really happened; the partial
        # aggregated release event keeps the mechanism ledger honest.
        releases = [e for e in tracer.events if e.kind == "release"]
        assert sum(e.count for e in releases) == 1

    def test_retry_recovers_with_a_reseeded_generator(self):
        """With retry budget, the second attempt draws from a re-derived
        generator, succeeds, and the reservation stands — no refunds."""
        clock = SimulatedClock()
        mechanism = FlakyMechanism(fail_on={2})
        service = flaky_service(
            clock, mechanism, flush_window=0.01, max_retries=1
        )
        tracer = Tracer("fault-retry")

        async def main():
            return await asyncio.gather(
                *(
                    service.submit("alice", "flaky", FLAKY_DATASET)
                    for _ in range(3)
                )
            )

        with tracing(tracer):
            results = clock.run(main())
        assert [len(piece) for piece in results] == [1, 1, 1]
        assert tracer.metrics.counter("serving.retries") == 1
        assert tracer.metrics.counter("serving.batch_failures") == 0
        accountant = service.registry.get("alice").accountant
        assert accountant.spent_epsilon == pytest.approx(3 * 0.5)
        assert not [e for e in tracer.events if e.kind == "refund"]

    def test_exhausted_retries_still_roll_back(self):
        """A mechanism that fails every attempt exhausts the retry budget
        and the rollback contract holds exactly as with no retries."""
        clock = SimulatedClock()
        # Fails on every call: attempt 0 and both retries.
        mechanism = FlakyMechanism(fail_on=set(range(1, 100)))
        service = flaky_service(
            clock, mechanism, flush_window=0.01, max_retries=2
        )
        tracer = Tracer("fault-exhausted")

        async def main():
            with pytest.raises(ServingError, match="after 3 attempt"):
                await service.submit("alice", "flaky", FLAKY_DATASET)

        with tracing(tracer):
            clock.run(main())
        assert tracer.metrics.counter("serving.retries") == 2
        assert service.registry.get("alice").accountant.spent_epsilon == 0.0
        assert len([e for e in tracer.events if e.kind == "refund"]) == 1

    def test_timeout_while_queued_refunds_the_reservation(self):
        """A request whose timeout fires before its window flushes was
        provably never released: refund, refusal-grade ledger trail, and
        the mechanism must never have run."""
        clock = SimulatedClock()
        mechanism = FlakyMechanism()
        service = flaky_service(
            clock, mechanism, flush_window=0.5, request_timeout=0.01
        )
        tracer = Tracer("fault-timeout")

        async def main():
            with pytest.raises(ServingTimeoutError):
                await service.submit("alice", "flaky", FLAKY_DATASET)
            return clock.now()

        with tracing(tracer):
            elapsed = clock.run(main())
        assert elapsed == pytest.approx(0.01)
        assert mechanism.calls == 0
        assert service.registry.get("alice").accountant.spent_epsilon == 0.0
        assert tracer.metrics.counter("serving.timeouts") == 1
        assert len([e for e in tracer.events if e.kind == "refund"]) == 1

    def test_abort_during_flush_window_refunds_queued_requests(self):
        """Shutdown racing an open window: abort() must refund the queued
        reservation and fail the rider with ServiceClosedError before
        any release happens."""
        clock = SimulatedClock()
        mechanism = FlakyMechanism()
        service = flaky_service(clock, mechanism, flush_window=10.0)
        tracer = Tracer("fault-abort")

        async def main():
            pending = asyncio.ensure_future(
                service.submit("alice", "flaky", FLAKY_DATASET)
            )
            await asyncio.sleep(0)  # let the submit reserve and enqueue
            await service.abort()
            with pytest.raises(ServiceClosedError):
                await pending
            return clock.now()

        with tracing(tracer):
            elapsed = clock.run(main())
        assert elapsed == 0.0
        assert mechanism.calls == 0
        assert service.registry.get("alice").accountant.spent_epsilon == 0.0
        assert tracer.metrics.counter("serving.aborted") == 1
        assert len([e for e in tracer.events if e.kind == "refund"]) == 1
