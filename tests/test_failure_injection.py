"""Failure-injection tests: broken inputs must be *detected*, not absorbed.

Each test plants a specific defect — an understated sensitivity, a
miscalibrated temperature, an exhausted iteration budget — and asserts the
library surfaces it (a flagged audit, a raised exception, a ``converged``
flag), because silent acceptance of any of these would void the privacy
or correctness story.
"""

import numpy as np
import pytest

from repro.core import GibbsEstimator, GibbsPosterior
from repro.distributions import DiscreteDistribution
from repro.exceptions import ConvergenceError, ValidationError
from repro.learning import BernoulliTask, PredictorGrid, gradient_descent
from repro.mechanisms import ExponentialMechanism
from repro.privacy import ExactPrivacyAuditor


class TestUnderstatedSensitivity:
    def test_exponential_mechanism_flagged(self):
        """Declaring Δq = 0.2 when the true sensitivity is 1 makes the
        mechanism leak more than its claimed ε; the exact auditor must
        catch it."""
        mech = ExponentialMechanism(
            lambda d, u: float(sum(d) == u),  # true sensitivity 1
            outputs=range(4),
            sensitivity=0.2,  # lie
            epsilon=0.5,
        )
        report = ExactPrivacyAuditor(mech.output_distribution).audit(
            [0, 1], n=3, claimed_epsilon=mech.epsilon
        )
        assert not report.satisfied
        assert report.measured_epsilon > mech.epsilon

    def test_honest_sensitivity_passes(self):
        mech = ExponentialMechanism(
            lambda d, u: float(sum(d) == u),
            outputs=range(4),
            sensitivity=1.0,
            epsilon=0.5,
        )
        report = ExactPrivacyAuditor(mech.output_distribution).audit(
            [0, 1], n=3, claimed_epsilon=mech.epsilon
        )
        assert report.satisfied


class TestMiscalibratedTemperature:
    def test_overheated_gibbs_flagged(self):
        """Running the Gibbs posterior at 10× the calibrated temperature
        while still claiming the target ε must fail the audit."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        target_epsilon = 0.5
        n = 2
        honest = GibbsEstimator.from_privacy(grid, target_epsilon, n)
        overheated = GibbsPosterior(grid, honest.temperature * 10)
        report = ExactPrivacyAuditor(overheated.posterior).audit(
            [0, 1], n, claimed_epsilon=target_epsilon
        )
        assert not report.satisfied

    def test_wrong_sample_size_rejected_not_silently_leaking(self):
        """Feeding a smaller sample than the calibration assumed would
        silently weaken privacy; the estimator refuses instead."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        estimator = GibbsEstimator.from_privacy(grid, 1.0, 100)
        with pytest.raises(ValidationError, match="calibrated"):
            estimator.release([1] * 10, random_state=0)


class TestLossBoundViolations:
    def test_out_of_bounds_loss_detected_at_use(self):
        """A loss escaping its declared bounds breaks the sensitivity
        analysis; the grid validates every evaluation."""
        grid = PredictorGrid(
            [0.0, 1.0],
            lambda theta, z: 3.0 * abs(theta - z),  # range [0, 3], not [0, 1]
            loss_bounds=(0.0, 1.0),
        )
        with pytest.raises(ValidationError, match="bounds"):
            grid.empirical_risks([1])


class TestIterationBudgets:
    def test_gradient_descent_raises_when_asked(self):
        # Rosenbrock-like narrow valley; 2 iterations cannot converge.
        def objective(x):
            return float(100 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2)

        def gradient(x):
            return np.array(
                [
                    -400 * x[0] * (x[1] - x[0] ** 2) - 2 * (1 - x[0]),
                    200 * (x[1] - x[0] ** 2),
                ]
            )

        with pytest.raises(ConvergenceError):
            gradient_descent(
                objective,
                gradient,
                np.array([-1.5, 2.0]),
                max_iterations=2,
                tol=1e-12,
                raise_on_failure=True,
            )

    def test_rate_distortion_flag_and_raise(self):
        from repro.information import rate_distortion

        rng = np.random.default_rng(0)
        d = rng.uniform(size=(6, 6))
        starved = rate_distortion(
            np.full(6, 1 / 6), d, beta=1.0, max_iterations=1, tol=0.0
        )
        assert not starved.converged
        with pytest.raises(ConvergenceError):
            rate_distortion(
                np.full(6, 1 / 6),
                d,
                beta=1.0,
                max_iterations=1,
                tol=0.0,
                raise_on_failure=True,
            )


class TestAuditorInputValidation:
    def test_inconsistent_output_supports_rejected(self):
        """A mechanism whose output support depends on the data leaks
        through the support itself; the exact auditor refuses to compare."""

        def law(dataset):
            if sum(dataset) > 0:
                return DiscreteDistribution(["a", "b"], [0.5, 0.5])
            return DiscreteDistribution(["a", "c"], [0.5, 0.5])

        auditor = ExactPrivacyAuditor(law)
        with pytest.raises(ValidationError, match="support"):
            auditor.audit([0, 1], n=1)


class TestNumericalEdges:
    def test_gibbs_with_identical_risks_is_exactly_prior(self):
        """Constant risk: the tilt must cancel exactly, leaving the prior
        (a regression guard against drift in the log-domain path)."""
        grid = PredictorGrid([0.0, 0.5, 1.0], lambda t, z: 0.5)
        prior = DiscreteDistribution(grid.thetas, [0.2, 0.3, 0.5])
        gibbs = GibbsPosterior(grid, temperature=1e6, prior=prior)
        posterior = gibbs.posterior([1, 2, 3])
        assert posterior.probabilities == pytest.approx(
            prior.probabilities, abs=1e-10
        )

    def test_extreme_epsilon_calibration_finite(self):
        task = BernoulliTask(p=0.5)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
        estimator = GibbsEstimator.from_privacy(grid, 1e6, 10)
        dist = estimator.output_distribution([1] * 10)
        assert np.isfinite(dist.probabilities).all()
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_tiny_epsilon_calibration_finite(self):
        task = BernoulliTask(p=0.5)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
        estimator = GibbsEstimator.from_privacy(grid, 1e-9, 10)
        dist = estimator.output_distribution([1] * 10)
        assert dist.entropy() == pytest.approx(np.log(3), abs=1e-6)
