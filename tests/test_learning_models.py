"""Unit tests for the non-private learners."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learning import (
    LinearSVM,
    LogisticRegressionModel,
    RidgeRegressionModel,
    TwoGaussiansTask,
)


@pytest.fixture
def separable_data():
    task = TwoGaussiansTask([2.0, 0.0])
    return task.sample(400, random_state=0)


class TestLogisticRegression:
    def test_fits_separable_data(self, separable_data):
        x, y = separable_data
        model = LogisticRegressionModel(regularization=0.01).fit(x, y)
        assert model.accuracy(x, y) > 0.9

    def test_recovers_direction(self, separable_data):
        x, y = separable_data
        model = LogisticRegressionModel(regularization=0.01).fit(x, y)
        direction = model.coefficients / np.linalg.norm(model.coefficients)
        assert direction[0] == pytest.approx(1.0, abs=0.15)

    def test_gradient_zero_at_solution(self, separable_data):
        x, y = separable_data
        model = LogisticRegressionModel(regularization=0.1).fit(x, y)
        grad = model.gradient(model.coefficients, x, y.astype(float))
        assert np.linalg.norm(grad) < 1e-6

    def test_newton_and_gd_agree(self, separable_data):
        x, y = separable_data
        newton = LogisticRegressionModel(regularization=0.5).fit(x, y)
        gd = LogisticRegressionModel(regularization=0.5).fit(
            x, y, use_newton=False
        )
        assert newton.coefficients == pytest.approx(gd.coefficients, abs=1e-4)

    def test_probabilities_calibrated_shape(self, separable_data):
        x, y = separable_data
        model = LogisticRegressionModel().fit(x, y)
        probs = model.predict_probability(x)
        assert probs.shape == (len(y),)
        assert (0 <= probs).all() and (probs <= 1).all()

    def test_regularization_shrinks_coefficients(self, separable_data):
        x, y = separable_data
        weak = LogisticRegressionModel(regularization=0.001).fit(x, y)
        strong = LogisticRegressionModel(regularization=10.0).fit(x, y)
        assert np.linalg.norm(strong.coefficients) < np.linalg.norm(
            weak.coefficients
        )

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegressionModel().predict(np.zeros((1, 2)))

    def test_rejects_bad_labels(self):
        model = LogisticRegressionModel()
        with pytest.raises(ValidationError):
            model.fit(np.zeros((2, 2)), [0, 1])


class TestLinearSVM:
    def test_fits_separable_data(self, separable_data):
        x, y = separable_data
        model = LinearSVM(regularization=0.01).fit(x, y)
        assert model.accuracy(x, y) > 0.9

    def test_agrees_with_logistic_on_direction(self, separable_data):
        x, y = separable_data
        svm = LinearSVM(regularization=0.1).fit(x, y)
        logistic = LogisticRegressionModel(regularization=0.1).fit(x, y)
        cos = float(
            svm.coefficients
            @ logistic.coefficients
            / np.linalg.norm(svm.coefficients)
            / np.linalg.norm(logistic.coefficients)
        )
        assert cos > 0.95


class TestRidgeRegression:
    def test_exact_on_noiseless_data(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(200, 3))
        theta_star = np.array([1.0, -2.0, 0.5])
        y = x @ theta_star
        model = RidgeRegressionModel(regularization=1e-8).fit(x, y)
        assert model.coefficients == pytest.approx(theta_star, abs=1e-4)

    def test_closed_form_matches_normal_equations(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        lam = 0.3
        model = RidgeRegressionModel(regularization=lam).fit(x, y)
        n = len(y)
        expected = np.linalg.solve(
            x.T @ x / n + lam * np.eye(2), x.T @ y / n
        )
        assert model.coefficients == pytest.approx(expected)

    def test_mse_decreases_vs_zero_predictor(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 2))
        y = x @ np.array([1.0, 1.0]) + 0.1 * rng.normal(size=100)
        model = RidgeRegressionModel(regularization=0.01).fit(x, y)
        assert model.mean_squared_error(x, y) < float((y**2).mean())

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RidgeRegressionModel().predict(np.zeros((1, 2)))

    def test_rejects_row_mismatch(self):
        with pytest.raises(ValidationError):
            RidgeRegressionModel().fit(np.zeros((3, 2)), np.zeros(2))
