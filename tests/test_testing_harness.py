"""Tier-1 unit tests for the statistical verification harness itself.

Fast and fully deterministic: interval arithmetic, seed derivation,
neighbour generators, sample-size calculators, the event-frequency
estimator on hand-built samples, and report serialization. The heavy
Monte-Carlo audits live in ``test_statistical_audits.py`` (tier 2).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import DPAuditError, ValidationError
from repro.testing import (
    AUDIT_FAMILIES,
    DEFAULT_POLICY,
    NeighborPair,
    StatisticalPolicy,
    bit_flip_pair,
    build_audit,
    clopper_pearson_interval,
    derive_seed,
    estimate_epsilon_lower_bound,
    extreme_record_pair,
    run_audit,
    samples_to_separate,
    samples_to_witness,
    score_gap_pair,
    substitution_pairs,
)
from repro.privacy import is_neighbour


class TestClopperPearson:
    def test_contains_point_estimate(self):
        low, high = clopper_pearson_interval(40, 100, confidence=0.99)
        assert low < 0.4 < high

    def test_degenerate_endpoints(self):
        assert clopper_pearson_interval(0, 50)[0] == 0.0
        assert clopper_pearson_interval(50, 50)[1] == 1.0

    def test_widens_with_confidence(self):
        narrow = clopper_pearson_interval(30, 100, confidence=0.9)
        wide = clopper_pearson_interval(30, 100, confidence=0.9999)
        assert wide[0] < narrow[0] < narrow[1] < wide[1]

    def test_shrinks_with_samples(self):
        small = clopper_pearson_interval(30, 100, confidence=0.99)
        large = clopper_pearson_interval(3000, 10000, confidence=0.99)
        assert large[1] - large[0] < small[1] - small[0]

    def test_hoeffding_fallback_is_conservative(self):
        beta = clopper_pearson_interval(200, 1000, method="beta")
        hoeff = clopper_pearson_interval(200, 1000, method="hoeffding")
        assert hoeff[0] <= beta[0] and beta[1] <= hoeff[1]

    def test_known_exact_value(self):
        # k=0: upper bound solves (1-p)^n = alpha/2 → p = 1-(alpha/2)^(1/n).
        low, high = clopper_pearson_interval(0, 20, confidence=0.95)
        assert low == 0.0
        assert high == pytest.approx(1 - 0.025 ** (1 / 20), rel=1e-6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            clopper_pearson_interval(5, 0)
        with pytest.raises(ValidationError):
            clopper_pearson_interval(7, 5)
        with pytest.raises(ValidationError):
            clopper_pearson_interval(1, 5, confidence=1.0)
        with pytest.raises(ValidationError):
            clopper_pearson_interval(1, 5, method="magic")


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed("laplace", 0) == derive_seed("laplace", 0)

    def test_distinct_across_parts(self):
        seeds = {
            derive_seed("laplace", 0),
            derive_seed("laplace", 1),
            derive_seed("gibbs", 0),
            derive_seed("laplace", 0, base_seed=1),
        }
        assert len(seeds) == 4

    def test_policy_seed_for(self):
        policy = StatisticalPolicy()
        assert policy.seed_for("t", 0) != policy.seed_for("t", 1)
        assert policy.seed_for("t", 0) == StatisticalPolicy().seed_for("t", 0)

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            StatisticalPolicy(confidence=1.5)
        with pytest.raises(ValidationError):
            StatisticalPolicy(max_retries=-1)

    def test_flake_bound(self):
        policy = StatisticalPolicy(confidence=0.99, max_retries=2)
        assert policy.false_failure_probability() == pytest.approx(1e-6)


class TestNeighborGenerators:
    def test_bit_flip_is_neighbour(self):
        pair = bit_flip_pair(5, position=2)
        assert is_neighbour(pair.a, pair.b)
        assert sum(pair.b) - sum(pair.a) == 1

    def test_extreme_record_displaces_sum_by_sensitivity(self):
        pair = extreme_record_pair(4, low=-1.0, high=3.0)
        assert is_neighbour(pair.a, pair.b)
        assert sum(pair.b) - sum(pair.a) == pytest.approx(4.0)

    def test_score_gap_pair_valid(self):
        assert is_neighbour(score_gap_pair(3).a, score_gap_pair(3).b)

    def test_swapped_round_trip(self):
        pair = bit_flip_pair(3)
        assert pair.swapped().swapped().a == pair.a

    def test_invalid_pair_rejected(self):
        with pytest.raises(ValidationError):
            NeighborPair((0, 0), (1, 1)).validate()
        with pytest.raises(ValidationError):
            bit_flip_pair(0)
        with pytest.raises(ValidationError):
            extreme_record_pair(3, low=1.0, high=1.0)

    def test_substitution_pairs_exhaustive(self):
        pairs = list(substitution_pairs([0, 1], 2))
        # 4 datasets × 2 positions × 1 replacement each = 8 ordered pairs.
        assert len(pairs) == 8
        assert all(is_neighbour(p.a, p.b) for p in pairs)


class TestSampleSizeCalculators:
    def test_witness_matches_closed_form(self):
        # P(miss) = (1-p)^n: need n ≥ log(1-c)/log(1-p).
        n = samples_to_witness(0.01, 0.99)
        assert (1 - 0.01) ** n <= 0.01 < (1 - 0.01) ** (n - 1)

    def test_witness_monotone_in_rarity(self):
        assert samples_to_witness(0.001, 0.99) > samples_to_witness(0.1, 0.99)

    def test_separate_returns_feasible_size(self):
        n = samples_to_separate(0.5, 0.05, 1.0, 0.999)
        width = math.sqrt(math.log(1 / 0.001) / (2 * n))
        assert math.log((0.5 - width) / (0.05 + width)) > 1.0

    def test_separate_rejects_impossible_margin(self):
        with pytest.raises(ValidationError):
            samples_to_separate(0.5, 0.4, 1.0, 0.999)


class TestEpsilonEstimator:
    def test_identical_samples_certify_nothing(self):
        outputs = [0, 1] * 500
        estimate = estimate_epsilon_lower_bound(outputs, list(outputs))
        assert estimate["epsilon_lower_bound"] == 0.0

    def test_disjoint_supports_certify_large_epsilon(self):
        estimate = estimate_epsilon_lower_bound([0] * 1000, [1] * 1000)
        assert estimate["epsilon_lower_bound"] > 3.0
        assert estimate["kind"] == "discrete"

    def test_known_frequency_gap(self):
        # p ≈ 0.9 vs q ≈ 0.1 → log ratio ≈ 2.2; the certified bound must
        # sit between 1 and the true value.
        outputs_a = [0] * 900 + [1] * 100
        outputs_b = [0] * 100 + [1] * 900
        estimate = estimate_epsilon_lower_bound(
            outputs_a, outputs_b, confidence=0.99
        )
        assert 1.0 < estimate["epsilon_lower_bound"] < math.log(9.0)

    def test_binned_kind_on_floats(self):
        outputs_a = [i / 1000 for i in range(1000)]
        outputs_b = [0.3 + i / 1000 for i in range(1000)]
        estimate = estimate_epsilon_lower_bound(
            outputs_a, outputs_b, kind="binned", n_bins=8
        )
        assert estimate["kind"] == "binned"
        assert estimate["epsilon_lower_bound"] > 0.0

    def test_auto_resolves_discrete_for_small_support(self):
        estimate = estimate_epsilon_lower_bound([0] * 500, [0] * 499 + [1])
        assert estimate["kind"] == "discrete"

    def test_constant_continuous_pilot_rejected(self):
        with pytest.raises(ValidationError):
            estimate_epsilon_lower_bound(
                [1.0] * 100, [1.0] * 100, kind="binned"
            )

    def test_needs_samples(self):
        with pytest.raises(ValidationError):
            estimate_epsilon_lower_bound([1], [1])


class TestRegistryAndReports:
    def test_every_family_builds(self):
        for family in AUDIT_FAMILIES:
            prepared = build_audit(family)
            assert prepared.epsilon > 0
            assert prepared.kind in ("discrete", "binned")

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError):
            build_audit("frobnicate")
        with pytest.raises(ValidationError):
            build_audit("laplace", epsilon=-1.0)
        with pytest.raises(ValidationError):
            build_audit("laplace", noise_scale=0.0)

    def test_sabotaged_name_is_labelled(self):
        assert "noise×0.5" in build_audit("laplace", noise_scale=0.5).name

    def test_report_serializes_to_json(self):
        report = run_audit(
            build_audit("randomized-response"),
            n_samples=400,
            random_state=7,
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["mechanism"] == "randomized-response"
        assert payload["satisfied"] is True
        assert "certified" in str(report) or "ε" in str(report)

    def test_audit_is_deterministic_under_fixed_seed(self):
        prepared = build_audit("geometric")
        first = run_audit(prepared, n_samples=600, random_state=3)
        second = run_audit(prepared, n_samples=600, random_state=3)
        assert first.epsilon_lower_bound == second.epsilon_lower_bound
        assert first.point_estimate == second.point_estimate

    def test_dp_audit_error_is_assertion_error(self):
        assert issubclass(DPAuditError, AssertionError)
