"""Unit tests for the MI-regularized tradeoff (Theorem 4.2)."""

import numpy as np
import pytest

from repro.core import minimize_tradeoff, tradeoff_curve, tradeoff_objective
from repro.core.tradeoff import gibbs_channel_matrix
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid, empirical_risk_matrix


@pytest.fixture
def setup():
    """A small exactly-solvable instance: Bernoulli datasets of size 2."""
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    datasets = [(0, 0), (0, 1), (1, 0), (1, 1)]
    risk_matrix = empirical_risk_matrix(
        lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
    )
    p = 0.7
    source = np.array(
        [(1 - p) ** 2, (1 - p) * p, p * (1 - p), p**2]
    )
    return source, risk_matrix, datasets, grid


class TestObjective:
    def test_deterministic_erm_channel_value(self, setup):
        source, risks, _, _ = setup
        n_rows, n_cols = risks.shape
        channel = np.zeros((n_rows, n_cols))
        channel[np.arange(n_rows), risks.argmin(axis=1)] = 1.0
        value = tradeoff_objective(channel, source, risks, epsilon=1.0)
        assert np.isfinite(value)
        assert value > 0

    def test_constant_channel_has_zero_information(self, setup):
        source, risks, _, _ = setup
        channel = np.tile(
            np.full(risks.shape[1], 1.0 / risks.shape[1]), (risks.shape[0], 1)
        )
        value = tradeoff_objective(channel, source, risks, epsilon=1.0)
        expected_risk = float((source[:, None] * channel * risks).sum())
        assert value == pytest.approx(expected_risk)

    def test_rejects_shape_mismatch(self, setup):
        source, risks, _, _ = setup
        with pytest.raises(ValidationError):
            tradeoff_objective(risks[:, :-1], source, risks, 1.0)


class TestGibbsChannelMatrix:
    def test_rows_are_tilted_prior(self):
        prior = np.array([0.5, 0.5])
        risks = np.array([[0.0, 1.0]])
        channel = gibbs_channel_matrix(prior, risks, temperature=1.0)
        expected = np.array([1.0, np.exp(-1.0)])
        expected /= expected.sum()
        assert channel[0] == pytest.approx(expected)

    def test_rows_stochastic(self):
        rng = np.random.default_rng(0)
        channel = gibbs_channel_matrix(
            rng.dirichlet(np.ones(4)), rng.uniform(size=(5, 4)), 2.0
        )
        assert channel.sum(axis=1) == pytest.approx(np.ones(5))


class TestMinimizeTradeoff:
    def test_fixed_point_is_gibbs(self, setup):
        source, risks, datasets, grid = setup
        result = minimize_tradeoff(
            source, risks, epsilon=2.0,
            dataset_labels=datasets, theta_labels=grid.thetas,
        )
        assert result.converged
        assert result.gibbs_deviation < 1e-7

    def test_objective_below_all_competitors(self, setup):
        source, risks, _, _ = setup
        epsilon = 1.5
        result = minimize_tradeoff(source, risks, epsilon)
        rng = np.random.default_rng(1)
        for _ in range(100):
            channel = rng.dirichlet(np.ones(risks.shape[1]), size=risks.shape[0])
            assert result.objective <= tradeoff_objective(
                channel, source, risks, epsilon
            ) + 1e-9

    def test_optimal_prior_is_output_marginal(self, setup):
        source, risks, datasets, grid = setup
        result = minimize_tradeoff(
            source, risks, 1.0, dataset_labels=datasets, theta_labels=grid.thetas
        )
        marginal = result.channel.output_distribution(
            list(source)
        )
        assert result.optimal_prior.probabilities == pytest.approx(
            marginal.probabilities
        )

    def test_labels_propagate(self, setup):
        source, risks, datasets, grid = setup
        result = minimize_tradeoff(
            source, risks, 1.0, dataset_labels=datasets, theta_labels=grid.thetas
        )
        assert result.channel.input_alphabet == tuple(datasets)
        assert result.channel.output_alphabet == tuple(grid.thetas)

    def test_rejects_bad_labels(self, setup):
        source, risks, _, _ = setup
        with pytest.raises(ValidationError):
            minimize_tradeoff(source, risks, 1.0, dataset_labels=["only-one"])


class TestTradeoffCurve:
    def test_monotone_shape(self, setup):
        """The paper's qualitative Figure-1 claim: information increases and
        risk decreases as ε grows."""
        source, risks, _, _ = setup
        epsilons = [0.1, 0.5, 2.0, 8.0, 32.0]
        points = tradeoff_curve(source, risks, epsilons)
        infos = [pt.mutual_information for pt in points]
        losses = [pt.expected_empirical_risk for pt in points]
        assert all(a <= b + 1e-9 for a, b in zip(infos, infos[1:]))
        assert all(a >= b - 1e-9 for a, b in zip(losses, losses[1:]))

    def test_small_epsilon_releases_nothing(self, setup):
        source, risks, _, _ = setup
        point = tradeoff_curve(source, risks, [1e-4])[0]
        assert point.mutual_information < 1e-6

    def test_large_epsilon_approaches_erm_risk(self, setup):
        source, risks, _, _ = setup
        point = tradeoff_curve(source, risks, [1e4])[0]
        erm_risk = float(source @ risks.min(axis=1))
        assert point.expected_empirical_risk == pytest.approx(erm_risk, abs=1e-3)

    def test_rejects_empty_sweep(self, setup):
        source, risks, _, _ = setup
        with pytest.raises(ValidationError):
            tradeoff_curve(source, risks, [])
