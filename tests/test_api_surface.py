"""API-surface tests: the public interface stays importable and documented."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.distributions",
    "repro.experiments",
    "repro.information",
    "repro.learning",
    "repro.local_privacy",
    "repro.mechanisms",
    "repro.observability",
    "repro.privacy",
    "repro.private_learning",
    "repro.serving",
    "repro.testing",
    "repro.utils",
]


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_is_sorted_unique(self):
        names = [n for n in repro.__all__]
        assert len(names) == len(set(names))


class TestSubpackageExports:
    @pytest.mark.parametrize("package_name", SUBPACKAGES)
    def test_all_resolves(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert getattr(package, name, None) is not None, (
                f"{package_name}.{name}"
            )


class TestDocstrings:
    def _walk_modules(self):
        for package_name in SUBPACKAGES:
            package = importlib.import_module(package_name)
            yield package
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")

    def test_every_module_has_a_docstring(self):
        for module in self._walk_modules():
            assert module.__doc__ and len(module.__doc__) > 20, module.__name__

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in self._walk_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_methods_documented(self):
        """Every public method of every exported class carries a docstring."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not (
                    method.__doc__ and method.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, undocumented


class TestMechanismContract:
    def test_every_exported_mechanism_subclasses_base(self):
        from repro.mechanisms import Mechanism

        mechanism_names = [
            "ExponentialMechanism",
            "ExponentialQuantile",
            "GaussianMechanism",
            "GeometricMechanism",
            "LaplaceMechanism",
            "NaivePrefixRelease",
            "PrivateHistogram",
            "RandomizedResponse",
            "ReportNoisyMax",
            "SmoothSensitivityMedian",
            "SparseVector",
            "TreeAggregator",
            "VectorLaplaceMechanism",
        ]
        import repro.mechanisms as mechanisms

        for name in mechanism_names:
            cls = getattr(mechanisms, name)
            assert issubclass(cls, Mechanism), name
