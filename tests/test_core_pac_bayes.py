"""Unit tests for the PAC-Bayes bounds (Theorem 3.1 and friends)."""

import numpy as np
import pytest

from repro.core import (
    catoni_bound,
    catoni_bound_in_expectation,
    catoni_objective,
    evaluate_all_bounds,
    mcallester_bound,
    minimize_catoni_bound,
    seeger_bound,
)
from repro.core.pac_bayes import gibbs_minimizer, optimal_objective_value
from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid


class TestBoundValues:
    def test_catoni_reduces_to_simple_form_for_small_rate(self):
        # For λ << n, the bound is ≈ E R̂ + (KL + ln(1/δ))/λ.
        emp, kl, n, lam, delta = 0.2, 0.5, 100_000, 10.0, 0.05
        bound = catoni_bound(emp, kl, n, lam, delta)
        approx = emp + (kl + np.log(1 / delta)) / lam
        assert bound == pytest.approx(approx, rel=1e-3)

    def test_catoni_increases_with_kl(self):
        values = [catoni_bound(0.1, kl, 100, 10.0, 0.05) for kl in [0.0, 1.0, 5.0]]
        assert values[0] < values[1] < values[2]

    def test_catoni_increases_with_empirical_risk(self):
        values = [catoni_bound(r, 0.5, 100, 10.0, 0.05) for r in [0.0, 0.3, 0.9]]
        assert values[0] < values[1] < values[2]

    def test_catoni_decreases_with_confidence_relaxation(self):
        tight = catoni_bound(0.1, 0.5, 100, 10.0, 0.001)
        loose = catoni_bound(0.1, 0.5, 100, 10.0, 0.5)
        assert loose < tight

    def test_mcallester_formula(self):
        emp, kl, n, delta = 0.1, 1.0, 400, 0.05
        expected = emp + np.sqrt((kl + np.log(2 * 20 / delta)) / 800)
        assert mcallester_bound(emp, kl, n, delta) == pytest.approx(expected)

    def test_seeger_tighter_than_mcallester_for_small_risk(self):
        emp, kl, n, delta = 0.01, 0.5, 500, 0.05
        assert seeger_bound(emp, kl, n, delta) <= mcallester_bound(
            emp, kl, n, delta
        )

    def test_seeger_at_zero_kl_still_above_empirical(self):
        assert seeger_bound(0.1, 0.0, 100, 0.05) > 0.1

    def test_bounds_converge_to_empirical_risk(self):
        """All bounds shrink toward E R̂ as n grows (fixed KL)."""
        emp, kl, delta = 0.2, 0.5, 0.05
        for bound_fn in [
            lambda n: mcallester_bound(emp, kl, n, delta),
            lambda n: seeger_bound(emp, kl, n, delta),
            lambda n: catoni_bound(emp, kl, n, np.sqrt(n), delta),
        ]:
            small, large = bound_fn(100), bound_fn(1_000_000)
            assert large < small
            assert large == pytest.approx(emp, abs=0.02)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            catoni_bound(1.5, 0.0, 10, 1.0, 0.05)
        with pytest.raises(ValidationError):
            catoni_bound(0.5, -1.0, 10, 1.0, 0.05)
        with pytest.raises(ValidationError):
            mcallester_bound(0.5, 0.0, 10, 0.0)

    def test_in_expectation_form(self):
        value = catoni_bound_in_expectation(0.2, 0.3, 100, 10.0)
        assert 0.2 < value < 1.0


class TestGibbsOptimality:
    @pytest.fixture
    def setup(self):
        task = BernoulliTask(p=0.75)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 7)
        sample = list(task.sample(40, random_state=0))
        prior = DiscreteDistribution.uniform(grid.thetas)
        risks = grid.empirical_risks(sample)
        return prior, risks

    def test_gibbs_beats_random_posteriors(self, setup):
        prior, risks = setup
        lam = 8.0
        gibbs = gibbs_minimizer(prior, risks, lam)
        gibbs_value = catoni_objective(gibbs, prior, risks, lam)
        rng = np.random.default_rng(1)
        for _ in range(300):
            probs = rng.dirichlet(np.ones(len(prior)))
            competitor = DiscreteDistribution(prior.support, probs)
            assert gibbs_value <= catoni_objective(
                competitor, prior, risks, lam
            ) + 1e-10

    def test_closed_form_value_identity(self, setup):
        prior, risks = setup
        lam = 5.0
        gibbs = gibbs_minimizer(prior, risks, lam)
        assert catoni_objective(gibbs, prior, risks, lam) == pytest.approx(
            optimal_objective_value(prior, risks, lam)
        )

    def test_numerical_optimizer_recovers_gibbs(self, setup):
        prior, risks = setup
        lam = 3.0
        gibbs = gibbs_minimizer(prior, risks, lam)
        numerical, value = minimize_catoni_bound(
            prior, risks, lam, numerical=True
        )
        assert value == pytest.approx(
            optimal_objective_value(prior, risks, lam), abs=1e-4
        )
        assert numerical.total_variation_distance(gibbs) < 0.02

    def test_objective_rejects_mismatched_risks(self, setup):
        prior, risks = setup
        with pytest.raises(ValidationError):
            catoni_objective(prior, prior, risks[:-1], 1.0)


class TestBoundValidity:
    """Monte-Carlo check of Theorem 3.1: the bound holds w.p. >= 1 - δ."""

    @pytest.mark.parametrize("n", [30, 120])
    def test_catoni_coverage(self, n):
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 9)
        prior = DiscreteDistribution.uniform(grid.thetas)
        delta = 0.1
        lam = float(np.sqrt(n))
        true_risks = np.array([task.true_risk(t) for t in grid.thetas])

        violations = 0
        trials = 300
        rng = np.random.default_rng(42)
        for _ in range(trials):
            sample = list(task.sample(n, random_state=rng))
            risks = grid.empirical_risks(sample)
            posterior = gibbs_minimizer(prior, risks, lam)
            emp = float(risks @ posterior.probabilities)
            from repro.information import kl_divergence

            kl = kl_divergence(posterior, prior)
            bound = catoni_bound(emp, kl, n, lam, delta)
            true = float(true_risks @ posterior.probabilities)
            if true > bound:
                violations += 1
        assert violations / trials <= delta

    def test_all_bounds_hold_on_one_draw(self):
        task = BernoulliTask(p=0.8)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 11)
        prior = DiscreteDistribution.uniform(grid.thetas)
        sample = list(task.sample(200, random_state=7))
        risks = grid.empirical_risks(sample)
        posterior = gibbs_minimizer(prior, risks, 14.0)
        report = evaluate_all_bounds(posterior, prior, risks, 200, delta=0.05)
        true_risk = sum(
            p * task.true_risk(t) for t, p in posterior
        )
        assert report.catoni >= true_risk
        assert report.mcallester >= true_risk
        assert report.seeger >= true_risk
        name, value = report.tightest()
        assert name in {"catoni", "mcallester", "seeger"}
        assert value == min(report.catoni, report.mcallester, report.seeger)
