"""Property-based tests for ``repro.distributions`` sampling laws.

Hypothesis drives the *parameters* (scales, probabilities, dimensions)
while every Monte-Carlo draw uses a seed derived from those parameters, so
the suite is deterministic (``derandomize=True``) yet covers a family of
laws instead of one hard-coded instance. Each law is checked against its
analytic signature: mean/variance where they exist, quantiles where they
do not (Cauchy), CDF round trips, and normalization of the log-density.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributions import (
    CauchyNoise,
    DiscreteDistribution,
    GammaNormVector,
    GaussianNoise,
    GumbelNoise,
    LaplaceNoise,
)
from repro.testing import derive_seed
from repro.utils.validation import check_random_state

EULER_GAMMA = 0.5772156649015329

SCALES = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)

# Deterministic profile: hypothesis enumerates the same examples on every
# run, and every RNG is seeded from the drawn parameters.
DETERMINISTIC = settings(
    derandomize=True,
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _rng(*parts) -> np.random.Generator:
    return check_random_state(derive_seed("dist-props", *parts))


def _normalization(noise, grid_half_width: float, n: int = 20_001) -> float:
    grid = np.linspace(-grid_half_width, grid_half_width, n)
    density = np.exp(noise.log_density(grid))
    return float(np.trapezoid(density, grid))


class TestLaplaceLaw:
    @DETERMINISTIC
    @given(scale=SCALES)
    def test_moments_match(self, scale):
        sample = LaplaceNoise(scale).sample(
            size=40_000, random_state=_rng("lap", scale)
        )
        assert abs(np.mean(sample)) < 5 * scale / np.sqrt(40_000) * 3
        assert np.var(sample) == pytest.approx(2 * scale**2, rel=0.1)

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_cdf_matches_empirical(self, scale):
        noise = LaplaceNoise(scale)
        sample = noise.sample(size=20_000, random_state=_rng("lapcdf", scale))
        for t in (-scale, 0.0, scale / 2, 2 * scale):
            assert float(noise.cdf(t)) == pytest.approx(
                np.mean(sample <= t), abs=0.02
            )

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_density_normalizes(self, scale):
        assert _normalization(LaplaceNoise(scale), 40 * scale) == pytest.approx(
            1.0, abs=1e-3
        )

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_cdf_median_and_symmetry(self, scale):
        noise = LaplaceNoise(scale)
        assert float(noise.cdf(0.0)) == pytest.approx(0.5)
        assert float(noise.cdf(scale)) + float(noise.cdf(-scale)) == pytest.approx(1.0)


class TestGaussianLaw:
    @DETERMINISTIC
    @given(sigma=SCALES)
    def test_variance_matches(self, sigma):
        noise = GaussianNoise(sigma)
        sample = noise.sample(size=40_000, random_state=_rng("gauss", sigma))
        assert np.var(sample) == pytest.approx(noise.variance(), rel=0.1)
        assert noise.variance() == pytest.approx(sigma**2)

    @DETERMINISTIC
    @given(sigma=SCALES)
    def test_density_normalizes(self, sigma):
        assert _normalization(GaussianNoise(sigma), 12 * sigma) == pytest.approx(
            1.0, abs=1e-3
        )


class TestGumbelLaw:
    """The Gumbel law added in PR 1 — previously thin coverage."""

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_mean_is_scale_times_euler_gamma(self, scale):
        sample = GumbelNoise(scale).sample(
            size=40_000, random_state=_rng("gum", scale)
        )
        tolerance = 5 * scale * (np.pi / np.sqrt(6)) / np.sqrt(40_000)
        assert abs(np.mean(sample) - EULER_GAMMA * scale) < tolerance

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_variance_matches_analytic(self, scale):
        noise = GumbelNoise(scale)
        sample = noise.sample(size=40_000, random_state=_rng("gumvar", scale))
        assert noise.variance() == pytest.approx((np.pi**2 / 6) * scale**2)
        assert np.var(sample) == pytest.approx(noise.variance(), rel=0.12)

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_median_matches_closed_form(self, scale):
        # Gumbel CDF exp(-exp(-x/β)) → median = -β·log(log 2).
        sample = GumbelNoise(scale).sample(
            size=40_000, random_state=_rng("gummed", scale)
        )
        median = -scale * np.log(np.log(2.0))
        assert np.median(sample) == pytest.approx(median, abs=0.06 * scale + 0.02)

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_density_normalizes(self, scale):
        grid = np.linspace(-12 * scale, 60 * scale, 40_001)
        density = np.exp(GumbelNoise(scale).log_density(grid))
        assert float(np.trapezoid(density, grid)) == pytest.approx(1.0, abs=1e-3)

    def test_gumbel_max_trick_reproduces_softmax(self):
        """argmax(score + Gumbel(1)) follows softmax(score) — the identity
        that ties report-noisy-max to the exponential mechanism."""
        rng = _rng("gumbel-max")
        scores = np.array([0.0, 1.0, 2.5])
        noise = GumbelNoise(1.0)
        draws = scores + noise.sample(size=(30_000, 3), random_state=rng)
        counts = np.bincount(np.argmax(draws, axis=1), minlength=3) / 30_000
        expected = np.exp(scores) / np.exp(scores).sum()
        assert np.allclose(counts, expected, atol=0.015)


class TestCauchyLaw:
    """The Cauchy law added in PR 1 — no finite moments, so check
    quantiles and densities instead."""

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_variance_declared_infinite(self, scale):
        assert CauchyNoise(scale).variance() == float("inf")

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_median_and_quartiles(self, scale):
        # CDF = 1/2 + arctan(x/γ)/π → quartiles at ±γ exactly.
        sample = CauchyNoise(scale).sample(
            size=40_000, random_state=_rng("cauchy", scale)
        )
        assert np.median(sample) == pytest.approx(0.0, abs=0.05 * scale + 0.02)
        assert np.quantile(sample, 0.75) == pytest.approx(scale, rel=0.1)
        assert np.quantile(sample, 0.25) == pytest.approx(-scale, rel=0.1)

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_density_normalizes_on_wide_grid(self, scale):
        # Polynomial tails: integrate the density plus the analytic tail
        # mass beyond the grid, 2·(1/2 - arctan(T/γ)/π).
        half_width = 2_000 * scale
        body = _normalization(CauchyNoise(scale), half_width, n=400_001)
        tail = 1.0 - (2.0 / np.pi) * np.arctan(half_width / scale)
        assert body + tail == pytest.approx(1.0, abs=2e-3)

    @DETERMINISTIC
    @given(scale=SCALES)
    def test_log_density_symmetric(self, scale):
        noise = CauchyNoise(scale)
        xs = np.array([0.1, 1.0, 7.3]) * scale
        assert np.allclose(noise.log_density(xs), noise.log_density(-xs))


class TestGammaNormVector:
    @DETERMINISTIC
    @given(
        dimension=st.integers(min_value=1, max_value=6),
        scale=st.floats(min_value=0.1, max_value=5.0),
    )
    def test_norm_is_gamma_distributed(self, dimension, scale):
        noise = GammaNormVector(dimension, scale)
        draws = np.array(
            [
                np.linalg.norm(
                    noise.sample(random_state=_rng("gnv", dimension, scale, i))
                )
                for i in range(4_000)
            ]
        )
        # ‖X‖ ~ Gamma(d, scale): mean d·s, variance d·s².
        assert np.mean(draws) == pytest.approx(dimension * scale, rel=0.1)
        assert np.var(draws) == pytest.approx(dimension * scale**2, rel=0.25)


class TestDiscreteSamplingLaw:
    @DETERMINISTIC
    @given(
        weights=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=6
        )
    )
    def test_empirical_frequencies_match_probabilities(self, weights):
        probabilities = np.asarray(weights) / np.sum(weights)
        distribution = DiscreteDistribution(
            tuple(range(len(weights))), probabilities
        )
        rng = _rng("disc", tuple(np.round(probabilities, 6).tolist()))
        sample = distribution.sample(size=20_000, random_state=rng)
        counts = np.bincount(np.asarray(sample), minlength=len(weights))
        empirical = counts / 20_000
        total_variation = 0.5 * np.abs(empirical - probabilities).sum()
        assert total_variation < 0.02
