"""Unit tests for DiscreteChannel."""

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution
from repro.exceptions import SupportMismatchError, ValidationError
from repro.information import DiscreteChannel


@pytest.fixture
def bsc() -> DiscreteChannel:
    """Binary symmetric channel with flip probability 0.1."""
    return DiscreteChannel([0, 1], [0, 1], [[0.9, 0.1], [0.1, 0.9]])


class TestConstruction:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValidationError):
            DiscreteChannel([0, 1], [0, 1], [[0.5, 0.5]])

    def test_rejects_nonstochastic_rows(self):
        with pytest.raises(ValidationError):
            DiscreteChannel([0], [0, 1], [[0.5, 0.6]])

    def test_rejects_duplicate_inputs(self):
        with pytest.raises(ValidationError):
            DiscreteChannel([0, 0], [0, 1], [[0.5, 0.5], [0.5, 0.5]])

    def test_from_conditionals(self):
        conditionals = {
            "a": DiscreteDistribution(["x", "y"], [0.7, 0.3]),
            "b": DiscreteDistribution(["x", "y"], [0.2, 0.8]),
        }
        channel = DiscreteChannel.from_conditionals(conditionals)
        assert channel.conditional("a").probability_of("x") == pytest.approx(0.7)

    def test_from_conditionals_rejects_mismatched_supports(self):
        conditionals = {
            "a": DiscreteDistribution(["x"], [1.0]),
            "b": DiscreteDistribution(["y"], [1.0]),
        }
        with pytest.raises(SupportMismatchError):
            DiscreteChannel.from_conditionals(conditionals)


class TestQuantities:
    def test_joint_sums_to_one(self, bsc):
        joint = bsc.joint([0.5, 0.5])
        assert joint.sum() == pytest.approx(1.0)

    def test_output_distribution(self, bsc):
        out = bsc.output_distribution([1.0, 0.0])
        assert out.probability_of(0) == pytest.approx(0.9)

    def test_mutual_information_bsc_closed_form(self, bsc):
        f = 0.1
        expected = np.log(2) + f * np.log(f) + (1 - f) * np.log(1 - f)
        assert bsc.mutual_information([0.5, 0.5]) == pytest.approx(expected)

    def test_mutual_information_zero_for_useless_channel(self):
        channel = DiscreteChannel([0, 1], [0, 1], [[0.5, 0.5], [0.5, 0.5]])
        assert channel.mutual_information([0.3, 0.7]) == pytest.approx(0.0)

    def test_posterior_bayes_rule(self, bsc):
        # P(X=0 | Y=0) with uniform input = 0.9 by symmetry.
        post = bsc.posterior([0.5, 0.5], 0)
        assert post.probability_of(0) == pytest.approx(0.9)

    def test_posterior_rejects_zero_probability_output(self):
        channel = DiscreteChannel([0], [0, 1], [[1.0, 0.0]])
        with pytest.raises(ValidationError):
            channel.posterior([1.0], 1)

    def test_input_distribution_support_check(self, bsc):
        wrong = DiscreteDistribution(["a", "b"], [0.5, 0.5])
        with pytest.raises(SupportMismatchError):
            bsc.joint(wrong)

    def test_accepts_discrete_distribution_input(self, bsc):
        dist = DiscreteDistribution((0, 1), [0.5, 0.5])
        assert bsc.mutual_information(dist) > 0


class TestComposition:
    def test_cascade_matrix_is_product(self, bsc):
        cascade = bsc.compose(bsc)
        expected = bsc.matrix @ bsc.matrix
        assert cascade.matrix == pytest.approx(expected)

    def test_data_processing_inequality(self, bsc):
        # Post-processing through a second channel cannot increase MI.
        cascade = bsc.compose(bsc)
        source = [0.3, 0.7]
        assert cascade.mutual_information(source) <= bsc.mutual_information(
            source
        ) + 1e-12

    def test_compose_requires_matching_alphabets(self, bsc):
        other = DiscreteChannel(["x"], ["y"], [[1.0]])
        with pytest.raises(SupportMismatchError):
            bsc.compose(other)


class TestMaxLogRatio:
    def test_bsc_value(self, bsc):
        assert bsc.max_log_ratio() == pytest.approx(np.log(9.0))

    def test_identical_rows_give_zero(self):
        channel = DiscreteChannel([0, 1], [0, 1], [[0.5, 0.5], [0.5, 0.5]])
        assert channel.max_log_ratio() == pytest.approx(0.0)

    def test_partial_support_is_infinite(self):
        channel = DiscreteChannel([0, 1], [0, 1], [[1.0, 0.0], [0.5, 0.5]])
        assert channel.max_log_ratio() == np.inf
