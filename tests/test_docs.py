"""Documentation consistency tests.

README/DESIGN/EXPERIMENTS are deliverables; these tests keep them honest:
the quickstart snippet must actually run, the experiment tables must
mention every registered experiment, and the docs must exist.
"""

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def read(name: str) -> str:
    path = REPO_ROOT / name
    assert path.is_file(), f"missing doc: {name}"
    return path.read_text(encoding="utf-8")


class TestDocsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/THEORY.md"],
    )
    def test_present_and_nonempty(self, name):
        assert len(read(name)) > 500


class TestReadmeQuickstartRuns:
    def test_python_blocks_execute(self):
        """Every python code block in the README must execute cleanly."""
        text = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README must contain at least one python block"
        for block in blocks:
            exec(compile(block, "<README>", "exec"), {})


class TestExperimentTablesComplete:
    def test_readme_lists_every_experiment(self):
        from repro.experiments.registry import EXPERIMENTS

        text = read("README.md")
        for experiment in EXPERIMENTS:
            assert f"| {experiment.id} |" in text, experiment.id

    def test_experiments_md_covers_every_experiment(self):
        from repro.experiments.registry import EXPERIMENTS

        text = read("EXPERIMENTS.md")
        for experiment in EXPERIMENTS:
            assert experiment.id in text, experiment.id

    def test_design_md_lists_every_bench(self):
        from repro.experiments.registry import EXPERIMENTS

        text = read("DESIGN.md")
        for experiment in EXPERIMENTS:
            assert experiment.bench in text, experiment.bench


class TestExamplesDocumented:
    def test_readme_mentions_every_example(self):
        text = read("README.md")
        for path in (REPO_ROOT / "examples").glob("*.py"):
            assert path.name in text, f"README must document {path.name}"


class TestPaperCheckRecorded:
    def test_design_records_paper_match(self):
        text = read("DESIGN.md")
        assert "Paper-text check" in text
