"""Unit tests for the Laplace mechanism (Theorem 2.3)."""

import numpy as np
import pytest

from repro.mechanisms import LaplaceMechanism


def count_ones(dataset):
    return float(sum(dataset))


@pytest.fixture
def mechanism() -> LaplaceMechanism:
    return LaplaceMechanism(count_ones, sensitivity=1.0, epsilon=0.5)


class TestRelease:
    def test_unbiased(self, mechanism):
        dataset = [1, 0, 1, 1]
        rng = np.random.default_rng(0)
        outputs = [mechanism.release(dataset, random_state=rng) for _ in range(20_000)]
        assert np.mean(outputs) == pytest.approx(3.0, abs=0.05)

    def test_noise_scale(self, mechanism):
        assert mechanism.noise.scale == pytest.approx(1.0 / 0.5)

    def test_vector_query(self):
        mech = LaplaceMechanism(
            lambda d: np.array([sum(d), len(d)]), sensitivity=2.0, epsilon=1.0
        )
        out = mech.release([1, 0, 1], random_state=0)
        assert out.shape == (2,)

    def test_reproducible(self, mechanism):
        a = mechanism.release([1, 0], random_state=42)
        b = mechanism.release([1, 0], random_state=42)
        assert a == b


class TestPrivacy:
    def test_analytic_dp_at_every_output(self, mechanism):
        """The log-density gap between neighbours is at most ε everywhere."""
        d1 = [1, 0, 1]
        d2 = [1, 1, 1]  # neighbour: one record substituted
        for value in np.linspace(-10, 10, 101):
            gap = abs(
                mechanism.output_log_density(d1, value)
                - mechanism.output_log_density(d2, value)
            )
            assert gap <= mechanism.epsilon + 1e-12

    def test_dp_bound_is_tight(self, mechanism):
        """Far in the tail the ratio attains exactly ε."""
        d1 = [1, 0, 1]
        d2 = [1, 1, 1]
        gap = abs(
            mechanism.output_log_density(d1, 100.0)
            - mechanism.output_log_density(d2, 100.0)
        )
        assert gap == pytest.approx(mechanism.epsilon)


class TestUtility:
    def test_expected_absolute_error(self, mechanism):
        rng = np.random.default_rng(1)
        errors = [
            abs(mechanism.release([0], random_state=rng)) for _ in range(50_000)
        ]
        assert np.mean(errors) == pytest.approx(
            mechanism.expected_absolute_error(), rel=0.03
        )

    def test_error_quantile(self, mechanism):
        bound = mechanism.error_quantile(0.95)
        rng = np.random.default_rng(2)
        errors = np.abs(
            [mechanism.release([0], random_state=rng) for _ in range(50_000)]
        )
        assert np.mean(errors <= bound) == pytest.approx(0.95, abs=0.01)

    def test_error_quantile_rejects_bad_probability(self, mechanism):
        with pytest.raises(ValueError):
            mechanism.error_quantile(1.0)

    def test_error_scales_inversely_with_epsilon(self):
        loose = LaplaceMechanism(count_ones, sensitivity=1.0, epsilon=0.1)
        tight = LaplaceMechanism(count_ones, sensitivity=1.0, epsilon=10.0)
        assert loose.expected_absolute_error() == pytest.approx(
            100 * tight.expected_absolute_error()
        )
