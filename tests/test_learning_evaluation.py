"""Unit tests for the evaluation utilities."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import LogisticRegressionModel, TwoGaussiansTask
from repro.learning.evaluation import (
    ConfusionMatrix,
    auc,
    cross_validate,
    k_fold_indices,
    roc_points,
    train_test_split,
)


class TestTrainTestSplit:
    def test_shapes(self):
        x = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        x_tr, y_tr, x_te, y_te = train_test_split(
            x, y, test_fraction=0.25, random_state=0
        )
        assert x_te.shape == (5, 2)
        assert x_tr.shape == (15, 2)
        assert y_tr.shape == (15,)
        assert y_te.shape == (5,)

    def test_partition_is_exact(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, random_state=1)
        together = sorted(np.concatenate([y_tr, y_te]).tolist())
        assert together == list(range(10))

    def test_deterministic_with_seed(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        a = train_test_split(x, y, random_state=7)
        b = train_test_split(x, y, random_state=7)
        assert np.array_equal(a[3], b[3])

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.0)


class TestKFold:
    def test_folds_partition(self):
        seen = []
        for train, test in k_fold_indices(10, 5, random_state=0):
            assert len(train) + len(test) == 10
            assert not set(train) & set(test)
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(10))

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            list(k_fold_indices(5, 1))
        with pytest.raises(ValidationError):
            list(k_fold_indices(5, 6))


class TestCrossValidate:
    def test_logistic_on_separable_data(self):
        task = TwoGaussiansTask([2.0, 0.0])
        x, y = task.sample(300, random_state=0)
        result = cross_validate(
            lambda: LogisticRegressionModel(0.1), x, y, k=5, random_state=1
        )
        assert len(result.scores) == 5
        assert result.mean > 0.9
        assert "folds" in str(result)

    def test_custom_scorer(self):
        task = TwoGaussiansTask([2.0, 0.0])
        x, y = task.sample(200, random_state=2)
        result = cross_validate(
            lambda: LogisticRegressionModel(0.1),
            x,
            y,
            k=4,
            score=lambda est, xt, yt: 1.0 - est.accuracy(xt, yt),
            random_state=3,
        )
        assert result.mean < 0.1


class TestConfusionMatrix:
    def test_counts(self):
        y_true = np.array([1, 1, -1, -1, 1])
        y_pred = np.array([1, -1, -1, 1, 1])
        cm = ConfusionMatrix.from_predictions(y_true, y_pred)
        assert cm.true_positive == 2
        assert cm.false_negative == 1
        assert cm.false_positive == 1
        assert cm.true_negative == 1
        assert cm.total == 5

    def test_metrics(self):
        y_true = np.array([1, 1, -1, -1])
        y_pred = np.array([1, -1, -1, -1])
        cm = ConfusionMatrix.from_predictions(y_true, y_pred)
        assert cm.accuracy == pytest.approx(0.75)
        assert cm.precision == pytest.approx(1.0)
        assert cm.recall == pytest.approx(0.5)
        assert cm.f1 == pytest.approx(2 / 3)

    def test_degenerate_metrics_are_zero(self):
        cm = ConfusionMatrix.from_predictions([-1, -1], [-1, -1])
        assert cm.precision == 0.0
        assert cm.recall == 0.0
        assert cm.f1 == 0.0

    def test_rejects_bad_labels(self):
        with pytest.raises(ValidationError):
            ConfusionMatrix.from_predictions([0, 1], [1, 1])


class TestRocAuc:
    def test_perfect_classifier(self):
        y = np.array([-1, -1, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc(y, scores) == pytest.approx(1.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = np.where(rng.uniform(size=5000) < 0.5, 1, -1)
        scores = rng.uniform(size=5000)
        assert auc(y, scores) == pytest.approx(0.5, abs=0.03)

    def test_inverted_classifier(self):
        y = np.array([-1, -1, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc(y, scores) == pytest.approx(0.0)

    def test_roc_endpoints(self):
        y = np.array([-1, 1])
        fpr, tpr = roc_points(y, np.array([0.3, 0.7]))
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_rejects_single_class(self):
        with pytest.raises(ValidationError):
            roc_points([1, 1], [0.4, 0.6])

    def test_logistic_auc_beats_chance(self):
        task = TwoGaussiansTask([1.5, 0.0])
        x, y = task.sample(400, random_state=4)
        model = LogisticRegressionModel(0.1).fit(x, y)
        assert auc(y, model.decision_function(x)) > 0.9
