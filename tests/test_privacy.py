"""Unit tests for privacy definitions and auditors."""

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution
from repro.mechanisms import ExponentialMechanism, RandomizedResponse
from repro.privacy import (
    ExactPrivacyAuditor,
    SampledPrivacyAuditor,
    all_neighbour_pairs,
    is_neighbour,
    satisfies_approximate_dp,
    satisfies_pure_dp,
)


class TestNeighbourRelation:
    def test_single_substitution(self):
        assert is_neighbour([1, 2, 3], [1, 9, 3])

    def test_identical_not_neighbours(self):
        assert not is_neighbour([1, 2], [1, 2])

    def test_two_substitutions_not_neighbours(self):
        assert not is_neighbour([1, 2], [3, 4])

    def test_different_lengths_not_neighbours(self):
        assert not is_neighbour([1], [1, 2])

    def test_all_pairs_count(self):
        # |universe|^n datasets, each with n*(|universe|-1) neighbours.
        pairs = list(all_neighbour_pairs([0, 1, 2], n=2))
        assert len(pairs) == 9 * 2 * 2

    def test_all_pairs_are_neighbours(self):
        for a, b in all_neighbour_pairs([0, 1], n=3):
            assert is_neighbour(a, b)


class TestDPPredicates:
    def test_pure_dp_satisfied(self):
        p = DiscreteDistribution([0, 1], [0.6, 0.4])
        q = DiscreteDistribution([0, 1], [0.4, 0.6])
        eps = np.log(1.5)
        assert satisfies_pure_dp(p, q, eps)

    def test_pure_dp_violated(self):
        p = DiscreteDistribution([0, 1], [0.9, 0.1])
        q = DiscreteDistribution([0, 1], [0.1, 0.9])
        assert not satisfies_pure_dp(p, q, 0.5)

    def test_approx_dp_with_delta_slack(self):
        p = DiscreteDistribution([0, 1], [0.9, 0.1])
        q = DiscreteDistribution([0, 1], [0.1, 0.9])
        # Fails pure DP at eps=0.5 but passes with a large enough delta.
        assert satisfies_approximate_dp(p, q, 0.5, delta=0.8)
        assert not satisfies_approximate_dp(p, q, 0.5, delta=0.01)


class TestExactAuditor:
    def test_randomized_response_is_sharp(self):
        """RR per-bit output law attains exactly ε — the auditor must
        measure the nominal guarantee with equality."""
        epsilon = 1.2
        rr = RandomizedResponse(epsilon=epsilon)

        def output_law(dataset):
            bit = dataset[0]
            p = rr.truth_probability
            return DiscreteDistribution(
                [0, 1], [p, 1 - p] if bit == 0 else [1 - p, p]
            )

        auditor = ExactPrivacyAuditor(output_law)
        report = auditor.audit([0, 1], n=1, claimed_epsilon=epsilon)
        assert report.exact
        assert report.satisfied
        assert report.measured_epsilon == pytest.approx(epsilon)

    def test_detects_violation(self):
        """A deliberately broken mechanism must be flagged."""

        def leaky_law(dataset):
            # Probability gap way beyond the claimed epsilon.
            if sum(dataset) > 0:
                return DiscreteDistribution([0, 1], [0.99, 0.01])
            return DiscreteDistribution([0, 1], [0.01, 0.99])

        auditor = ExactPrivacyAuditor(leaky_law)
        report = auditor.audit([0, 1], n=1, claimed_epsilon=0.5)
        assert not report.satisfied
        assert report.measured_epsilon > 0.5
        assert report.worst_pair is not None

    def test_exponential_mechanism_passes(self):
        mech = ExponentialMechanism(
            lambda d, u: -abs(sum(d) - u),
            outputs=range(3),
            sensitivity=1.0,
            epsilon=0.8,
        )
        auditor = ExactPrivacyAuditor(mech.output_distribution)
        report = auditor.audit([0, 1], n=2, claimed_epsilon=mech.epsilon)
        assert report.satisfied

    def test_reports_pair_count(self):
        mech = ExponentialMechanism(
            lambda d, u: 0.0, outputs=[0], sensitivity=1.0, epsilon=1.0
        )
        auditor = ExactPrivacyAuditor(mech.output_distribution)
        report = auditor.audit([0, 1], n=2)
        assert report.pairs_checked == 4 * 2 * 1

    def test_str_rendering(self):
        mech = ExponentialMechanism(
            lambda d, u: 0.0, outputs=[0, 1], sensitivity=1.0, epsilon=1.0
        )
        auditor = ExactPrivacyAuditor(mech.output_distribution)
        report = auditor.audit([0, 1], n=1, claimed_epsilon=1.0)
        assert "exact" in str(report)
        assert "OK" in str(report)


class TestSampledAuditor:
    def test_estimates_rr_epsilon(self):
        epsilon = 1.0
        rr = RandomizedResponse(epsilon=epsilon)

        def release(dataset, random_state=None):
            return rr.randomize_bit(dataset[0], random_state=random_state)

        auditor = SampledPrivacyAuditor(release, n_samples=100_000)
        report = auditor.audit_pair([0], [1], random_state=0)
        assert not report.exact
        assert report.measured_epsilon == pytest.approx(epsilon, abs=0.05)

    def test_flags_gross_violation(self):
        def release(dataset, random_state=None):
            # Nearly deterministic leak of the record.
            rng = np.random.default_rng(
                random_state.integers(2**31)
                if isinstance(random_state, np.random.Generator)
                else random_state
            )
            return dataset[0] if rng.uniform() < 0.999 else 1 - dataset[0]

        auditor = SampledPrivacyAuditor(release, n_samples=50_000)
        report = auditor.audit_pair([0], [1], claimed_epsilon=1.0, random_state=1)
        assert not report.satisfied

    def test_rejects_bad_parameters(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            SampledPrivacyAuditor(lambda d, random_state=None: 0, n_samples=0)
        with pytest.raises(ValidationError):
            SampledPrivacyAuditor(
                lambda d, random_state=None: 0, smoothing=0.0
            )
