"""Batch-release contract: ``release_many`` ≡ sequential ``release``.

The vectorized kernels promise *stream equivalence*: for every mechanism
family, ``release_many(d, n, rng)`` consumes the shared generator exactly
like ``n`` sequential ``release(d, rng)`` calls, so outputs are
bit-identical — including ``release_many(d, 1)[0] == release(d)`` — and
tracing on/off never changes a batch. Observability aggregates a batch
into one ledger event with ``count == n``, composing to the same ε totals
as ``n`` single-release events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    PrivateHistogram,
    RandomizedResponse,
    ReportNoisyMax,
    SmoothSensitivityMedian,
    TreeAggregator,
    VectorLaplaceMechanism,
)
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.quantile import ExponentialQuantile
from repro.observability import ledger_totals, tracing
from repro.privacy.local import KRandomizedResponse, UnaryEncoding
from repro.testing import AUDIT_FAMILIES, build_audit


def _audit_case(family):
    prepared = build_audit(family, epsilon=1.0, n=3)
    return prepared.mechanism, prepared.pair.a


# Families beyond the audit registry, to cover every mechanism family —
# vectorized kernels and base-class fallbacks alike.
_EXTRA_FAMILIES = {
    "gaussian": lambda: (
        GaussianMechanism(lambda d: float(np.sum(d)), 1.0, 1.0, 1e-6),
        [0.2, 0.5, 0.9],
    ),
    "laplace-vector-query": lambda: (
        LaplaceMechanism(
            lambda d: np.asarray(d, dtype=float).sum(axis=0), 2.0, 1.0
        ),
        [[0.1, 0.2], [0.3, 0.4]],
    ),
    "histogram-laplace": lambda: (
        PrivateHistogram(["a", "b", "c"], 1.0),
        ["a", "a", "b", "c", "c", "c"],
    ),
    "histogram-geometric": lambda: (
        PrivateHistogram(["a", "b", "c"], 1.0, noise="geometric"),
        ["a", "a", "b", "c", "c", "c"],
    ),
    "noisy-max-laplace": lambda: (
        ReportNoisyMax(
            lambda d, u: -abs(sum(d) - u), (0, 1, 2), 1.0, 1.0, noise="laplace"
        ),
        [1, 0, 1],
    ),
    "quantile": lambda: (
        ExponentialQuantile(0.0, 1.0, 0.5, 1.0),
        [0.1, 0.4, 0.6, 0.9],
    ),
    "vector-laplace": lambda: (
        VectorLaplaceMechanism(
            lambda d: np.asarray(d, dtype=float).sum(axis=0), 2, 1.0, 1.0
        ),
        [[0.1, 0.2], [0.3, 0.4]],
    ),
    "tree-aggregator": lambda: (TreeAggregator(8, 1.0), [1.0] * 8),
    "smooth-median": lambda: (
        SmoothSensitivityMedian(0.0, 1.0, 1.0),
        [0.2, 0.4, 0.6, 0.8],
    ),
    "k-randomized-response": lambda: (
        KRandomizedResponse(["x", "y", "z"], 1.0),
        ["y", "x"],
    ),
    "unary-encoding": lambda: (UnaryEncoding(["x", "y", "z"], 1.0), ["z", "z"]),
}

FAMILIES = tuple(AUDIT_FAMILIES) + tuple(sorted(_EXTRA_FAMILIES))

# Independent spawned seed streams, one per family.
_SEEDS = dict(
    zip(FAMILIES, np.random.SeedSequence(20260806).spawn(len(FAMILIES)))
)


def _build(family):
    if family in _EXTRA_FAMILIES:
        return _EXTRA_FAMILIES[family]()
    return _audit_case(family)


def _as_list(outputs):
    if isinstance(outputs, np.ndarray):
        return outputs.tolist()
    return [o.tolist() if isinstance(o, np.ndarray) else o for o in outputs]


class TestBatchSerialEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_batch_equals_sequential_releases(self, family):
        mechanism, dataset = _build(family)
        n = 6
        batch = mechanism.release_many(
            dataset, n, random_state=np.random.default_rng(_SEEDS[family])
        )
        rng = np.random.default_rng(_SEEDS[family])
        serial = [mechanism.release(dataset, random_state=rng) for _ in range(n)]
        assert _as_list(batch) == _as_list(serial)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_single_draw_matches_release(self, family):
        mechanism, dataset = _build(family)
        one = mechanism.release_many(
            dataset, 1, random_state=np.random.default_rng(_SEEDS[family])
        )[0]
        single = mechanism.release(
            dataset, random_state=np.random.default_rng(_SEEDS[family])
        )
        assert _as_list([one]) == _as_list([single])

    def test_integer_seed_accepted(self):
        mechanism = LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, 1.0)
        batch = mechanism.release_many([1.0, 2.0], 4, random_state=7)
        again = mechanism.release_many([1.0, 2.0], 4, random_state=7)
        assert np.array_equal(batch, again)


class TestBatchTracing:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_tracing_leaves_batch_bit_identical(self, family):
        mechanism, dataset = _build(family)
        n = 5
        baseline = mechanism.release_many(
            dataset, n, random_state=np.random.default_rng(_SEEDS[family])
        )
        with tracing() as tracer:
            traced = mechanism.release_many(
                dataset, n, random_state=np.random.default_rng(_SEEDS[family])
            )
        assert _as_list(traced) == _as_list(baseline)
        # One aggregated event carrying the whole batch.
        (event,) = tracer.events
        assert event.kind == "release"
        assert event.count == n
        assert event.mechanism == type(mechanism).__name__
        assert tracer.metrics.counter("mechanism.releases") == n
        assert [s.name for s in tracer.spans] == [
            f"release_many:{type(mechanism).__name__}"
        ]

    @pytest.mark.parametrize("family", FAMILIES)
    def test_ledger_epsilon_totals_match_serial(self, family):
        mechanism, dataset = _build(family)
        n = 4
        with tracing() as batch_tracer:
            mechanism.release_many(
                dataset, n, random_state=np.random.default_rng(_SEEDS[family])
            )
        rng = np.random.default_rng(_SEEDS[family])
        with tracing() as serial_tracer:
            for _ in range(n):
                mechanism.release(dataset, random_state=rng)
        batch_totals = ledger_totals(batch_tracer.events, kinds=("release",))
        serial_totals = ledger_totals(serial_tracer.events, kinds=("release",))
        assert batch_totals == pytest.approx(serial_totals, rel=1e-12, abs=0.0)
        assert len(batch_tracer.events) == 1
        assert len(serial_tracer.events) == n

    def test_fallback_partial_batch_still_reports_completed_draws(self):
        # Regression: a draw raising mid-batch used to abort release_many
        # before the aggregated event was recorded, so the k draws that
        # DID happen (noise consumed, state mutated) vanished from
        # ledger_totals — an under-count of real releases. The fallback
        # now emits the aggregated event for the completed draws before
        # re-raising.
        class FlakyMechanism(Mechanism):
            def __init__(self, fail_at):
                super().__init__(PrivacySpec(epsilon=0.5))
                self.fail_at = fail_at
                self.calls = 0

            def release(self, dataset, random_state=None):
                self.calls += 1
                if self.calls == self.fail_at:
                    raise RuntimeError("injected mid-batch failure")
                rng = (
                    random_state
                    if isinstance(random_state, np.random.Generator)
                    else np.random.default_rng(random_state)
                )
                return float(rng.uniform())

        mechanism = FlakyMechanism(fail_at=3)
        with tracing() as tracer:
            with pytest.raises(RuntimeError, match="mid-batch"):
                mechanism.release_many(None, 5, random_state=7)
        # Exactly one aggregated event covering the 2 completed draws.
        assert [e.kind for e in tracer.events] == ["release"]
        assert tracer.events[0].count == 2
        assert tracer.events[0].epsilon == 0.5
        assert ledger_totals(tracer.events, kinds=("release",)) == (1.0, 0.0)
        assert tracer.metrics.counter("mechanism.releases") == 2

    def test_fallback_failure_on_first_draw_emits_nothing(self):
        # Nothing was released, so nothing may be recorded — a count=0
        # event would be as wrong as a missing one.
        class ImmediateFailure(Mechanism):
            def __init__(self):
                super().__init__(PrivacySpec(epsilon=1.0))

            def release(self, dataset, random_state=None):
                raise RuntimeError("fails immediately")

        mechanism = ImmediateFailure()
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                mechanism.release_many(None, 4, random_state=0)
        assert tracer.events == []
        assert tracer.metrics.counter("mechanism.releases") == 0

    def test_fallback_loop_emits_no_per_draw_events(self):
        # SmoothSensitivityMedian has no vectorized kernel: the base-class
        # fallback loops the *untraced* release, so even a looped batch
        # records exactly one aggregated event.
        mechanism, dataset = _EXTRA_FAMILIES["smooth-median"]()
        assert type(mechanism)._release_many is Mechanism._release_many
        with tracing() as tracer:
            mechanism.release_many(dataset, 3, random_state=0)
        assert len(tracer.events) == 1
        assert tracer.events[0].count == 3
        assert tracer.metrics.counter("mechanism.releases") == 3


class TestBatchValidationAndState:
    @pytest.mark.parametrize("bad_n", [0, -1, 2.5, "3", True])
    def test_invalid_n_rejected(self, bad_n):
        mechanism = LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, 1.0)
        with pytest.raises(ValidationError):
            mechanism.release_many([1.0], bad_n, random_state=0)

    @pytest.mark.parametrize("noise", ["laplace", "geometric"])
    def test_histogram_noisy_counts_is_last_batch_row(self, noise):
        mechanism = PrivateHistogram(["a", "b"], 1.0, noise=noise)
        batch = mechanism.release_many(["a", "b", "b"], 5, random_state=3)
        assert np.array_equal(mechanism.noisy_counts, batch[-1])

    def test_quantile_batch_handles_duplicate_values(self):
        # Duplicates create zero-length intervals (probability exactly 0);
        # the searchsorted inversion must never select them.
        mechanism = ExponentialQuantile(0.0, 1.0, 0.5, 1.0)
        values = [0.3, 0.3, 0.3, 0.8]
        batch = mechanism.release_many(values, 64, random_state=11)
        rng = np.random.default_rng(11)
        serial = [mechanism.release(values, random_state=rng) for _ in range(64)]
        assert np.array_equal(batch, np.asarray(serial))

    def test_custom_subclass_uses_fallback(self):
        class CoinMechanism(Mechanism):
            def __init__(self):
                super().__init__(PrivacySpec(epsilon=1.0))

            def release(self, dataset, random_state=None):
                rng = np.random.default_rng(random_state) if not isinstance(
                    random_state, np.random.Generator
                ) else random_state
                return int(rng.integers(0, 2))

        mechanism = CoinMechanism()
        batch = mechanism.release_many(None, 8, random_state=5)
        rng = np.random.default_rng(5)
        serial = [mechanism.release(None, random_state=rng) for _ in range(8)]
        assert batch == serial


class TestOverflowRegressions:
    def test_randomized_response_large_epsilon_is_finite(self):
        # exp(ε)/(1+exp(ε)) overflowed to nan past ε ≈ 709, silently
        # flipping *every* bit; the stable sigmoid saturates at 1.0.
        mechanism = RandomizedResponse(800.0)
        assert mechanism.truth_probability == 1.0
        bits = [0, 1, 1, 0]
        assert mechanism.release(bits, random_state=0).tolist() == bits
        batch = mechanism.release_many(bits, 3, random_state=0)
        assert np.array_equal(batch, np.tile(bits, (3, 1)))
        assert mechanism.estimate_proportion(bits) == pytest.approx(0.5)

    def test_randomized_response_matches_unstable_form_at_moderate_eps(self):
        for epsilon in (0.1, 1.0, 5.0, 30.0):
            mechanism = RandomizedResponse(epsilon)
            expected = float(np.exp(epsilon) / (1.0 + np.exp(epsilon)))
            assert mechanism.truth_probability == pytest.approx(
                expected, rel=0, abs=1e-15
            )

    def test_exponential_mechanism_extreme_utilities_no_nan(self):
        # Huge ε·Δq score magnitudes: the log-sum-exp tilt must yield a
        # valid distribution that puts (essentially) all mass on the best
        # candidate, never nan.
        mechanism = ExponentialMechanism(
            lambda d, u: {0: -1e6, 1: 0.0, 2: -5e5, 3: -1e6}[u],
            outputs=range(4),
            sensitivity=1.0,
            epsilon=2000.0,
        )
        probabilities = mechanism.output_distribution([0]).probabilities
        assert np.isfinite(probabilities).all()
        assert probabilities.sum() == pytest.approx(1.0)
        assert probabilities[1] == pytest.approx(1.0)
        assert mechanism.release([0], random_state=0) == 1
        assert mechanism.release_many([0], 4, random_state=0) == [1, 1, 1, 1]

    def test_exponential_mechanism_rejects_non_finite_scores(self):
        mechanism = ExponentialMechanism(
            lambda d, u: float("inf") if u else 0.0,
            outputs=(0, 1),
            sensitivity=1.0,
            epsilon=1.0,
        )
        with pytest.raises(ValidationError):
            mechanism.release([0], random_state=0)
