"""Unit tests for repro.observability: spans, metrics, events, export, sinks.

The tracing-equivalence guarantees (bit-identical mechanism outputs with
tracing on/off, accountant–ledger agreement) live in
``test_observability_equivalence.py``; this file covers the subsystem
itself: span nesting, counter accuracy, the event vocabulary, the JSON
schema round-trip, the sinks, and the near-zero-cost disabled path.
"""

from __future__ import annotations

import io
import json
import time

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import LaplaceMechanism
from repro.observability import (
    BudgetChargeEvent,
    BudgetRefusalEvent,
    CalibrationEvent,
    ConsoleSink,
    FileSink,
    HistogramSummary,
    LedgerEvent,
    MechanismReleaseEvent,
    MetricSet,
    TRACE_SCHEMA_VERSION,
    Tracer,
    activate,
    current,
    deactivate,
    event_from_dict,
    ledger_totals,
    load_trace,
    render_trace,
    tracing,
    validate_trace,
    write_trace,
)
from repro.observability import tracer as tracer_module


class TestSpans:
    def test_nesting_parent_ids(self):
        tracer = Tracer("t")
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        names = {s.name: s for s in tracer.spans}
        assert names["outer"].parent_id is None
        assert names["inner-1"].parent_id == names["outer"].span_id
        assert names["inner-2"].parent_id == names["outer"].span_id
        assert names["leaf"].parent_id == names["inner-2"].span_id

    def test_span_ids_are_start_ordered(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.span_id for s in tracer.spans] == [1, 2]

    def test_durations_measured_and_closed(self):
        tracer = Tracer()
        with tracer.span("timed"):
            time.sleep(0.01)
        (span,) = tracer.spans
        assert span.seconds is not None
        assert span.seconds >= 0.009

    def test_open_span_has_no_duration(self):
        tracer = Tracer()
        with tracer.span("open"):
            assert tracer.spans[0].seconds is None
            assert tracer.active_span is tracer.spans[0]
        assert tracer.active_span is None

    def test_span_closed_even_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans[0].seconds is not None
        assert tracer.active_span is None

    def test_attributes_stored(self):
        tracer = Tracer()
        with tracer.span("s", mechanism="Laplace", n=3):
            pass
        assert tracer.spans[0].attributes == {"mechanism": "Laplace", "n": 3}


class TestMetrics:
    def test_counter_accuracy(self):
        metrics = MetricSet()
        for _ in range(7):
            metrics.count("hits")
        metrics.count("hits", 3)
        assert metrics.counter("hits") == 10
        assert metrics.counter("never") == 0

    def test_counter_rejects_non_finite(self):
        metrics = MetricSet()
        with pytest.raises(ValidationError):
            metrics.count("x", float("nan"))

    def test_histogram_summary(self):
        h = HistogramSummary()
        for value in (3.0, 1.0, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 6.0
        assert h.minimum == 1.0
        assert h.maximum == 3.0
        assert h.mean == 2.0

    def test_empty_histogram_serializes_null_extremes(self):
        assert HistogramSummary().to_dict() == {
            "count": 0,
            "total": 0.0,
            "min": None,
            "max": None,
        }

    def test_observe_rejects_non_finite(self):
        metrics = MetricSet()
        with pytest.raises(ValidationError):
            metrics.observe("x", float("inf"))

    def test_to_dict_sorted_and_lazy(self):
        metrics = MetricSet()
        metrics.count("zeta")
        metrics.count("alpha")
        metrics.observe("lat", 0.5)
        payload = metrics.to_dict()
        assert list(payload["counters"]) == ["alpha", "zeta"]
        assert payload["histograms"]["lat"]["count"] == 1


class TestEvents:
    def test_round_trip_every_kind(self):
        events = [
            MechanismReleaseEvent(label="L", epsilon=0.5, mechanism="L"),
            BudgetChargeEvent(
                label="c", epsilon=0.25, delta=1e-6, remaining_epsilon=0.75
            ),
            BudgetRefusalEvent(label="r", epsilon=9.0, remaining_epsilon=0.1),
            CalibrationEvent(
                label="t", epsilon=1.0, temperature=2.0, loss_range=1.0, n=4
            ),
        ]
        for event in events:
            assert event_from_dict(event.to_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            event_from_dict({"kind": "mystery", "label": "x", "epsilon": 1.0})

    def test_extra_fields_rejected(self):
        payload = MechanismReleaseEvent(label="L", epsilon=0.5).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValidationError):
            event_from_dict(payload)

    def test_ledger_totals_sums_charges_only(self):
        events = [
            BudgetChargeEvent(label="a", epsilon=0.5, delta=1e-7),
            MechanismReleaseEvent(label="b", epsilon=99.0),
            BudgetChargeEvent(label="c", epsilon=0.25),
            BudgetRefusalEvent(label="d", epsilon=5.0),
        ]
        epsilon, delta = ledger_totals(events)
        assert epsilon == 0.75
        assert delta == 1e-7

    def test_ledger_totals_accepts_dict_forms_and_kind_filter(self):
        events = [
            BudgetChargeEvent(label="a", epsilon=0.5).to_dict(),
            MechanismReleaseEvent(label="b", epsilon=0.25).to_dict(),
        ]
        epsilon, _ = ledger_totals(events, kinds=("charge", "release"))
        assert epsilon == 0.75

    def test_events_are_frozen(self):
        event = BudgetChargeEvent(label="a", epsilon=0.5)
        with pytest.raises(AttributeError):
            event.epsilon = 1.0


class TestTracerLedger:
    def test_record_requires_ledger_event(self):
        tracer = Tracer()
        with pytest.raises(ValidationError):
            tracer.record({"kind": "charge"})

    def test_recorded_events_export_in_order(self):
        tracer = Tracer()
        tracer.record(BudgetChargeEvent(label="a", epsilon=0.5))
        tracer.record(BudgetChargeEvent(label="b", epsilon=0.25))
        payload = tracer.to_dict()
        assert [e["label"] for e in payload["ledger"]] == ["a", "b"]


class TestActivation:
    def test_disabled_by_default(self):
        assert current() is None

    def test_tracing_context_restores_previous(self):
        outer = Tracer("outer")
        with tracing(outer):
            assert current() is outer
            inner = Tracer("inner")
            with tracing(inner):
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_tracing_creates_fresh_tracer_when_omitted(self):
        with tracing() as tracer:
            assert current() is tracer
        assert current() is None

    def test_activate_deactivate(self):
        tracer = Tracer()
        assert activate(tracer) is None
        try:
            assert current() is tracer
        finally:
            assert deactivate() is tracer
        assert current() is None

    def test_activate_rejects_non_tracer(self):
        with pytest.raises(ValidationError):
            activate("not a tracer")

    def test_module_helpers_are_noops_when_disabled(self):
        with tracer_module.span("nothing") as opened:
            assert opened is None
        tracer_module.record(BudgetChargeEvent(label="x", epsilon=1.0))
        assert current() is None

    def test_module_helpers_delegate_when_active(self):
        with tracing() as tracer:
            with tracer_module.span("s") as opened:
                assert opened is tracer.spans[0]
            tracer_module.record(BudgetChargeEvent(label="x", epsilon=1.0))
        assert len(tracer.events) == 1


class TestExportSchema:
    def _trace(self):
        tracer = Tracer("unit")
        with tracer.span("outer", kind="test"):
            with tracer.span("inner"):
                pass
        tracer.count("mechanism.releases", 3)
        tracer.observe("latency", 0.5)
        tracer.record(BudgetChargeEvent(label="c", epsilon=0.5))
        return tracer

    def test_json_round_trip(self, tmp_path):
        # Capture one document: `seconds` is live, so to_dict() varies.
        payload = validate_trace(self._trace().to_dict())
        path = write_trace(payload, tmp_path / "deep" / "trace.json")
        loaded = load_trace(path)
        assert loaded == payload
        assert loaded["schema_version"] == TRACE_SCHEMA_VERSION
        assert loaded["counters"]["mechanism.releases"] == 3
        assert [e["kind"] for e in loaded["ledger"]] == ["charge"]

    def test_validate_rejects_wrong_version(self):
        payload = self._trace().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValidationError):
            validate_trace(payload)

    def test_validate_rejects_missing_keys(self):
        payload = self._trace().to_dict()
        del payload["ledger"]
        with pytest.raises(ValidationError):
            validate_trace(payload)

    def test_validate_rejects_unknown_span_parent(self):
        payload = self._trace().to_dict()
        payload["spans"][1]["parent_id"] = 777
        with pytest.raises(ValidationError):
            validate_trace(payload)

    def test_validate_rejects_malformed_ledger_entry(self):
        payload = self._trace().to_dict()
        payload["ledger"].append({"kind": "charge"})
        with pytest.raises(ValidationError):
            validate_trace(payload)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_trace(tmp_path / "nope.json")

    def test_load_rejects_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValidationError):
            load_trace(bad)

    def test_render_mentions_spans_and_totals(self):
        text = render_trace(self._trace())
        assert "outer" in text
        assert "inner" in text
        assert "mechanism.releases" in text
        assert "ε=0.5" in text


class TestSinks:
    def test_console_sink_writes_summary(self):
        tracer = Tracer("sinky")
        with tracer.span("work"):
            pass
        stream = io.StringIO()
        ConsoleSink(stream).emit(tracer)
        assert "sinky" in stream.getvalue()
        assert "work" in stream.getvalue()

    def test_file_sink_writes_valid_document(self, tmp_path):
        tracer = Tracer()
        tracer.record(BudgetChargeEvent(label="a", epsilon=0.5))
        path = FileSink(tmp_path / "out" / "t.json").emit(tracer)
        payload = json.loads(path.read_text())
        assert validate_trace(payload) == payload


class TestDisabledOverhead:
    def test_disabled_hook_under_five_percent(self):
        """The no-op tracing path must stay within 5% of the bare release.

        The base-class hook costs one module read + a None check (~0.5 µs);
        on a release doing real work (a ~150 µs vectorized query over 64k
        records plus a Laplace draw) that is far below the 5% budget.
        Interleaved min-of-trials cancels scheduler noise, alternating
        which variant runs first so clock-ramp bias cancels too; on a
        loaded box even the min can wobble past the budget, so the
        comparison retries on progressively quieter samples before
        failing.
        """
        mechanism = LaplaceMechanism(
            lambda d: float(np.log1p(np.abs(d)).sum()), 1.0, 1.0
        )
        dataset = np.ones(65536)
        bare = mechanism.release.__wrapped__  # the hook is functools.wraps'd
        wrapped = type(mechanism).release
        rounds = 30

        def timed(fn):
            rng = np.random.default_rng(0)
            start = time.perf_counter()
            for _ in range(rounds):
                fn(mechanism, dataset, random_state=rng)
            return time.perf_counter() - start

        bare_times, wrapped_times = [], []
        for attempt in range(5):
            for trial in range(8):
                if trial % 2:
                    wrapped_times.append(timed(wrapped))
                    bare_times.append(timed(bare))
                else:
                    bare_times.append(timed(bare))
                    wrapped_times.append(timed(wrapped))
            assert current() is None  # measured the no-op path
            if min(wrapped_times) <= min(bare_times) * 1.05:
                return
        pytest.fail(
            f"disabled hook overhead "
            f"{min(wrapped_times) / min(bare_times) - 1:.1%} exceeds 5% "
            f"after {len(wrapped_times)} interleaved trials"
        )
