"""Unit tests for the geometric mechanism."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import GeometricMechanism


def count_query(dataset):
    return sum(dataset)


@pytest.fixture
def mechanism() -> GeometricMechanism:
    return GeometricMechanism(count_query, sensitivity=1.0, epsilon=1.0)


class TestNoise:
    def test_pmf_sums_to_one(self, mechanism):
        total = sum(
            np.exp(mechanism.noise_log_pmf(k)) for k in range(-200, 201)
        )
        assert total == pytest.approx(1.0, abs=1e-10)

    def test_pmf_symmetric(self, mechanism):
        assert mechanism.noise_log_pmf(5) == pytest.approx(
            mechanism.noise_log_pmf(-5)
        )

    def test_sampled_moments_match(self, mechanism):
        rng = np.random.default_rng(0)
        draws = [mechanism.sample_noise(rng) for _ in range(100_000)]
        assert np.mean(draws) == pytest.approx(0.0, abs=0.02)
        assert np.var(draws) == pytest.approx(mechanism.noise_variance(), rel=0.03)

    def test_sampled_pmf_matches_analytic(self, mechanism):
        rng = np.random.default_rng(1)
        draws = np.array([mechanism.sample_noise(rng) for _ in range(200_000)])
        for k in [0, 1, -2]:
            empirical = np.mean(draws == k)
            analytic = np.exp(mechanism.noise_log_pmf(k))
            assert empirical == pytest.approx(analytic, rel=0.05)


class TestPrivacy:
    def test_exact_dp_on_all_outputs(self, mechanism):
        """Neighbouring counts differ by 1, so the log-pmf ratio is <= ε."""
        d1 = [1, 0, 1]
        d2 = [1, 1, 1]
        for value in range(-50, 60):
            gap = abs(
                mechanism.output_log_pmf(d1, value)
                - mechanism.output_log_pmf(d2, value)
            )
            assert gap <= mechanism.epsilon + 1e-12

    def test_dp_bound_is_attained(self, mechanism):
        """The geometric mechanism is sharp: the ratio equals ε in the tail."""
        gap = abs(
            mechanism.output_log_pmf([0], 100) - mechanism.output_log_pmf([1], 100)
        )
        assert gap == pytest.approx(mechanism.epsilon)


class TestRelease:
    def test_integer_output(self, mechanism):
        out = mechanism.release([1, 1, 0], random_state=0)
        assert isinstance(out, int)

    def test_rejects_non_integer_query(self):
        mech = GeometricMechanism(lambda d: 0.5, sensitivity=1.0, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.release([1], random_state=0)

    def test_unbiased(self, mechanism):
        rng = np.random.default_rng(2)
        outputs = [mechanism.release([1, 1, 1], random_state=rng) for _ in range(50_000)]
        assert np.mean(outputs) == pytest.approx(3.0, abs=0.05)

    def test_alpha_decreases_with_epsilon(self):
        weak = GeometricMechanism(count_query, 1.0, epsilon=0.1)
        strong = GeometricMechanism(count_query, 1.0, epsilon=5.0)
        assert weak.alpha > strong.alpha
        assert weak.noise_variance() > strong.noise_variance()
