"""Property-based tests (hypothesis) for the paper's core invariants.

These run randomized instances through the *structural* facts everything
else depends on: DP inequalities, information inequalities, Gibbs
optimality, and channel/fixed-point identities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pac_bayes import catoni_objective, gibbs_minimizer
from repro.core.tradeoff import gibbs_channel_matrix, tradeoff_objective
from repro.distributions import DiscreteDistribution
from repro.information import (
    kl_divergence,
    max_divergence,
    mutual_information_from_joint,
)
from repro.information.blahut_arimoto import rate_distortion


def simplex(size: int):
    return st.lists(st.floats(1e-4, 1.0), min_size=size, max_size=size).map(
        lambda ws: np.array(ws) / sum(ws)
    )


def risk_vector(size: int):
    return st.lists(st.floats(0.0, 1.0), min_size=size, max_size=size).map(
        np.array
    )


def risk_matrix(rows: int, cols: int):
    return st.lists(
        st.floats(0.0, 1.0), min_size=rows * cols, max_size=rows * cols
    ).map(lambda vs: np.array(vs).reshape(rows, cols))


class TestGibbsTiltPrivacyProperty:
    """The algebraic heart of Theorem 4.1: tilting any prior by two risk
    vectors that differ by at most Δ in sup-norm produces posteriors whose
    max divergence is at most 2λΔ."""

    @settings(max_examples=60)
    @given(simplex(5), risk_vector(5), risk_vector(5), st.floats(0.1, 20.0))
    def test_tilt_privacy_inequality(self, prior_probs, risks_a, risks_b, lam):
        delta = float(np.abs(risks_a - risks_b).max())
        prior = DiscreteDistribution(range(5), prior_probs)
        post_a = prior.tilt(-lam * risks_a)
        post_b = prior.tilt(-lam * risks_b)
        bound = 2.0 * lam * delta
        assert max_divergence(post_a, post_b) <= bound + 1e-7
        assert max_divergence(post_b, post_a) <= bound + 1e-7


class TestGibbsOptimalityProperty:
    """Lemma 3.2 on random instances: no random posterior beats Gibbs."""

    @settings(max_examples=40)
    @given(
        simplex(4),
        risk_vector(4),
        st.floats(0.1, 30.0),
        simplex(4),
    )
    def test_gibbs_minimizes(self, prior_probs, risks, lam, competitor_probs):
        prior = DiscreteDistribution(range(4), prior_probs)
        competitor = DiscreteDistribution(range(4), competitor_probs)
        gibbs = gibbs_minimizer(prior, risks, lam)
        assert catoni_objective(gibbs, prior, risks, lam) <= (
            catoni_objective(competitor, prior, risks, lam) + 1e-9
        )


class TestTradeoffProperty:
    """Theorem 4.2 on random instances: the BA optimum beats the Gibbs
    channel built on any *other* prior, and its rows ARE Gibbs rows."""

    @settings(max_examples=25, deadline=None)
    @given(simplex(3), risk_matrix(3, 4), st.floats(0.2, 10.0), simplex(4))
    def test_ba_beats_fixed_prior_gibbs(
        self, source, risks, epsilon, other_prior
    ):
        result = rate_distortion(source, risks, beta=epsilon)
        optimum = result.rate / epsilon + result.distortion  # J = I/ε + E R̂

        other_channel = gibbs_channel_matrix(other_prior, risks, epsilon)
        other_value = tradeoff_objective(other_channel, source, risks, epsilon)
        assert optimum <= other_value + 1e-7

    @settings(max_examples=25, deadline=None)
    @given(simplex(3), risk_matrix(3, 4), st.floats(0.2, 10.0))
    def test_fixed_point_rows_are_gibbs(self, source, risks, epsilon):
        result = rate_distortion(source, risks, beta=epsilon)
        gibbs = gibbs_channel_matrix(
            result.output_distribution, risks, epsilon
        )
        # Alternating minimization converges sublinearly on instances
        # whose optimal marginal sits near the simplex boundary, so the
        # row residual can exceed the solver's step tolerance by orders
        # of magnitude; 1e-4 still pins the fixed-point identity.
        assert np.abs(result.channel_matrix - gibbs).max() < 1e-4


class TestInformationInequalities:
    @settings(max_examples=60)
    @given(simplex(12))
    def test_mi_nonnegative_any_joint(self, flat):
        joint = np.asarray(flat).reshape(3, 4)
        assert mutual_information_from_joint(joint) >= 0.0

    @settings(max_examples=60)
    @given(simplex(4), simplex(4), simplex(4))
    def test_kl_convexity_in_first_argument(self, p1, p2, q):
        """KL(λp1+(1-λ)p2 ‖ q) <= λKL(p1‖q) + (1-λ)KL(p2‖q)."""
        lam = 0.3
        mix = lam * np.asarray(p1) + (1 - lam) * np.asarray(p2)
        lhs = kl_divergence(mix / mix.sum(), q)
        rhs = lam * kl_divergence(p1, q) + (1 - lam) * kl_divergence(p2, q)
        assert lhs <= rhs + 1e-9

    @settings(max_examples=60)
    @given(simplex(5), simplex(5))
    def test_max_divergence_dominates_kl(self, p, q):
        assert kl_divergence(p, q) <= max_divergence(p, q) + 1e-9


class TestCompositionProperty:
    @settings(max_examples=40)
    @given(
        simplex(4),
        risk_vector(4),
        risk_vector(4),
        st.floats(0.1, 5.0),
        st.floats(0.1, 5.0),
    )
    def test_sequential_tilts_compose_additively(
        self, prior_probs, risks_a, risks_b, lam_a, lam_b
    ):
        """Releasing two Gibbs outputs sequentially is itself a tilt whose
        privacy parameters add — basic composition, verified exactly on
        the product output law."""
        prior = DiscreteDistribution(range(4), prior_probs)
        # Joint law of two independent releases = product of posteriors.
        post_a1 = prior.tilt(-lam_a * risks_a)
        post_a2 = prior.tilt(-lam_b * risks_a)
        post_b1 = prior.tilt(-lam_a * risks_b)
        post_b2 = prior.tilt(-lam_b * risks_b)
        joint_a = post_a1.product(post_a2)
        joint_b = post_b1.product(post_b2)
        delta = float(np.abs(np.asarray(risks_a) - np.asarray(risks_b)).max())
        budget = 2.0 * (lam_a + lam_b) * delta
        assert max_divergence(joint_a, joint_b) <= budget + 1e-7


class TestChannelPostprocessing:
    @settings(max_examples=30)
    @given(simplex(3), risk_matrix(3, 3), st.floats(0.5, 5.0))
    def test_post_processing_cannot_increase_privacy_loss(
        self, prior, risks, lam
    ):
        """Pushing a Gibbs posterior through any deterministic map keeps
        the max divergence bounded by the original — DP's closure under
        post-processing, checked on the pushforward."""
        base = DiscreteDistribution(range(3), prior)
        post_a = base.tilt(-lam * risks[0])
        post_b = base.tilt(-lam * risks[1])
        original = max_divergence(post_a, post_b)
        mapped_a = post_a.map(lambda i: i % 2)
        mapped_b = post_b.map(lambda i: i % 2)
        assert max_divergence(mapped_a, mapped_b) <= original + 1e-9
