"""Unit tests for the exponential-mechanism quantile."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.quantile import ExponentialQuantile


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    return np.sort(rng.uniform(0.2, 0.8, size=301))


class TestIntervalDistribution:
    def test_sums_to_one(self, data):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.5, epsilon=1.0)
        probs = mech.interval_distribution(data)
        assert probs.shape == (302,)
        assert probs.sum() == pytest.approx(1.0)

    def test_mass_concentrates_near_target_at_large_epsilon(self, data):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.5, epsilon=200.0)
        probs = mech.interval_distribution(data)
        # The interval containing the true median has rank n/2.
        target = len(data) // 2
        assert probs[target - 2 : target + 3].sum() > 0.9

    def test_near_uniform_over_length_at_tiny_epsilon(self, data):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.5, epsilon=1e-9)
        probs = mech.interval_distribution(data)
        # Probability ∝ interval length: the two huge edge gaps dominate.
        assert probs[0] + probs[-1] > 0.35

    def test_zero_length_intervals_get_zero_mass(self):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.5, epsilon=1.0)
        values = [0.3, 0.3, 0.7]  # duplicate creates a zero-length interval
        probs = mech.interval_distribution(values)
        # Breakpoints [0, .3, .3, .7, 1]: the zero-length gap is interval 1.
        assert probs[1] == 0.0


class TestRelease:
    def test_within_bounds(self, data):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.5, epsilon=1.0)
        rng = np.random.default_rng(1)
        for _ in range(200):
            assert 0.0 <= mech.release(data, random_state=rng) <= 1.0

    def test_accurate_at_large_epsilon(self, data):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.5, epsilon=100.0)
        rng = np.random.default_rng(2)
        draws = [mech.release(data, random_state=rng) for _ in range(200)]
        assert np.median(draws) == pytest.approx(np.median(data), abs=0.02)

    def test_other_quantiles(self, data):
        mech = ExponentialQuantile(0.0, 1.0, quantile=0.9, epsilon=100.0)
        rng = np.random.default_rng(3)
        draws = [mech.release(data, random_state=rng) for _ in range(200)]
        assert np.median(draws) == pytest.approx(
            np.quantile(data, 0.9), abs=0.03
        )

    def test_rank_error_decreases_with_epsilon(self, data):
        weak = ExponentialQuantile(0.0, 1.0, 0.5, epsilon=0.1)
        strong = ExponentialQuantile(0.0, 1.0, 0.5, epsilon=10.0)
        assert strong.expected_rank_error(data) < weak.expected_rank_error(data)

    def test_rank_error_logarithmic_in_epsilon(self, data):
        """Exponential-mechanism utility: rank error ~ (2/ε)·log n."""
        mech = ExponentialQuantile(0.0, 1.0, 0.5, epsilon=1.0)
        error = mech.expected_rank_error(data)
        assert error <= (2.0 / 1.0) * (np.log(len(data)) + 3)


class TestPrivacy:
    def test_interval_law_ratio_bounded_by_epsilon(self, data):
        """Substituting one record shifts each candidate's rank by at most
        1, so the interval probabilities on neighbours stay within e^ε —
        checked on the exact interval laws restricted to the intervals
        both datasets share (the common refinement argument)."""
        epsilon = 1.0
        mech = ExponentialQuantile(0.0, 1.0, 0.5, epsilon=epsilon)
        rng = np.random.default_rng(4)
        base = list(data)
        neighbour = list(data)
        neighbour[10] = float(rng.uniform(0.2, 0.8))

        # Compare densities at common probe points (density = interval
        # prob / interval length at the probe's interval).
        def density_at(values, t):
            breakpoints, lengths, _ = mech._intervals(np.asarray(values))
            probs = mech.interval_distribution(values)
            index = int(np.searchsorted(breakpoints, t, side="right")) - 1
            index = min(max(index, 0), len(lengths) - 1)
            if lengths[index] == 0:
                return 0.0
            return probs[index] / lengths[index]

        for t in rng.uniform(0.05, 0.95, size=50):
            a = density_at(base, t)
            b = density_at(neighbour, t)
            if a > 0 and b > 0:
                assert abs(np.log(a) - np.log(b)) <= epsilon + 1e-9

    def test_validation(self):
        with pytest.raises(ValidationError):
            ExponentialQuantile(1.0, 0.0, 0.5, 1.0)
        with pytest.raises(ValidationError):
            ExponentialQuantile(0.0, 1.0, 1.0, 1.0)
        mech = ExponentialQuantile(0.0, 1.0, 0.5, 1.0)
        with pytest.raises(ValidationError):
            mech.release([1.5], random_state=0)
