"""End-to-end exit-code contracts for ``repro lint``/``audit``/``bench``.

All three subcommands share one contract, enforced here through ``main()``
and through a real ``python -m repro`` subprocess (the code CI actually
sees):

* 0 — clean: no findings / every audited claim holds;
* 1 — findings: lint violations or a certified ε violation;
* 2 — usage error: unknown rule, unknown family, bad arguments.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

# Small sample sizes keep these end-to-end runs fast; the margins they
# certify (see test values) are far wider than the resulting CP widths.
FAST_AUDIT = ["--samples", "2000"]


def _violating_file(tmp_path: pathlib.Path) -> pathlib.Path:
    bad = tmp_path / "repro" / "mechanisms" / "snippet.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(rng):\n    return rng.laplace(0.0, 1.0)\n")
    return bad


def _run_module(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        timeout=300,
    )


class TestLintExitCodes:
    def test_clean_tree_exits_zero(self):
        import repro

        baseline = REPO_ROOT / "benchmarks" / "dplint_baseline.json"
        assert (
            main(
                [
                    "lint",
                    "--baseline",
                    str(baseline),
                    str(next(iter(repro.__path__))),
                ]
            )
            == 0
        )

    def test_findings_exit_one(self, tmp_path):
        assert main(["lint", str(_violating_file(tmp_path))]) == 1

    def test_unknown_rule_exits_two(self, capsys, tmp_path):
        code = main(
            ["lint", "--select", "DPL999", str(_violating_file(tmp_path))]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2

    def test_subprocess_findings(self, tmp_path):
        result = _run_module("lint", str(_violating_file(tmp_path)))
        assert result.returncode == 1
        assert "DPL003" in result.stdout


class TestAuditExitCodes:
    def test_honest_mechanism_exits_zero(self, capsys):
        code = main(["audit", "laplace", *FAST_AUDIT])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_violation_exits_one(self, capsys):
        code = main(
            ["audit", "laplace", "--noise-scale", "0.4", *FAST_AUDIT]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out

    def test_unknown_family_exits_two(self, capsys):
        code = main(["audit", "frobnicate", *FAST_AUDIT])
        assert code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_bad_parameters_exit_two(self, capsys):
        code = main(["audit", "laplace", "--epsilon", "-1", *FAST_AUDIT])
        assert code == 2
        assert "epsilon" in capsys.readouterr().err

    def test_list_families_exits_zero(self, capsys):
        from repro.testing import AUDIT_FAMILIES

        assert main(["audit", "--list"]) == 0
        out = capsys.readouterr().out
        for family in AUDIT_FAMILIES:
            assert family in out

    def test_json_report_round_trips(self, capsys):
        code = main(
            ["audit", "randomized-response", "--format", "json", *FAST_AUDIT]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["satisfied"] is True
        assert payload["reports"][0]["mechanism"] == "randomized-response"

    def test_gibbs_includes_exact_enumeration(self, capsys):
        code = main(["audit", "gibbs", "--format", "json", *FAST_AUDIT])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["gibbs_exact"]["satisfied"] is True
        assert payload["gibbs_exact"]["measured_epsilon"] <= 1.0

    def test_skip_exact_omits_enumeration(self, capsys):
        code = main(
            ["audit", "gibbs", "--skip-exact", "--format", "json", *FAST_AUDIT]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "gibbs_exact" not in payload

    def test_subprocess_full_contract(self):
        ok = _run_module("audit", "randomized-response", *FAST_AUDIT)
        assert ok.returncode == 0, ok.stderr
        broken = _run_module(
            "audit", "laplace", "--noise-scale", "0.4", *FAST_AUDIT
        )
        assert broken.returncode == 1, broken.stderr
        usage = _run_module("audit", "frobnicate")
        assert usage.returncode == 2


class TestBenchExitCodes:
    def _dirs(self, tmp_path):
        return [
            "--output-dir", str(tmp_path / "out"),
            "--cache-dir", str(tmp_path / "cache"),
        ]

    def test_clean_run_exits_zero_and_writes_manifest(self, capsys, tmp_path):
        # E14 is the cheapest registered bench (pure accounting, no RNG).
        code = main(["bench", "E14", *self._dirs(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "bench OK" in out
        manifest = json.loads((tmp_path / "out" / "BENCH_E14.json").read_text())
        assert manifest["experiment"] == "E14"
        assert manifest["summary"]["failures"] == 0
        assert all(
            c["seconds"] >= 0 for c in manifest["configurations"]
        )

    def test_second_run_hits_cache(self, capsys, tmp_path):
        argv = ["bench", "E14", *self._dirs(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        manifest = json.loads((tmp_path / "out" / "BENCH_E14.json").read_text())
        hits = manifest["summary"]["cache_hits"]
        assert hits == manifest["summary"]["configurations"]
        assert f"{hits} cache hits" in out

    def test_unknown_pattern_exits_two(self, capsys, tmp_path):
        code = main(["bench", "E99", *self._dirs(tmp_path)])
        assert code == 2
        assert "no experiment matches" in capsys.readouterr().err

    def test_bad_workers_exit_two(self, capsys, tmp_path):
        code = main(["bench", "E14", "--workers", "0", *self._dirs(tmp_path)])
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_list_exits_zero_without_running(self, capsys, tmp_path):
        code = main(["bench", "E1?", "--list", *self._dirs(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "E10" in out and "E16" in out
        assert not (tmp_path / "out").exists()

    def test_json_report_round_trips(self, capsys, tmp_path):
        code = main(
            ["bench", "E14", "--json", "--no-cache", *self._dirs(tmp_path)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["cache"] is False
        assert payload["failures"] == 0
        assert payload["manifests"][0]["experiment"] == "E14"

    def test_subprocess_clean_run(self, tmp_path):
        result = _run_module("bench", "E14", *self._dirs(tmp_path))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "out" / "BENCH_E14.json").exists()


class TestTraceCli:
    """The observability surface: --trace/--trace-json flags + `repro trace`."""

    def _dirs(self, tmp_path):
        return [
            "--output-dir", str(tmp_path / "out"),
            "--cache-dir", str(tmp_path / "cache"),
        ]

    def test_bench_trace_json_writes_schema_valid_document(
        self, capsys, tmp_path
    ):
        from repro.observability import validate_trace

        trace_path = tmp_path / "traces" / "bench.json"
        code = main(
            [
                "bench", "E14", "--no-cache",
                "--trace-json", str(trace_path),
                *self._dirs(tmp_path),
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "trace written" in err
        payload = json.loads(trace_path.read_text())
        assert validate_trace(payload) == payload
        assert payload["name"] == "repro bench"
        names = [s["name"] for s in payload["spans"]]
        assert "experiment:E14" in names
        assert "config:E14" in names

    def test_bench_trace_prints_summary_to_stderr(self, capsys, tmp_path):
        code = main(
            ["bench", "E14", "--no-cache", "--trace", *self._dirs(tmp_path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "repro bench" in captured.err
        assert "experiment:E14" in captured.err
        assert "bench OK" in captured.out  # stdout untouched by the trace

    def test_audit_trace_json_records_audit_spans(self, capsys, tmp_path):
        trace_path = tmp_path / "audit.json"
        code = main(
            [
                "audit", "randomized-response", "--skip-exact",
                "--trace-json", str(trace_path), *FAST_AUDIT,
            ]
        )
        capsys.readouterr()
        assert code == 0
        payload = json.loads(trace_path.read_text())
        assert payload["name"] == "repro audit"
        assert any(
            s["name"].startswith("audit:") for s in payload["spans"]
        )
        assert payload["counters"]["audit.trials"] >= 1
        assert payload["counters"]["mechanism.releases"] >= 1

    def test_trace_command_round_trips(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        assert (
            main(
                [
                    "bench", "E14", "--no-cache",
                    "--trace-json", str(trace_path),
                    *self._dirs(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "experiment:E14" in out
        assert main(["trace", str(trace_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "repro bench"

    def test_trace_command_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "missing.json")]) == 2
        assert "trace:" in capsys.readouterr().err

    def test_trace_command_malformed_document_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema_version": 99}')
        assert main(["trace", str(bad)]) == 2
        assert "schema version" in capsys.readouterr().err

    def test_untraced_commands_leave_no_tracer_active(self, capsys, tmp_path):
        from repro.observability import current

        assert main(["bench", "E14", "--no-cache", *self._dirs(tmp_path)]) == 0
        capsys.readouterr()
        assert current() is None

    def test_subprocess_trace_flow(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        run = _run_module(
            "bench", "E14", "--no-cache",
            "--trace-json", str(trace_path),
            "--output-dir", str(tmp_path / "out"),
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert run.returncode == 0, run.stderr
        show = _run_module("trace", str(trace_path))
        assert show.returncode == 0, show.stderr
        assert "experiment:E14" in show.stdout
