"""Unit tests for Gaussian, randomized response, and vector mechanisms."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import (
    GaussianMechanism,
    RandomizedResponse,
    VectorLaplaceMechanism,
)
from repro.mechanisms.gaussian import gaussian_sigma


class TestGaussianMechanism:
    def test_sigma_calibration(self):
        sigma = gaussian_sigma(sensitivity=1.0, epsilon=1.0, delta=1e-5)
        assert sigma == pytest.approx(np.sqrt(2 * np.log(1.25e5)))

    def test_requires_positive_delta(self):
        with pytest.raises(ValueError):
            GaussianMechanism(lambda d: 0.0, 1.0, epsilon=1.0, delta=0.0)

    def test_release_unbiased(self):
        mech = GaussianMechanism(
            lambda d: float(sum(d)), 1.0, epsilon=1.0, delta=1e-5
        )
        rng = np.random.default_rng(0)
        outs = [mech.release([1, 1], random_state=rng) for _ in range(20_000)]
        assert np.mean(outs) == pytest.approx(2.0, abs=0.1)

    def test_pure_dp_fails_in_the_tail(self):
        """Negative control: Gaussian noise cannot be pure ε-DP — the
        log-density ratio grows without bound in the tail."""
        mech = GaussianMechanism(
            lambda d: float(sum(d)), 1.0, epsilon=1.0, delta=1e-3
        )
        gap_near = abs(
            mech.output_log_density([0], 1.0) - mech.output_log_density([1], 1.0)
        )
        gap_far = abs(
            mech.output_log_density([0], 50.0) - mech.output_log_density([1], 50.0)
        )
        assert gap_far > gap_near
        assert gap_far > mech.epsilon  # pure-DP audit would flag this

    def test_vector_release(self):
        mech = GaussianMechanism(
            lambda d: np.array([1.0, 2.0]), 1.0, epsilon=1.0, delta=1e-5
        )
        out = mech.release([0], random_state=0)
        assert out.shape == (2,)


class TestRandomizedResponse:
    def test_truth_probability(self):
        rr = RandomizedResponse(epsilon=np.log(3.0))
        assert rr.truth_probability == pytest.approx(0.75)

    def test_randomize_bit_validates(self):
        rr = RandomizedResponse(epsilon=1.0)
        with pytest.raises(ValidationError):
            rr.randomize_bit(2)

    def test_release_flips_at_expected_rate(self):
        rr = RandomizedResponse(epsilon=np.log(3.0))
        bits = np.ones(100_000, dtype=int)
        out = rr.release(bits, random_state=0)
        assert out.mean() == pytest.approx(0.75, abs=0.005)

    def test_release_rejects_non_binary(self):
        rr = RandomizedResponse(epsilon=1.0)
        with pytest.raises(ValidationError):
            rr.release([0, 2], random_state=0)

    def test_debiasing_recovers_proportion(self):
        rr = RandomizedResponse(epsilon=1.0)
        rng = np.random.default_rng(1)
        bits = (rng.uniform(size=200_000) < 0.3).astype(int)
        noisy = rr.release(bits, random_state=rng)
        assert rr.estimate_proportion(noisy) == pytest.approx(0.3, abs=0.01)

    def test_estimator_variance_shrinks_with_n(self):
        rr = RandomizedResponse(epsilon=1.0)
        assert rr.estimator_variance(10_000) < rr.estimator_variance(100)

    def test_channel_is_exactly_epsilon_dp(self):
        """RR saturates the DP constraint: channel max-log-ratio == ε."""
        epsilon = 1.3
        rr = RandomizedResponse(epsilon=epsilon)
        channel = rr.as_channel()
        assert channel.max_log_ratio() == pytest.approx(epsilon)

    def test_privacy_utility_tradeoff(self):
        strict = RandomizedResponse(epsilon=0.1)
        loose = RandomizedResponse(epsilon=5.0)
        assert strict.estimator_variance(1000) > loose.estimator_variance(1000)


class TestVectorLaplaceMechanism:
    def test_release_shape(self):
        mech = VectorLaplaceMechanism(
            lambda d: np.zeros(3), dimension=3, sensitivity=1.0, epsilon=1.0
        )
        out = mech.release([0], random_state=0)
        assert out.shape == (3,)

    def test_rejects_wrong_query_shape(self):
        mech = VectorLaplaceMechanism(
            lambda d: np.zeros(2), dimension=3, sensitivity=1.0, epsilon=1.0
        )
        with pytest.raises(ValidationError):
            mech.release([0], random_state=0)

    def test_expected_noise_norm(self):
        mech = VectorLaplaceMechanism(
            lambda d: np.zeros(4), dimension=4, sensitivity=2.0, epsilon=1.0
        )
        rng = np.random.default_rng(0)
        norms = [
            np.linalg.norm(mech.release([0], random_state=rng))
            for _ in range(50_000)
        ]
        assert np.mean(norms) == pytest.approx(mech.expected_noise_norm(), rel=0.02)

    def test_analytic_dp_property(self):
        """log-density ratio between neighbours bounded by ε·‖Δf‖/Δf = ε."""
        shift = np.array([0.6, -0.8])  # ‖shift‖ = 1 = the sensitivity
        mech = VectorLaplaceMechanism(
            lambda d: shift if d[0] else np.zeros(2),
            dimension=2,
            sensitivity=1.0,
            epsilon=0.7,
        )
        rng = np.random.default_rng(3)
        for _ in range(200):
            value = rng.normal(size=2) * 3
            gap = abs(
                mech.output_log_density([0], value)
                - mech.output_log_density([1], value)
            )
            assert gap <= mech.epsilon + 1e-9
