"""Unit tests for the LearningChannel (Figure 1)."""

import numpy as np
import pytest

from repro.core import GibbsPosterior, LearningChannel
from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid


@pytest.fixture
def channel_setup():
    task = BernoulliTask(p=0.7)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
    data_law = DiscreteDistribution([0, 1], [0.3, 0.7])
    gibbs = GibbsPosterior(grid, temperature=2.0)
    channel = LearningChannel(data_law, n=2, posterior_map=gibbs.posterior)
    return task, grid, gibbs, channel


class TestConstruction:
    def test_enumerates_all_samples(self, channel_setup):
        _, _, _, channel = channel_setup
        assert len(channel.samples) == 4
        assert (0, 1) in channel.samples

    def test_predictor_alphabet(self, channel_setup):
        _, grid, _, channel = channel_setup
        assert channel.predictors == grid.thetas

    def test_rejects_bad_n(self, channel_setup):
        _, _, gibbs, _ = channel_setup
        law = DiscreteDistribution([0, 1], [0.5, 0.5])
        with pytest.raises(ValidationError):
            LearningChannel(law, n=0, posterior_map=gibbs.posterior)


class TestInformationQuantities:
    def test_mutual_information_nonnegative_and_below_entropy(self, channel_setup):
        _, _, _, channel = channel_setup
        mi = channel.mutual_information()
        assert 0.0 <= mi <= channel.sample_entropy() + 1e-12

    def test_mi_increases_with_temperature(self):
        """Sharper posteriors leak more about the sample."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 3)
        law = DiscreteDistribution([0, 1], [0.3, 0.7])
        infos = []
        for temperature in [0.1, 1.0, 10.0]:
            gibbs = GibbsPosterior(grid, temperature)
            channel = LearningChannel(law, n=2, posterior_map=gibbs.posterior)
            infos.append(channel.mutual_information())
        assert infos[0] < infos[1] < infos[2]

    def test_optimal_prior_is_mixture_of_posteriors(self, channel_setup):
        _, _, gibbs, channel = channel_setup
        prior = channel.optimal_prior()
        expected = np.zeros(len(channel.predictors))
        for sample, weight in channel.sample_law:
            expected += weight * gibbs.posterior(list(sample)).probabilities
        assert prior.probabilities == pytest.approx(expected)

    def test_kl_decomposition_with_optimal_prior(self, channel_setup):
        """E KL(π̂ ‖ E π̂) equals the channel mutual information exactly."""
        from repro.information import kl_divergence

        _, _, gibbs, channel = channel_setup
        marginal = channel.optimal_prior()
        expected_kl = sum(
            weight * kl_divergence(gibbs.posterior(list(sample)), marginal)
            for sample, weight in channel.sample_law
        )
        assert expected_kl == pytest.approx(channel.mutual_information())

    def test_adversary_posterior_is_bayes(self, channel_setup):
        _, _, _, channel = channel_setup
        theta = channel.predictors[0]
        posterior = channel.adversary_posterior(theta)
        assert posterior.probabilities.sum() == pytest.approx(1.0)
        # Adversary posterior must deviate from the prior sample law when
        # MI > 0 for at least one output.
        deviations = [
            channel.adversary_posterior(t).total_variation_distance(
                channel.sample_law
            )
            for t in channel.predictors
        ]
        assert max(deviations) > 0


class TestPrivacyAndRisk:
    def test_exact_privacy_loss_bounded_by_theorem(self, channel_setup):
        _, grid, gibbs, channel = channel_setup
        measured = channel.exact_privacy_loss()
        claimed = gibbs.privacy_epsilon(n=2)
        assert measured <= claimed + 1e-12

    def test_privacy_loss_positive(self, channel_setup):
        _, _, _, channel = channel_setup
        assert channel.exact_privacy_loss() > 0

    def test_expected_risk(self, channel_setup):
        task, _, _, channel = channel_setup

        def risk(sample, theta):
            return task.true_risk(theta)

        value = channel.expected_risk(risk)
        assert 0.0 <= value <= 1.0

    def test_expected_risk_improves_with_temperature(self):
        task = BernoulliTask(p=0.8)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        law = DiscreteDistribution([0, 1], [0.2, 0.8])

        def risk(sample, theta):
            return task.true_risk(theta)

        values = []
        for temperature in [0.1, 5.0, 50.0]:
            gibbs = GibbsPosterior(grid, temperature)
            channel = LearningChannel(law, n=3, posterior_map=gibbs.posterior)
            values.append(channel.expected_risk(risk))
        assert values[0] > values[1] > values[2]

    def test_leakage_summary_keys(self, channel_setup):
        _, _, _, channel = channel_setup
        summary = channel.leakage_summary()
        assert set(summary) == {
            "n",
            "num_samples",
            "num_predictors",
            "mutual_information",
            "sample_entropy",
            "leakage_fraction",
            "exact_privacy_loss",
        }
        assert 0.0 <= summary["leakage_fraction"] <= 1.0
