"""Integration tests: full pipelines across modules, one per experiment."""

import numpy as np
import pytest

from repro import (
    BernoulliTask,
    DiscreteDistribution,
    ExactPrivacyAuditor,
    GibbsEstimator,
    GibbsPosterior,
    LearningChannel,
    PredictorGrid,
    PrivacyAccountant,
    PrivacySpec,
    minimize_tradeoff,
    tradeoff_curve,
)
from repro.learning import empirical_risk_matrix


class TestEndToEndGibbsLearning:
    """E1+E4 in miniature: train privately, audit exactly, measure leakage."""

    def test_full_pipeline(self):
        task = BernoulliTask(p=0.8)
        n = 3
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 4)
        estimator = GibbsEstimator.from_privacy(grid, epsilon=1.0, expected_sample_size=n)

        # 1. Exact privacy audit over the whole {0,1}^3 universe.
        auditor = ExactPrivacyAuditor(estimator.output_distribution)
        audit = auditor.audit([0, 1], n=n, claimed_epsilon=1.0)
        assert audit.satisfied

        # 2. The same posterior map as an information channel.
        law = DiscreteDistribution([0, 1], [0.2, 0.8])
        channel = LearningChannel(law, n=n, posterior_map=estimator.gibbs.posterior)
        summary = channel.leakage_summary()
        assert summary["exact_privacy_loss"] <= 1.0 + 1e-12
        assert summary["mutual_information"] <= summary["sample_entropy"]

        # 3. Utility: released predictor beats the prior on true risk.
        sample = list(task.sample(n, random_state=0))
        posterior = estimator.output_distribution(sample)
        posterior_risk = sum(p * task.true_risk(t) for t, p in posterior)
        prior_risk = float(
            np.mean([task.true_risk(t) for t in grid.thetas])
        )
        assert posterior_risk <= prior_risk + 1e-9

    def test_budgeted_repeated_learning(self):
        """Accountant + Gibbs releases: basic composition enforced."""
        task = BernoulliTask(p=0.6)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        estimator = GibbsEstimator.from_privacy(grid, 0.4, expected_sample_size=20)
        accountant = PrivacyAccountant(budget=PrivacySpec(1.0))
        sample = list(task.sample(20, random_state=1))
        released = [
            accountant.run(estimator, sample, random_state=i) for i in range(2)
        ]
        assert all(theta in grid.thetas for theta in released)
        from repro.exceptions import PrivacyBudgetError

        with pytest.raises(PrivacyBudgetError):
            accountant.run(estimator, sample, random_state=2)


class TestTradeoffMatchesChannel:
    """E5/E6: the variational optimum agrees with the direct Gibbs channel
    built from its own optimal prior."""

    def test_fixed_point_consistency(self):
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        datasets = [(a, b) for a in (0, 1) for b in (0, 1)]
        risks = empirical_risk_matrix(
            lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
        )
        p = task.p
        source = np.array([(1 - p) ** 2, (1 - p) * p, p * (1 - p), p**2])

        epsilon = 2.0
        result = minimize_tradeoff(
            source, risks, epsilon, dataset_labels=datasets, theta_labels=grid.thetas
        )

        # Rebuild the Gibbs channel from the optimal prior and compare MI.
        gibbs = GibbsPosterior(
            grid, temperature=epsilon, prior=result.optimal_prior
        )
        law = DiscreteDistribution([0, 1], [1 - p, p])
        channel = LearningChannel(law, n=2, posterior_map=gibbs.posterior)
        assert channel.mutual_information() == pytest.approx(
            result.mutual_information, abs=1e-6
        )

    def test_curve_brackets_extremes(self):
        task = BernoulliTask(p=0.75)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        datasets = [(a, b) for a in (0, 1) for b in (0, 1)]
        risks = empirical_risk_matrix(
            lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
        )
        p = task.p
        source = np.array([(1 - p) ** 2, (1 - p) * p, p * (1 - p), p**2])
        points = tradeoff_curve(source, risks, [1e-3, 1.0, 1e3])
        # ε→0: no information; ε→∞: ERM risk.
        assert points[0].mutual_information < 1e-5
        erm_risk = float(source @ risks.min(axis=1))
        assert points[-1].expected_empirical_risk == pytest.approx(
            erm_risk, abs=1e-4
        )


class TestExponentialMechanismIsGibbs:
    """Section 3's identification, end to end through the two code paths."""

    def test_output_laws_identical(self):
        from repro.mechanisms import ExponentialMechanism

        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 6)
        sample = list(task.sample(10, random_state=3))
        temperature = 4.0

        gibbs = GibbsPosterior(grid, temperature)
        gibbs_law = gibbs.posterior(sample)

        # Exponential mechanism with quality = -R̂ and raw scale λ.
        mech = ExponentialMechanism(
            lambda d, u: -float(np.mean([abs(u - z) for z in d])),
            outputs=grid.thetas,
            sensitivity=1.0 / len(sample),
            epsilon=temperature,
            calibrated=False,
        )
        mech_law = mech.output_distribution(sample)
        assert mech_law.probabilities == pytest.approx(
            gibbs_law.probabilities, abs=1e-12
        )

    def test_privacy_guarantees_agree(self):
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 6)
        n, temperature = 10, 4.0
        gibbs = GibbsPosterior(grid, temperature)
        # Theorem 4.1: 2λΔ(R̂) with Δ(R̂) = 1/n; Theorem 2.5: 2εΔq with
        # q = -R̂ so Δq = 1/n and ε = λ. Both give 2λ/n.
        assert gibbs.privacy_epsilon(n) == pytest.approx(2 * temperature / n)
