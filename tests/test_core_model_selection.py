"""Unit tests for PAC-Bayes model selection (private and non-private)."""

import numpy as np
import pytest

from repro.core import (
    private_gibbs_with_selection,
    select_temperature_by_bound,
    select_temperature_private,
)
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid

TEMPERATURES = [1.0, 4.0, 16.0, 64.0]


@pytest.fixture
def setup():
    task = BernoulliTask(p=0.8)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 9)
    sample = list(task.sample(200, random_state=0))
    return task, grid, sample


class TestBoundSelection:
    def test_returns_candidate(self, setup):
        _, grid, sample = setup
        result = select_temperature_by_bound(grid, sample, TEMPERATURES)
        assert result.temperature in TEMPERATURES
        assert not result.private

    def test_selected_bound_is_minimal(self, setup):
        _, grid, sample = setup
        result = select_temperature_by_bound(grid, sample, TEMPERATURES)
        assert result.bound_value == min(result.per_candidate.values())

    def test_certificate_covers_truth(self, setup):
        """The union-bounded certificate at the selected λ must cover the
        true Gibbs risk — the whole point of the δ/k correction."""
        task, grid, sample = setup
        from repro.core.pac_bayes import gibbs_minimizer
        from repro.distributions import DiscreteDistribution

        result = select_temperature_by_bound(
            grid, sample, TEMPERATURES, delta=0.05
        )
        prior = DiscreteDistribution.uniform(grid.thetas)
        risks = grid.empirical_risks(sample)
        posterior = gibbs_minimizer(prior, risks, result.temperature)
        true_risk = sum(p * task.true_risk(t) for t, p in posterior)
        assert result.bound_value >= true_risk

    def test_extreme_temperatures_not_selected(self, setup):
        """Bound selection balances fit vs KL: with plenty of data the
        minimizer is an interior candidate, not the tiniest λ."""
        _, grid, sample = setup
        candidates = [0.01, 1.0, 4.0, 14.0, 64.0, 100_000.0]
        result = select_temperature_by_bound(grid, sample, candidates)
        assert result.temperature not in (0.01, 100_000.0)

    def test_rejects_empty_candidates(self, setup):
        _, grid, sample = setup
        with pytest.raises(ValidationError):
            select_temperature_by_bound(grid, sample, [])


class TestPrivateSelection:
    def test_returns_candidate_with_privacy(self, setup):
        _, grid, sample = setup
        result = select_temperature_private(
            grid, sample, TEMPERATURES, epsilon=1.0, random_state=1
        )
        assert result.temperature in TEMPERATURES
        assert result.private
        assert result.privacy.epsilon == pytest.approx(1.0)

    def test_concentrates_on_low_free_energy_at_large_epsilon(self, setup):
        _, grid, sample = setup
        draws = [
            select_temperature_private(
                grid, sample, TEMPERATURES, epsilon=2000.0, random_state=seed
            ).temperature
            for seed in range(10)
        ]
        best = min(
            TEMPERATURES,
            key=lambda lam: select_temperature_private(
                grid, sample, TEMPERATURES, epsilon=1.0, random_state=0
            ).per_candidate[lam],
        )
        assert all(d == best for d in draws)

    def test_near_uniform_at_tiny_epsilon(self, setup):
        _, grid, sample = setup
        draws = [
            select_temperature_private(
                grid, sample, TEMPERATURES, epsilon=1e-6, random_state=seed
            ).temperature
            for seed in range(40)
        ]
        assert len(set(draws)) >= 3  # effectively random over candidates


class TestPipeline:
    def test_end_to_end(self, setup):
        _, grid, sample = setup
        result = private_gibbs_with_selection(
            grid,
            sample,
            TEMPERATURES,
            selection_epsilon=0.5,
            release_epsilon_budget=1.0,
            random_state=2,
        )
        assert result.theta in grid.thetas
        assert result.privacy.epsilon == pytest.approx(1.5)

    def test_unaffordable_candidates_excluded(self, setup):
        """λ=64 on n=200 costs 2·64/200 = 0.64 > 0.5: must be excluded."""
        _, grid, sample = setup
        result = private_gibbs_with_selection(
            grid,
            sample,
            TEMPERATURES,
            selection_epsilon=0.5,
            release_epsilon_budget=0.5,
            random_state=3,
        )
        assert result.temperature in (1.0, 4.0, 16.0)

    def test_raises_when_nothing_affordable(self, setup):
        _, grid, sample = setup
        with pytest.raises(ValidationError, match="affordable"):
            private_gibbs_with_selection(
                grid,
                sample,
                [1_000_000.0],
                selection_epsilon=0.5,
                release_epsilon_budget=0.1,
                random_state=4,
            )

    def test_released_predictor_is_useful(self, setup):
        task, grid, sample = setup
        result = private_gibbs_with_selection(
            grid,
            sample,
            TEMPERATURES,
            selection_epsilon=1.0,
            release_epsilon_budget=2.0,
            random_state=5,
        )
        # Better than a uniformly random grid predictor on true risk.
        random_risk = float(np.mean([task.true_risk(t) for t in grid.thetas]))
        assert task.true_risk(result.theta) <= random_risk
