"""Unit tests for the dplint static-analysis engine and its rules.

Each rule is exercised on at least one violating and one clean synthetic
fixture via :func:`analyze_source` with a virtual package path; the final
test (marked ``lint``) runs the full analyzer over the installed ``repro``
tree and asserts it is violation-free.
"""

import json
import pathlib
import textwrap

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    Finding,
    RuleConfig,
    Severity,
    all_rules,
    analyze_paths,
    analyze_source,
    get_rule,
)
from repro.analysis.pragmas import PRAGMA_RULE_ID, scan_pragmas
from repro.analysis.reporting import (
    format_json,
    format_report,
    format_rule_catalog,
    format_text,
)
from repro.exceptions import ValidationError

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def run(source: str, path: str, config: AnalysisConfig | None = None):
    """Analyze dedented ``source`` as if it lived at ``path``."""
    return analyze_source(textwrap.dedent(source), path, config=config)


def rule_findings(report, rule_id: str) -> list:
    """Findings of one rule only, so fixtures can ignore other rules."""
    return [f for f in report.findings if f.rule_id == rule_id]


class TestRegistry:
    def test_dp_rules_registered(self):
        ids = sorted(rule.id for rule in all_rules())
        assert ids == [f"DPL{k:03d}" for k in range(1, 13)]

    def test_lookup_by_id_and_name(self):
        assert get_rule("DPL001") is get_rule("rng-discipline")

    def test_lookup_unknown(self):
        with pytest.raises(ValidationError):
            get_rule("DPL042")

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.description
            assert rule.rationale
            assert isinstance(rule.default_severity, Severity)


class TestRngDiscipline:
    """DPL001: no numpy.random.* / random.* calls in scoped packages."""

    def test_flags_numpy_random_call(self):
        report = run(
            """
            import numpy as np

            def release(scale):
                rng = np.random.default_rng()
                return rng.uniform() * scale
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL001")
        assert len(findings) == 1
        assert "numpy.random.default_rng" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_flags_from_import_alias(self):
        report = run(
            """
            from numpy import random as nr

            def release(scale):
                return nr.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
        )
        assert len(rule_findings(report, "DPL001")) == 1

    def test_flags_stdlib_random(self):
        report = run(
            """
            import random

            def release(scale):
                return random.random() * scale
            """,
            "privacy/snippet.py",
        )
        assert len(rule_findings(report, "DPL001")) == 1

    def test_clean_injected_generator(self):
        report = run(
            """
            from repro.utils.validation import check_random_state

            def release(scale, random_state=None):
                rng = check_random_state(random_state)
                return rng.uniform() * scale
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL001") == []

    def test_out_of_scope_package_not_flagged(self):
        report = run(
            """
            import numpy as np

            def helper():
                return np.random.default_rng()
            """,
            "experiments/snippet.py",
        )
        assert rule_findings(report, "DPL001") == []


class TestValidatePrivacyParams:
    """DPL002: epsilon/delta/sensitivity must hit a validator."""

    def test_flags_unvalidated_epsilon(self):
        report = run(
            """
            class Mech:
                def __init__(self, epsilon):
                    self.epsilon = epsilon
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL002")
        assert len(findings) == 1
        assert "epsilon" in findings[0].message

    def test_flags_each_missing_parameter(self):
        report = run(
            """
            def release(values, epsilon, sensitivity):
                \"\"\"Doc.

                Parameters
                ----------
                values, epsilon, sensitivity : object
                \"\"\"
                return sum(values)
            """,
            "mechanisms/snippet.py",
        )
        messages = [f.message for f in rule_findings(report, "DPL002")]
        assert len(messages) == 2
        assert any("epsilon" in m for m in messages)
        assert any("sensitivity" in m for m in messages)

    def test_clean_check_positive(self):
        report = run(
            """
            from repro.utils.validation import check_positive

            class Mech:
                def __init__(self, epsilon):
                    self.epsilon = check_positive(epsilon, name="epsilon")
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL002") == []

    def test_clean_privacy_spec(self):
        report = run(
            """
            from repro.mechanisms.base import PrivacySpec

            class Mech:
                def __init__(self, epsilon):
                    self.spec = PrivacySpec(epsilon=epsilon)
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL002") == []

    def test_private_function_exempt(self):
        report = run(
            """
            def _helper(epsilon):
                return epsilon * 2
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL002") == []


class TestNoNaiveSampling:
    """DPL003: heavy-tailed draws only in the sanctioned sampler modules."""

    def test_flags_direct_laplace_method(self):
        report = run(
            """
            def add_noise(rng, value, scale):
                return value + rng.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL003")
        assert len(findings) == 1
        assert ".laplace()" in findings[0].message

    def test_flags_log_uniform_idiom(self):
        report = run(
            """
            import numpy as np

            def add_noise(rng, scale):
                return -scale * np.log(rng.uniform())
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL003")
        assert len(findings) == 1
        assert "log(uniform" in findings[0].message

    def test_sanctioned_module_exempt(self):
        report = run(
            """
            def sample(rng, scale):
                return rng.laplace(0.0, scale)
            """,
            "distributions/continuous.py",
        )
        assert rule_findings(report, "DPL003") == []

    def test_clean_noise_law_call(self):
        report = run(
            """
            from repro.distributions.continuous import LaplaceNoise

            def add_noise(value, scale, random_state=None):
                noise = LaplaceNoise(scale).sample(random_state=random_state)
                return value + noise
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL003") == []


class TestNoSilentExcept:
    """DPL004: no bare or swallowing exception handlers."""

    def test_flags_bare_except(self):
        report = run(
            """
            def release(value):
                try:
                    return value + 1
                except:
                    raise RuntimeError("failed")
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL004")
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_flags_swallowed_exception(self):
        report = run(
            """
            def release(value):
                try:
                    value = value + 1
                except ValueError:
                    pass
                return value
            """,
            "privacy/snippet.py",
        )
        findings = rule_findings(report, "DPL004")
        assert len(findings) == 1
        assert "swallow" in findings[0].message

    def test_clean_handler_that_reraises(self):
        report = run(
            """
            def release(value):
                try:
                    return value + 1
                except ValueError as error:
                    raise RuntimeError("release failed") from error
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL004") == []


class TestExplicitExports:
    """DPL005: __init__.py declares a matching literal __all__."""

    def test_flags_missing_all(self):
        report = run(
            """
            from repro.mechanisms.base import Mechanism
            """,
            "mechanisms/__init__.py",
        )
        findings = rule_findings(report, "DPL005")
        assert len(findings) == 1
        assert "__all__" in findings[0].message

    def test_flags_stale_entry(self):
        report = run(
            """
            def release():
                \"\"\"Doc.\"\"\"

            __all__ = ["release", "vanished"]
            """,
            "mechanisms/__init__.py",
        )
        findings = rule_findings(report, "DPL005")
        assert len(findings) == 1
        assert "vanished" in findings[0].message
        assert "stale" in findings[0].message

    def test_flags_unlisted_public_name(self):
        report = run(
            """
            def release():
                \"\"\"Doc.\"\"\"

            def audit():
                \"\"\"Doc.\"\"\"

            __all__ = ["release"]
            """,
            "mechanisms/__init__.py",
        )
        findings = rule_findings(report, "DPL005")
        assert len(findings) == 1
        assert "audit" in findings[0].message

    def test_flags_duplicate_entry(self):
        report = run(
            """
            def release():
                \"\"\"Doc.\"\"\"

            __all__ = ["release", "release"]
            """,
            "mechanisms/__init__.py",
        )
        findings = rule_findings(report, "DPL005")
        assert len(findings) == 1
        assert "more than once" in findings[0].message

    def test_clean_matching_all(self):
        report = run(
            """
            \"\"\"Package doc.\"\"\"

            from repro.mechanisms.base import Mechanism

            __version__ = "1.0"

            __all__ = ["Mechanism", "__version__"]
            """,
            "mechanisms/__init__.py",
        )
        assert rule_findings(report, "DPL005") == []

    def test_regular_module_exempt(self):
        report = run(
            """
            def release():
                \"\"\"Doc.\"\"\"
            """,
            "mechanisms/laplace.py",
        )
        assert rule_findings(report, "DPL005") == []


class TestDocstringParameters:
    """DPL006: public API has docstrings; multi-param defs a Parameters
    section."""

    def test_flags_missing_docstring(self):
        report = run(
            """
            def release(value):
                return value
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL006")
        assert len(findings) == 1
        assert "no docstring" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_flags_missing_parameters_section(self):
        report = run(
            """
            def release(value, epsilon):
                \"\"\"Release value privately.\"\"\"
                return value
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL006")
        assert len(findings) == 1
        assert "Parameters" in findings[0].message

    def test_init_params_documented_on_class(self):
        report = run(
            """
            class Mech:
                def __init__(self, query, epsilon):
                    self.query = query
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, "DPL006")
        assert len(findings) == 1
        assert "Mech" in findings[0].message

    def test_clean_with_parameters_section(self):
        report = run(
            """
            def release(value, epsilon):
                \"\"\"Release value privately.

                Parameters
                ----------
                value:
                    The true value.
                epsilon:
                    Privacy parameter.
                \"\"\"
                return value
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL006") == []

    def test_property_needs_only_docstring(self):
        report = run(
            """
            class Mech:
                \"\"\"Doc.\"\"\"

                @property
                def scale(self):
                    \"\"\"Noise scale.\"\"\"
                    return 1.0
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL006") == []

    def test_single_param_function_needs_only_docstring(self):
        report = run(
            """
            def release(value):
                \"\"\"Release value.\"\"\"
                return value
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL006") == []


class TestPragmas:
    VIOLATION = """
        def add_noise(rng, value, scale):
            return value + rng.laplace(0.0, scale)  # dplint: disable=DPL003 -- test fixture
        """

    def test_pragma_suppresses_finding(self):
        report = run(self.VIOLATION, "mechanisms/snippet.py")
        assert rule_findings(report, "DPL003") == []
        assert report.suppressed_count == 1
        assert rule_findings(report, PRAGMA_RULE_ID) == []

    def test_pragma_by_rule_name(self):
        report = run(
            """
            def add_noise(rng, value, scale):
                return value + rng.laplace(0.0, scale)  # dplint: disable=no-naive-sampling -- fixture
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL003") == []
        assert report.suppressed_count == 1

    def test_disable_all(self):
        report = run(
            """
            def add_noise(rng, value, scale):
                return value + rng.laplace(0.0, scale)  # dplint: disable=all -- fixture
            """,
            "mechanisms/snippet.py",
        )
        assert rule_findings(report, "DPL003") == []

    def test_missing_justification_reported(self):
        report = run(
            """
            def add_noise(rng, value, scale):
                return value + rng.laplace(0.0, scale)  # dplint: disable=DPL003
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, PRAGMA_RULE_ID)
        assert len(findings) == 1
        assert "justification" in findings[0].message
        # The suppression itself still works.
        assert rule_findings(report, "DPL003") == []

    def test_justification_optional_when_configured(self):
        config = AnalysisConfig(require_pragma_justification=False)
        report = run(
            """
            def add_noise(rng, value, scale):
                return value + rng.laplace(0.0, scale)  # dplint: disable=DPL003
            """,
            "mechanisms/snippet.py",
            config,
        )
        assert rule_findings(report, PRAGMA_RULE_ID) == []

    def test_unknown_rule_reported(self):
        report = run(
            """
            x = 1  # dplint: disable=DPL042 -- never existed
            """,
            "mechanisms/snippet.py",
        )
        findings = rule_findings(report, PRAGMA_RULE_ID)
        assert len(findings) == 1
        assert "DPL042" in findings[0].message

    def test_pragma_in_string_literal_ignored(self):
        index = scan_pragmas('text = "# dplint: disable=all"\n')
        assert index.pragmas == {}

    def test_pragma_only_covers_its_line(self):
        report = run(
            """
            # dplint: disable=DPL003 -- wrong line
            def add_noise(rng, value, scale):
                return value + rng.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
        )
        assert len(rule_findings(report, "DPL003")) == 1


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        report = run("def broken(:\n", "mechanisms/snippet.py")
        assert len(report.findings) == 1
        assert report.findings[0].rule_id == "DPL999"
        assert report.exit_code == 1

    def test_clean_report(self):
        report = run("x = 1\n", "mechanisms/snippet.py")
        assert report.ok
        assert report.exit_code == 0
        assert report.files_checked == 1

    def test_select_runs_only_named_rules(self):
        config = AnalysisConfig(select=frozenset({"DPL004"}))
        report = run(
            """
            import numpy as np

            def release(value):
                try:
                    return np.random.default_rng().uniform()
                except ValueError:
                    pass
            """,
            "mechanisms/snippet.py",
            config,
        )
        assert {f.rule_id for f in report.findings} == {"DPL004"}

    def test_ignore_wins_over_select(self):
        config = AnalysisConfig(
            select=frozenset({"DPL001"}), ignore=frozenset({"DPL001"})
        )
        report = run(
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
            "mechanisms/snippet.py",
            config,
        )
        assert report.findings == []

    def test_severity_override(self):
        config = AnalysisConfig(
            rules={"DPL003": RuleConfig(severity=Severity.INFO)}
        )
        report = run(
            """
            def add_noise(rng, scale):
                return rng.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
            config,
        )
        findings = rule_findings(report, "DPL003")
        assert findings and findings[0].severity is Severity.INFO

    def test_rule_option_override(self):
        config = AnalysisConfig(
            rules={"DPL001": RuleConfig(options={"packages": ("elsewhere",)})}
        )
        report = run(
            """
            import numpy as np

            rng = np.random.default_rng()
            """,
            "mechanisms/snippet.py",
            config,
        )
        assert rule_findings(report, "DPL001") == []

    def test_findings_sorted_by_location(self):
        report = run(
            """
            def second(rng, scale):
                return rng.gumbel(0.0, scale)

            def first(rng, scale):
                return rng.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
        )
        lines = [f.line for f in report.findings]
        assert lines == sorted(lines)

    def test_analyze_paths_rejects_missing(self):
        with pytest.raises(ValidationError):
            analyze_paths(["/no/such/path/anywhere"])

    def test_counts(self):
        report = run(
            """
            def add_noise(rng, scale):
                return rng.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
        )
        assert report.count_by_rule()["DPL003"] >= 1
        assert report.count_by_severity()["error"] >= 1


class TestReporting:
    def _report(self):
        return run(
            """
            def add_noise(rng, scale):
                \"\"\"Doc.

                Parameters
                ----------
                rng, scale : object
                \"\"\"
                return rng.laplace(0.0, scale)
            """,
            "mechanisms/snippet.py",
        )

    def test_text_format(self):
        text = format_text(self._report())
        assert "mechanisms/snippet.py:" in text
        assert "DPL003" in text
        assert "finding(s)" in text

    def test_json_format_round_trips(self):
        payload = json.loads(format_json(self._report()))
        assert payload["files_checked"] == 1
        assert payload["findings"][0]["rule_id"] == "DPL003"
        assert payload["findings"][0]["severity"] == "error"

    def test_format_report_rejects_unknown(self):
        with pytest.raises(ValidationError):
            format_report(self._report(), "yaml")

    def test_rule_catalog_lists_all(self):
        catalog = format_rule_catalog()
        for rule in all_rules():
            assert rule.id in catalog

    def test_finding_str_is_location_addressed(self):
        finding = Finding(
            path="a.py",
            line=3,
            column=4,
            rule_id="DPL001",
            rule_name="rng-discipline",
            severity=Severity.ERROR,
            message="boom",
        )
        assert str(finding) == "a.py:3:4: DPL001 [rng-discipline] error: boom"


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_from_name(self):
        assert Severity.from_name("error") is Severity.ERROR

    def test_from_name_unknown(self):
        with pytest.raises(ValueError):
            Severity.from_name("catastrophic")


@pytest.mark.lint
def test_repro_source_tree_is_violation_free():
    """The shipped library passes its own linter modulo the committed
    baseline — the PR gate. Stale baseline entries fail too: a paid-off
    debt must be removed so regressions cannot hide behind it."""
    import repro
    from repro.analysis import Baseline, apply_baseline

    package_dir = str(next(iter(repro.__path__)))
    benchmarks_dir = REPO_ROOT / "benchmarks"
    report = Analyzer().analyze_paths([package_dir, str(benchmarks_dir)])
    baseline = Baseline.load(REPO_ROOT / "benchmarks" / "dplint_baseline.json")
    report = apply_baseline(report, baseline)
    details = "\n".join(str(f) for f in report.findings)
    assert report.ok, f"dplint findings in the source tree:\n{details}"
    assert not report.stale_baseline, (
        "stale baseline entries (fixed? remove them):\n"
        + "\n".join(report.stale_baseline)
    )
    assert report.files_checked > 50
