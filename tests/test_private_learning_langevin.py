"""Tests for the regularized exponential mechanism (batched MALA ERM).

Covers the `release_many` stream-equivalence contract for the Langevin
mechanism specifically (batch ≡ sequential bit-for-bit, tracing on/off
identity, aggregated ledger ``count``), the classifier surface that makes
it a drop-in peer of the perturbation baselines, the Theorem 4.1
temperature calibration, and the audit-registry sabotage teeth.
"""

import numpy as np
import pytest

from repro.exceptions import DPAuditError, ValidationError
from repro.learning import LogisticLoss, TwoGaussiansTask
from repro.learning.losses import HingeLoss, TruncatedLoss
from repro.observability import ledger_totals, tracing
from repro.private_learning import (
    GibbsERMClassifier,
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
    RegularizedExponentialMechanism,
)
from repro.testing import assert_dp, build_audit


def _loss():
    return TruncatedLoss(LogisticLoss(), ceiling=2.0)


@pytest.fixture
def dataset():
    task = TwoGaussiansTask([1.38, 0.58], clip_features=True)
    x, y = task.sample(120, random_state=0)
    return (x, y)


def _mechanism(epsilon=1.0, steps=40):
    return RegularizedExponentialMechanism(_loss(), 0.1, epsilon, steps=steps)


class TestReleaseManyContract:
    def test_batch_equals_sequential_releases(self, dataset):
        mechanism = _mechanism()
        batch = mechanism.release_many(dataset, 6, np.random.default_rng(99))
        rng = np.random.default_rng(99)
        serial = np.stack(
            [mechanism.release(dataset, rng) for _ in range(6)]
        )
        assert np.array_equal(np.asarray(batch), serial)

    def test_single_draw_matches_release(self, dataset):
        mechanism = _mechanism()
        batch = mechanism.release_many(dataset, 1, np.random.default_rng(5))
        single = mechanism.release(dataset, np.random.default_rng(5))
        assert np.array_equal(np.asarray(batch)[0], single)

    def test_tracing_leaves_batch_bit_identical(self, dataset):
        mechanism = _mechanism()
        untraced = mechanism.release_many(dataset, 4, np.random.default_rng(7))
        with tracing() as tracer:
            traced = mechanism.release_many(
                dataset, 4, np.random.default_rng(7)
            )
        assert np.array_equal(np.asarray(untraced), np.asarray(traced))
        (event,) = tracer.events
        assert event.count == 4
        assert event.epsilon == mechanism.epsilon
        assert tracer.metrics.counter("mechanism.releases") == 4

    def test_ledger_totals_match_serial(self, dataset):
        mechanism = _mechanism()
        with tracing() as batch_tracer:
            mechanism.release_many(dataset, 3, np.random.default_rng(1))
        with tracing() as serial_tracer:
            rng = np.random.default_rng(1)
            for _ in range(3):
                mechanism.release(dataset, rng)
        assert len(batch_tracer.events) == 1
        assert len(serial_tracer.events) == 3
        assert ledger_totals(
            batch_tracer.events, kinds=("release",)
        ) == ledger_totals(serial_tracer.events, kinds=("release",))

    def test_batch_shape_and_finiteness(self, dataset):
        samples = np.asarray(
            _mechanism().release_many(dataset, 9, np.random.default_rng(2))
        )
        assert samples.shape == (9, 2)
        assert np.all(np.isfinite(samples))


class TestCalibrationAndValidation:
    def test_temperature_is_theorem_41(self):
        mechanism = _mechanism(epsilon=2.0)
        # λ = ε·n/(2C) with loss range C = 2.0.
        assert mechanism.temperature_for(100) == pytest.approx(
            2.0 * 100 / (2.0 * 2.0)
        )

    def test_rejects_unbounded_loss(self):
        with pytest.raises(ValidationError, match="bounded"):
            RegularizedExponentialMechanism(LogisticLoss(), 0.1, 1.0)

    def test_rejects_oversized_features(self):
        mechanism = _mechanism()
        x = np.array([[3.0, 0.0], [0.0, 1.0]])
        y = np.array([1, -1])
        with pytest.raises(ValidationError, match="‖x‖₂ ≤ 1"):
            mechanism.release((x, y), np.random.default_rng(0))

    def test_rejects_bad_constructor_arguments(self):
        with pytest.raises(ValidationError):
            RegularizedExponentialMechanism(_loss(), 0.0, 1.0)
        with pytest.raises(ValidationError):
            RegularizedExponentialMechanism(_loss(), 0.1, 1.0, steps=0)
        with pytest.raises(ValidationError):
            RegularizedExponentialMechanism(_loss(), 0.1, 1.0, step_size=0.0)

    def test_nonsmooth_bounded_loss_accepted(self, dataset):
        mechanism = RegularizedExponentialMechanism(
            TruncatedLoss(HingeLoss(), ceiling=2.0), 0.1, 1.0, steps=30
        )
        theta = mechanism.release(dataset, np.random.default_rng(3))
        assert np.all(np.isfinite(theta))

    def test_acceptance_rate_in_healthy_band(self, dataset):
        mechanism = _mechanism(steps=80)
        mechanism.release_many(dataset, 32, np.random.default_rng(4))
        assert 0.3 < mechanism.last_acceptance_rate < 0.95


class TestGibbsERMClassifier:
    def test_drop_in_constructor_and_surface(self, dataset):
        """Same (loss, regularization, epsilon) signature and fitted
        surface as the perturbation baselines."""
        x, y = dataset
        classifiers = [
            GibbsERMClassifier(_loss(), 0.1, 2.0),
            OutputPerturbationClassifier(LogisticLoss(), 0.1, 2.0),
            ObjectivePerturbationClassifier(LogisticLoss(), 0.1, 2.0),
        ]
        for classifier in classifiers:
            fitted = classifier.fit(x, y, random_state=11)
            assert fitted is classifier
            assert classifier.coefficients.shape == (2,)
            assert classifier.predict(x).shape == y.shape
            assert 0.0 <= classifier.accuracy(x, y) <= 1.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(ValidationError, match="not been fitted"):
            GibbsERMClassifier(_loss(), 0.1, 1.0).predict([[0.5, 0.5]])

    def test_accuracy_improves_with_epsilon(self, dataset):
        """The privacy/utility trade-off: more budget, better fit."""
        x, y = dataset

        def mean_accuracy(epsilon):
            scores = [
                GibbsERMClassifier(_loss(), 0.05, epsilon, steps=80)
                .fit(x, y, random_state=seed)
                .accuracy(x, y)
                for seed in range(5)
            ]
            return float(np.mean(scores))

        assert mean_accuracy(20.0) > mean_accuracy(0.01) + 0.1

    def test_competitive_with_baselines_at_small_epsilon(self):
        """At small ε in d = 16 the posterior mean pull of the sampled
        mechanism should at least match output perturbation's accuracy."""
        mean = np.zeros(16)
        mean[0], mean[1] = 1.38, 0.58
        task = TwoGaussiansTask(mean, clip_features=True)
        x, y = task.sample(800, random_state=7)
        gibbs = np.mean(
            [
                GibbsERMClassifier(_loss(), 0.05, 0.1)
                .fit(x, y, random_state=seed)
                .accuracy(x, y)
                for seed in range(3)
            ]
        )
        output = np.mean(
            [
                OutputPerturbationClassifier(LogisticLoss(), 0.05, 0.1)
                .fit(x, y, random_state=seed)
                .accuracy(x, y)
                for seed in range(3)
            ]
        )
        assert gibbs >= output - 0.02


class TestAuditRegistryTeeth:
    @pytest.mark.statistical
    def test_inflated_temperature_fails_audit(self):
        prepared = build_audit("langevin", epsilon=1.0, n=3, noise_scale=0.2)
        with pytest.raises(DPAuditError):
            assert_dp(
                prepared.mechanism,
                prepared.pair,
                epsilon=1.0,
                name=prepared.name,
                kind=prepared.kind,
                output_key=prepared.output_key,
                n_samples=8_000,
            )
