"""Unit tests for the mutual information routes (exact, plug-in, KSG)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.information import (
    mutual_information_from_joint,
    mutual_information_histogram,
    mutual_information_ksg,
)


class TestExactMI:
    def test_independent_is_zero(self):
        joint = np.outer([0.3, 0.7], [0.4, 0.6])
        assert mutual_information_from_joint(joint) == pytest.approx(0.0)

    def test_perfectly_correlated_is_entropy(self):
        joint = np.diag([0.5, 0.5])
        assert mutual_information_from_joint(joint) == pytest.approx(np.log(2))

    def test_binary_symmetric_channel(self):
        # X ~ Bern(1/2) through a BSC with flip probability f:
        # I = log2 - H(f) in nats.
        f = 0.1
        joint = 0.5 * np.array([[1 - f, f], [f, 1 - f]])
        expected = np.log(2) + f * np.log(f) + (1 - f) * np.log(1 - f)
        assert mutual_information_from_joint(joint) == pytest.approx(expected)

    def test_never_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            joint = rng.dirichlet(np.ones(12)).reshape(3, 4)
            assert mutual_information_from_joint(joint) >= 0.0

    def test_bounded_by_marginal_entropies(self):
        from repro.information import entropy

        rng = np.random.default_rng(1)
        joint = rng.dirichlet(np.ones(12)).reshape(3, 4)
        mi = mutual_information_from_joint(joint)
        assert mi <= entropy(joint.sum(axis=1)) + 1e-9
        assert mi <= entropy(joint.sum(axis=0)) + 1e-9

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            mutual_information_from_joint([[0.5, 0.5], [0.5, 0.5]])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            mutual_information_from_joint([[1.2, -0.2], [0.0, 0.0]])


class TestHistogramMI:
    def test_identical_discrete_variables(self):
        x = np.array([0, 1, 0, 1, 1, 0] * 100)
        assert mutual_information_histogram(x, x) == pytest.approx(
            np.log(2), abs=0.01
        )

    def test_independent_variables_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, size=20_000)
        y = rng.integers(0, 2, size=20_000)
        assert mutual_information_histogram(x, y) < 0.001

    def test_continuous_with_binning(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=20_000)
        y = x + 0.1 * rng.normal(size=20_000)
        mi = mutual_information_histogram(x, y, bins=20)
        assert mi > 1.0  # strongly dependent

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            mutual_information_histogram([1, 2], [1])

    def test_matches_exact_on_known_joint(self):
        # Sample from a known joint and compare plug-in estimate to truth.
        joint = np.array([[0.4, 0.1], [0.1, 0.4]])
        exact = mutual_information_from_joint(joint)
        rng = np.random.default_rng(2)
        flat = joint.ravel()
        draws = rng.choice(4, size=100_000, p=flat)
        x, y = draws // 2, draws % 2
        estimate = mutual_information_histogram(x, y)
        assert estimate == pytest.approx(exact, abs=0.01)


class TestKSG:
    def test_independent_gaussians_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=2_000)
        y = rng.normal(size=2_000)
        assert mutual_information_ksg(x, y) < 0.05

    def test_correlated_gaussians_match_closed_form(self):
        # I(X;Y) = -0.5 log(1 - rho^2) for bivariate normal.
        rho = 0.8
        rng = np.random.default_rng(1)
        x = rng.normal(size=4_000)
        y = rho * x + np.sqrt(1 - rho**2) * rng.normal(size=4_000)
        expected = -0.5 * np.log(1 - rho**2)
        assert mutual_information_ksg(x, y, k=4) == pytest.approx(
            expected, abs=0.1
        )

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            mutual_information_ksg([1.0, 2.0], [1.0, 2.0], k=5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            mutual_information_ksg([1.0, 2.0], [1.0])

    def test_accepts_2d_inputs(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1_000, 2))
        y = x[:, :1] + 0.5 * rng.normal(size=(1_000, 1))
        assert mutual_information_ksg(x, y) > 0.2
