"""Unit tests for the exponential mechanism (Theorem 2.5)."""

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information import max_divergence
from repro.mechanisms import ExponentialMechanism
from repro.privacy import ExactPrivacyAuditor


def median_quality(dataset, candidate):
    """Quality = -(distance of candidate to the dataset median rank)."""
    return -abs(sorted(dataset)[len(dataset) // 2] - candidate)


@pytest.fixture
def mechanism() -> ExponentialMechanism:
    return ExponentialMechanism(
        median_quality,
        outputs=range(5),
        sensitivity=4.0,  # universe {0..4}: median moves by at most 4
        epsilon=1.0,
    )


class TestOutputDistribution:
    def test_is_normalized(self, mechanism):
        dist = mechanism.output_distribution([1, 2, 3])
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_favours_high_quality(self, mechanism):
        dist = mechanism.output_distribution([2, 2, 2])
        assert dist.mode() == 2

    def test_exact_exponential_form(self):
        mech = ExponentialMechanism(
            lambda d, u: float(u == d[0]),
            outputs=[0, 1],
            sensitivity=1.0,
            epsilon=2.0,
        )
        dist = mech.output_distribution([1])
        # scale = eps / (2*Δq) = 1; probabilities ∝ (e^0, e^1).
        expected = np.exp([0.0, 1.0])
        expected /= expected.sum()
        assert dist.probabilities == pytest.approx(expected)

    def test_base_measure_respected(self):
        prior = DiscreteDistribution([0, 1], [0.9, 0.1])
        mech = ExponentialMechanism(
            lambda d, u: 0.0,  # flat quality: output law = prior
            outputs=[0, 1],
            sensitivity=1.0,
            epsilon=1.0,
            base_measure=prior,
        )
        dist = mech.output_distribution([0])
        assert dist.probabilities == pytest.approx(prior.probabilities)

    def test_base_measure_support_must_match(self):
        prior = DiscreteDistribution([0, 2], [0.5, 0.5])
        with pytest.raises(ValidationError):
            ExponentialMechanism(
                lambda d, u: 0.0,
                outputs=[0, 1],
                sensitivity=1.0,
                epsilon=1.0,
                base_measure=prior,
            )


class TestPrivacy:
    def test_calibrated_guarantee_is_epsilon(self, mechanism):
        assert mechanism.epsilon == pytest.approx(1.0)

    def test_raw_parametrization_guarantee(self):
        mech = ExponentialMechanism(
            median_quality,
            outputs=range(3),
            sensitivity=2.0,
            epsilon=0.5,
            calibrated=False,
        )
        # Paper's Theorem 2.5: 2·ε·Δq
        assert mech.epsilon == pytest.approx(2 * 0.5 * 2.0)
        assert mech.scale == pytest.approx(0.5)

    def test_exact_audit_passes(self):
        mech = ExponentialMechanism(
            lambda d, u: -abs(sum(d) - u),
            outputs=range(4),
            sensitivity=1.0,
            epsilon=1.0,
        )
        auditor = ExactPrivacyAuditor(mech.output_distribution)
        report = auditor.audit([0, 1], n=3, claimed_epsilon=mech.epsilon)
        assert report.satisfied
        assert report.measured_epsilon <= mech.epsilon + 1e-12

    def test_pairwise_max_divergence_bounded(self, mechanism):
        d1 = [0, 0, 0]
        d2 = [0, 0, 4]
        p = mechanism.output_distribution(d1)
        q = mechanism.output_distribution(d2)
        assert max_divergence(p, q) <= mechanism.epsilon + 1e-12


class TestUtility:
    def test_expected_quality_improves_with_epsilon(self):
        def build(epsilon):
            return ExponentialMechanism(
                median_quality, range(5), sensitivity=4.0, epsilon=epsilon
            )

        dataset = [2, 2, 2]
        weak = build(0.1).expected_quality(dataset)
        strong = build(10.0).expected_quality(dataset)
        assert strong > weak

    def test_utility_bound_positive(self, mechanism):
        assert mechanism.utility_bound(0.05) > 0

    def test_utility_bound_rejects_bad_probability(self, mechanism):
        with pytest.raises(ValidationError):
            mechanism.utility_bound(0.0)

    def test_utility_bound_holds_empirically(self):
        mech = ExponentialMechanism(
            median_quality, range(5), sensitivity=4.0, epsilon=5.0
        )
        dataset = [2, 2, 2]
        best = max(median_quality(dataset, u) for u in range(5))
        bound = mech.utility_bound(0.05)
        dist = mech.output_distribution(dataset)
        prob_bad = sum(
            p
            for u, p in dist
            if median_quality(dataset, u) < best - bound
        )
        assert prob_bad <= 0.05 + 1e-9


class TestRelease:
    def test_reproducible(self, mechanism):
        a = mechanism.release([1, 2, 3], random_state=5)
        b = mechanism.release([1, 2, 3], random_state=5)
        assert a == b

    def test_samples_follow_distribution(self, mechanism):
        dataset = [2, 2, 2]
        dist = mechanism.output_distribution(dataset)
        rng = np.random.default_rng(0)
        draws = [mechanism.release(dataset, random_state=rng) for _ in range(20_000)]
        empirical = np.mean([d == dist.mode() for d in draws])
        assert empirical == pytest.approx(
            dist.probability_of(dist.mode()), abs=0.02
        )

    def test_rejects_empty_outputs(self):
        with pytest.raises(ValidationError):
            ExponentialMechanism(
                median_quality, outputs=[], sensitivity=1.0, epsilon=1.0
            )
