"""Tracing-equivalence suite: observability must never change behaviour.

Three guarantees, per the observability layer's design contract:

1. **Bit-identical outputs** — for every mechanism family, releasing with
   the same seed produces exactly the same output whether tracing is
   active or not (the base-class hook forwards ``random_state`` untouched
   and adds no RNG draws of its own).
2. **Silent when disabled** — with no active tracer, instrumented paths
   append nothing anywhere: no spans, no counters, no ledger events.
3. **Ledger–accountant agreement** — the privacy-ledger charge events of
   a traced run compose (basic composition) to *exactly* the ε/δ the
   :class:`PrivacyAccountant` recorded, including across a full serial
   bench-engine run whose manifest also carries per-config trace
   summaries.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.gibbs import temperature_for_privacy
from repro.exceptions import PrivacyBudgetError
from repro.experiments import BenchSpec, BenchmarkEngine
from repro.experiments.registry import Experiment
from repro.mechanisms import (
    GaussianMechanism,
    LaplaceMechanism,
    PrivacyAccountant,
    PrivacySpec,
    PrivateHistogram,
    SmoothSensitivityMedian,
    TreeAggregator,
    VectorLaplaceMechanism,
)
from repro.mechanisms.quantile import ExponentialQuantile
from repro.observability import Tracer, current, ledger_totals, tracing
from repro.privacy.local import KRandomizedResponse, UnaryEncoding
from repro.serving import ShardedAccountant
from repro.testing import AUDIT_FAMILIES, build_audit


def _released(mechanism, dataset, seed):
    """One release with a fresh generator seeded at ``seed``."""
    return mechanism.release(
        dataset, random_state=np.random.default_rng(seed)
    )


def _as_comparable(output):
    if isinstance(output, np.ndarray):
        return output.tolist()
    return output


# Mechanism families beyond the audit registry, each with a ready dataset.
_EXTRA_FAMILIES = {
    "gaussian": lambda: (
        GaussianMechanism(lambda d: float(np.sum(d)), 1.0, 1.0, 1e-6),
        [0.2, 0.5, 0.9],
    ),
    "histogram": lambda: (
        PrivateHistogram(["a", "b", "c"], 1.0),
        ["a", "a", "b", "c", "c", "c"],
    ),
    "vector-laplace": lambda: (
        VectorLaplaceMechanism(
            lambda d: np.asarray(d, dtype=float).sum(axis=0), 2, 1.0, 1.0
        ),
        [[0.1, 0.2], [0.3, 0.4]],
    ),
    "tree-aggregator": lambda: (TreeAggregator(8, 1.0), [1.0] * 8),
    "quantile": lambda: (
        ExponentialQuantile(0.0, 1.0, 0.5, 1.0),
        [0.1, 0.4, 0.6, 0.9],
    ),
    "smooth-median": lambda: (
        SmoothSensitivityMedian(0.0, 1.0, 1.0),
        [0.2, 0.4, 0.6, 0.8],
    ),
    "k-randomized-response": lambda: (
        KRandomizedResponse(["x", "y", "z"], 1.0),
        "y",
    ),
    "unary-encoding": lambda: (UnaryEncoding(["x", "y", "z"], 1.0), "z"),
}


class TestBitIdenticalOutputs:
    @pytest.mark.parametrize("family", AUDIT_FAMILIES)
    def test_audit_families_identical_with_and_without_tracing(self, family):
        prepared = build_audit(family, epsilon=1.0, n=3)
        seed = 20120330
        baseline = [
            _as_comparable(_released(prepared.mechanism, dataset, seed))
            for dataset in (prepared.pair.a, prepared.pair.b)
        ]
        with tracing() as tracer:
            traced = [
                _as_comparable(_released(prepared.mechanism, dataset, seed))
                for dataset in (prepared.pair.a, prepared.pair.b)
            ]
        assert traced == baseline
        # ... and the traced run actually recorded the releases.
        assert tracer.metrics.counter("mechanism.releases") == 2
        assert [e.kind for e in tracer.events] == ["release", "release"]

    @pytest.mark.parametrize("family", sorted(_EXTRA_FAMILIES))
    def test_extra_families_identical_with_and_without_tracing(self, family):
        mechanism, dataset = _EXTRA_FAMILIES[family]()
        seed = 424242
        baseline = _as_comparable(_released(mechanism, dataset, seed))
        with tracing() as tracer:
            traced = _as_comparable(_released(mechanism, dataset, seed))
        assert traced == baseline
        assert tracer.metrics.counter("mechanism.releases") == 1
        (event,) = tracer.events
        assert event.kind == "release"
        assert event.mechanism == type(mechanism).__name__
        assert event.epsilon == mechanism.privacy.epsilon


class TestDisabledPathIsSilent:
    def test_no_ledger_events_without_tracer(self):
        assert current() is None
        mechanism = LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, 1.0)
        accountant = PrivacyAccountant(PrivacySpec(epsilon=5.0))
        accountant.run(mechanism, [1.0, 2.0], random_state=0)
        temperature_for_privacy(1.0, 1.0, 10)
        # Nothing was recorded anywhere: a tracer opened *afterwards*
        # starts empty.
        with tracing() as tracer:
            pass
        assert tracer.events == []
        assert tracer.spans == []
        assert tracer.metrics.to_dict() == {"counters": {}, "histograms": {}}

    def test_release_spans_only_inside_active_window(self):
        mechanism = LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, 1.0)
        mechanism.release([1.0], random_state=0)  # outside: untraced
        with tracing() as tracer:
            mechanism.release([1.0], random_state=0)
        mechanism.release([1.0], random_state=0)  # after: untraced
        assert len(tracer.events) == 1
        assert [s.name for s in tracer.spans] == ["release:LaplaceMechanism"]


class TestLedgerAccountantAgreement:
    def test_charges_compose_to_exact_accountant_spend(self):
        accountant = PrivacyAccountant(PrivacySpec(epsilon=2.0, delta=1e-5))
        specs = [
            PrivacySpec(0.3, 1e-6),
            PrivacySpec(0.7),
            PrivacySpec(0.25, 2e-6),
        ]
        with tracing() as tracer:
            for spec in specs:
                accountant.charge(spec)
        epsilon, delta = ledger_totals(tracer.events)
        assert epsilon == accountant.spent.epsilon
        assert delta == accountant.spent.delta
        assert tracer.metrics.counter("accountant.charges") == len(specs)

    def test_refusal_emits_event_and_counter(self):
        accountant = PrivacyAccountant(PrivacySpec(epsilon=1.0))
        with tracing() as tracer:
            accountant.charge(PrivacySpec(0.9))
            with pytest.raises(PrivacyBudgetError):
                accountant.charge(PrivacySpec(0.5))
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["charge", "refusal"]
        refusal = tracer.events[-1]
        assert refusal.epsilon == 0.5
        assert refusal.remaining_epsilon == pytest.approx(0.1)
        assert tracer.metrics.counter("accountant.refusals") == 1
        # The refused charge is NOT in the composition total.
        epsilon, _ = ledger_totals(tracer.events)
        assert epsilon == accountant.spent.epsilon == 0.9

    def test_charge_events_carry_remaining_budget(self):
        accountant = PrivacyAccountant(PrivacySpec(epsilon=1.0))
        with tracing() as tracer:
            accountant.charge(PrivacySpec(0.25))
            accountant.charge(PrivacySpec(0.25))
        remaining = [e.remaining_epsilon for e in tracer.events]
        assert remaining == pytest.approx([0.75, 0.5])

    def test_calibration_events_from_gibbs(self):
        with tracing() as tracer:
            temperature = temperature_for_privacy(2.0, 1.0, 100)
        (event,) = tracer.events
        assert event.kind == "calibration"
        assert event.label == "temperature_for_privacy"
        assert event.epsilon == 2.0
        assert event.temperature == temperature
        assert event.n == 100


class TestConcurrentAccountant:
    """Thread-hammer suite: charging must be atomic, never check-then-act.

    Charges use ε = 2⁻¹⁰, which sums exactly in binary floating point, so
    every assertion below is exact — no tolerance can mask a lost update
    or a double-spend.
    """

    EPS = 2.0**-10
    THREADS = 8

    def _hammer(self, worker):
        """Run ``worker(thread_index)`` on all threads through a barrier."""
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def body(index):
            barrier.wait()
            try:
                worker(index)
            except BaseException as error:  # pragma: no cover - fail loud
                errors.append(error)
                raise
        threads = [
            threading.Thread(target=body, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_concurrent_charges_never_overspend(self):
        accountant = PrivacyAccountant(PrivacySpec(epsilon=1.0))
        spec = PrivacySpec(self.EPS)
        successes = [0] * self.THREADS

        def worker(index):
            for _ in range(300):
                if accountant.try_charge(spec):
                    successes[index] += 1

        self._hammer(worker)
        # Exactly the affordable 1024 charges landed — not one more.
        assert sum(successes) == 1024
        assert accountant.spent.epsilon == 1.0
        assert accountant.remaining_epsilon == 0.0
        assert len(accountant.ledger()) == 1024

    def test_concurrent_charges_reconcile_with_ledger_events(self):
        accountant = PrivacyAccountant(PrivacySpec(epsilon=1.0))
        spec = PrivacySpec(self.EPS)
        refused = [0] * self.THREADS

        def worker(index):
            for _ in range(300):
                try:
                    accountant.charge(spec)
                except PrivacyBudgetError:
                    refused[index] += 1

        with tracing() as tracer:
            self._hammer(worker)
        epsilon, delta = ledger_totals(tracer.events)
        assert epsilon == accountant.spent.epsilon == 1.0
        assert delta == 0.0
        assert tracer.metrics.counter("accountant.charges") == 1024
        assert tracer.metrics.counter("accountant.refusals") == (
            self.THREADS * 300 - 1024
        )
        assert sum(refused) == self.THREADS * 300 - 1024

    def test_can_afford_is_advisory_but_charge_is_atomic(self):
        """Racing the classic check-then-act sequence must still never
        overshoot: only the atomic charge decides."""
        accountant = PrivacyAccountant(PrivacySpec(epsilon=1.0))
        spec = PrivacySpec(self.EPS)

        def worker(index):
            for _ in range(300):
                if accountant.can_afford(spec):
                    accountant.try_charge(spec)

        self._hammer(worker)
        assert accountant.spent.epsilon <= 1.0
        assert len(accountant.ledger()) <= 1024

    def test_concurrent_refunds_reconcile(self):
        """Each thread refunds half of its own successful reservations;
        the surviving ledger must equal spend exactly."""
        accountant = PrivacyAccountant(PrivacySpec(epsilon=1.0))
        spec = PrivacySpec(self.EPS)
        kept = [0] * self.THREADS

        def worker(index):
            label = f"thread-{index}"
            for round_index in range(100):
                if not accountant.try_charge(spec, label=label):
                    continue
                if round_index % 2:
                    accountant.refund(spec, label=label)
                else:
                    kept[index] += 1

        with tracing() as tracer:
            self._hammer(worker)
        expected = sum(kept) * self.EPS
        assert accountant.spent.epsilon == expected
        assert len(accountant.ledger()) == sum(kept)
        # Net of charge and refund events reproduces the final spend.
        epsilon, _ = ledger_totals(tracer.events, kinds=("charge", "refund"))
        assert epsilon == pytest.approx(expected)

    def test_sharded_accountant_hammered_never_overspends(self):
        accountant = ShardedAccountant(PrivacySpec(epsilon=1.0), shards=4)
        spec = PrivacySpec(self.EPS)
        successes = [0] * self.THREADS

        def worker(index):
            for _ in range(300):
                if accountant.try_charge(spec):
                    successes[index] += 1

        self._hammer(worker)
        assert sum(successes) == 1024
        assert accountant.spent_epsilon == 1.0
        assert not accountant.try_charge(spec)


def _budgeted_case(epsilon, seed):
    """One accountant-guarded Laplace release (module-level: picklable)."""
    mechanism = LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, epsilon)
    accountant = PrivacyAccountant(PrivacySpec(epsilon=10.0))
    value = accountant.run(mechanism, [1.0, 2.0, 3.0], random_state=seed)
    return {"value": value, "spent_epsilon": accountant.spent.epsilon}


class TestBenchEngineTracing:
    def _run(self, tmp_path, tracer=None):
        experiment = Experiment(
            "TOBS", "observability equivalence case", (), "benchmarks/none.py"
        )
        spec = BenchSpec(
            case=_budgeted_case,
            grid={"epsilon": [0.5, 1.0, 2.0], "seed": [1, 2]},
            seed_param="seed",
        )
        engine = BenchmarkEngine(workers=1, output_dir=tmp_path)
        if tracer is None:
            return engine.run_experiment(experiment, spec)
        with tracing(tracer):
            return engine.run_experiment(experiment, spec)

    def test_serial_results_identical_and_ledger_matches_accountant(
        self, tmp_path
    ):
        baseline = self._run(tmp_path / "plain")
        tracer = Tracer("bench-equivalence")
        traced = self._run(tmp_path / "traced", tracer)

        # Outputs bit-identical with tracing on.
        assert [r.outputs for r in traced.records] == [
            r.outputs for r in baseline.records
        ]

        # Acceptance criterion: ledger charge events compose to exactly
        # the ε the accountants charged across the run.
        epsilon, delta = ledger_totals(tracer.events)
        charged = sum(r.outputs["spent_epsilon"] for r in traced.records)
        assert epsilon == charged
        assert delta == 0.0
        assert tracer.metrics.counter("mechanism.releases") == len(
            traced.records
        )

        # The engine span wraps one config span per configuration.
        names = [s.name for s in tracer.spans]
        assert names.count("experiment:TOBS") == 1
        assert names.count("config:TOBS") == len(traced.records)

    def test_manifest_records_carry_trace_summaries(self, tmp_path):
        traced = self._run(tmp_path, Tracer())
        for record in traced.records:
            assert record.trace is not None
            assert record.trace["mechanism_releases"] == 1
            # release + charge events for this configuration alone.
            assert record.trace["ledger_events"] == 2
        payload = traced.to_dict()
        assert all("trace" in r for r in payload["configurations"])

    def test_untraced_manifest_has_no_trace_key(self, tmp_path):
        manifest = self._run(tmp_path)
        assert all(record.trace is None for record in manifest.records)
        payload = manifest.to_dict()
        assert all("trace" not in r for r in payload["configurations"])
