"""Unit tests for the benchmark engine: runner backends, cache, manifests.

The configuration functions below are module-level on purpose — the
process-pool backend pickles them, so the parallel tests double as a check
that the public contract ("cases must be module-level") actually suffices.
"""

from __future__ import annotations

import json
import pickle
import time

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ValidationError
from repro.experiments import (
    BENCH_SCHEMA_VERSION,
    BenchSpec,
    BenchmarkEngine,
    EXPERIMENTS,
    ResultCache,
    RunManifest,
    canonical_parameters,
    code_digest,
    expand_grid,
    load_bench_spec,
    load_manifest,
    reseed,
    run_configurations,
    select_experiments,
    sweep,
)
from repro.experiments.manifest import ConfigurationRecord
from repro.experiments.registry import Experiment


def _affine(x, scale=1, offset=0):
    return {"y": x * scale + offset}


def _echo_seed(x, seed):
    return {"x": x, "seed": seed}


def _fail_on_seed_seven(x, seed):
    if seed == 7:
        raise ValueError("unlucky seed")
    return {"x": x, "seed": seed}


def _always_boom(x):
    raise RuntimeError("boom")


def _sleep_forever(x):
    time.sleep(30)
    return {"x": x}


def _fake_experiment(tmp_path, source_text="case v1\n"):
    """A registry-shaped experiment whose code digest we fully control."""
    source = tmp_path / "bench_fake.py"
    source.write_text(source_text)
    experiment = Experiment(
        "TX", "synthetic test experiment", (), "benchmarks/bench_fake.py"
    )
    spec = BenchSpec(
        case=_affine,
        grid={"x": [1, 2, 3]},
        fixed={"scale": 10},
        source=str(source),
    )
    return experiment, spec, source


class TestReseed:
    def test_attempt_zero_is_identity(self):
        assert reseed(42, 0) == 42

    def test_deterministic(self):
        assert reseed(42, 3) == reseed(42, 3)

    def test_attempts_diverge(self):
        derived = {reseed(42, attempt) for attempt in range(5)}
        assert len(derived) == 5

    def test_seeds_diverge(self):
        assert reseed(1, 1) != reseed(2, 1)


class TestExpandGrid:
    def test_grid_order_is_cartesian_product_order(self):
        configurations = expand_grid({"a": [1, 2], "b": [10, 20]}, {"c": 5})
        assert configurations == [
            {"a": 1, "b": 10, "c": 5},
            {"a": 1, "b": 20, "c": 5},
            {"a": 2, "b": 10, "c": 5},
            {"a": 2, "b": 20, "c": 5},
        ]

    def test_empty_value_sequence_rejected(self):
        # Regression: this used to silently produce zero configurations.
        with pytest.raises(ValidationError, match="non-empty"):
            expand_grid({"a": [1], "b": []})

    def test_overlap_rejected_before_expansion(self):
        with pytest.raises(ValidationError, match="swept and fixed"):
            expand_grid({"a": [1, 2]}, {"a": 3})


class TestRunConfigurations:
    def test_parallel_matches_serial_in_order(self):
        configurations = expand_grid({"x": list(range(6))}, {"scale": 3})
        serial = run_configurations("t", _affine, configurations, workers=1)
        pooled = run_configurations("t", _affine, configurations, workers=3)
        assert [r.outputs for r in serial] == [r.outputs for r in pooled]
        assert [r.parameters for r in serial] == [r.parameters for r in pooled]
        assert [r.outputs["y"] for r in pooled] == [0, 3, 6, 9, 12, 15]

    def test_pooled_records_worker_pids(self):
        results = run_configurations(
            "t", _affine, [{"x": 1}, {"x": 2}], workers=2
        )
        assert all(isinstance(r.metadata["worker"], int) for r in results)

    def test_empty_configurations(self):
        assert run_configurations("t", _affine, []) == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"retries": -1},
            {"timeout": 0},
            {"on_error": "ignore"},
        ],
    )
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            run_configurations("t", _affine, [{"x": 1}], **kwargs)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_reseeds_seed_param(self, workers):
        results = run_configurations(
            "t",
            _fail_on_seed_seven,
            [{"x": 5, "seed": 7}],
            workers=workers,
            retries=2,
            seed_param="seed",
        )
        (result,) = results
        assert not result.failed
        assert result.metadata["retries"] == 1
        assert result.parameters["seed"] == reseed(7, 1)
        assert result.outputs["seed"] == reseed(7, 1)

    def test_retry_without_seed_param_replays_parameters(self):
        with pytest.raises(ExperimentError):
            # Same seed every attempt -> fails deterministically.
            run_configurations(
                "t", _fail_on_seed_seven, [{"x": 5, "seed": 7}], retries=3
            )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_on_error_record_keeps_going(self, workers):
        results = run_configurations(
            "t",
            _always_boom,
            [{"x": 1}, {"x": 2}],
            workers=workers,
            on_error="record",
        )
        assert len(results) == 2
        for result in results:
            assert result.failed
            assert result.outputs == {}
            assert "RuntimeError: boom" in result.metadata["error"]

    def test_on_error_raise_wraps_in_experiment_error(self):
        with pytest.raises(ExperimentError, match="boom"):
            run_configurations("t", _always_boom, [{"x": 1}])

    def test_timeout_records_failure(self):
        results = run_configurations(
            "t",
            _sleep_forever,
            [{"x": 1}],
            workers=1,
            timeout=0.3,
            on_error="record",
        )
        (result,) = results
        assert result.failed
        assert "TimeoutError" in result.metadata["error"]


class TestSweep:
    def test_parallel_sweep_matches_serial(self):
        grid = {"x": [1, 2, 3, 4]}
        serial = sweep("t", _affine, grid, scale=2)
        pooled = sweep("t", _affine, grid, workers=2, scale=2)
        assert [r.outputs for r in serial] == [r.outputs for r in pooled]

    def test_closures_still_work_serially(self):
        offset = 100
        results = sweep("t", lambda x: {"y": x + offset}, {"x": [1, 2]})
        assert [r.outputs["y"] for r in results] == [101, 102]

    def test_empty_value_sequence_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            sweep("t", _affine, {"x": []})


class TestCanonicalParameters:
    def test_sorted_and_compact(self):
        assert canonical_parameters({"b": 2, "a": 1}) == '{"a":1,"b":2}'

    def test_numpy_scalars_coerced(self):
        a = canonical_parameters({"x": np.float64(1.5), "k": np.int64(3)})
        b = canonical_parameters({"x": 1.5, "k": 3})
        assert a == b

    def test_non_mapping_rejected(self):
        with pytest.raises(ValidationError):
            canonical_parameters([1, 2])


class TestCodeDigest:
    def test_stable_for_unchanged_sources(self):
        assert code_digest(["repro.experiments.cache"]) == code_digest(
            ["repro.experiments.cache"]
        )

    def test_changes_with_extra_file_content(self, tmp_path):
        path = tmp_path / "bench.py"
        path.write_text("v1")
        before = code_digest([], extra_paths=[path])
        path.write_text("v2")
        assert code_digest([], extra_paths=[path]) != before

    def test_different_module_sets_differ(self):
        assert code_digest(["repro.experiments.cache"]) != code_digest(
            ["repro.experiments.manifest"]
        )

    def test_missing_module_tolerated(self):
        digest = code_digest(["no.such.module.anywhere"])
        assert len(digest) == 64


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key("E1", {"x": 1}, "d" * 64)
        assert cache.get(key) is None
        cache.put(key, {"outputs": {"y": 2.0}, "seconds": 0.1})
        assert cache.get(key)["outputs"] == {"y": 2.0}
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(key) is None

    def test_key_sensitive_to_all_triple_parts(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("E1", {"x": 1}, "d1")
        assert cache.key("E2", {"x": 1}, "d1") != base
        assert cache.key("E1", {"x": 2}, "d1") != base
        assert cache.key("E1", {"x": 1}, "d2") != base
        assert cache.key("E1", {"x": np.int64(1)}, "d1") == base

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("E1", {"x": 1}, "d")
        cache.put(key, {"outputs": {}})
        (tmp_path / key[:2] / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_payload_without_outputs_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValidationError):
            cache.put("a" * 64, {"seconds": 1.0})


class TestManifest:
    def _manifest(self):
        return RunManifest(
            experiment_id="TX",
            claim="c",
            bench="b.py",
            code_digest="d" * 64,
            workers=2,
            cache_enabled=True,
            records=[
                ConfigurationRecord({"x": 1}, {"y": 2.0}, 0.5, worker=11),
                ConfigurationRecord({"x": 2}, {"y": 4.0}, 0.0, cache_hit=True),
                ConfigurationRecord({"x": 3}, {}, 0.0, error="boom"),
            ],
        )

    def test_summary_properties(self):
        manifest = self._manifest()
        assert manifest.cache_hits == 1
        assert manifest.failures == 1
        assert manifest.executed_seconds == pytest.approx(0.5)

    def test_write_load_round_trip(self, tmp_path):
        manifest = self._manifest()
        path = manifest.write(tmp_path)
        assert path.name == "BENCH_TX.json"
        loaded = load_manifest(path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_schema_version_stamped(self, tmp_path):
        path = self._manifest().write(tmp_path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["summary"]["configurations"] == 3

    def test_unknown_schema_version_rejected(self):
        payload = self._manifest().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema version"):
            RunManifest.from_dict(payload)

    def test_record_missing_keys_rejected(self):
        with pytest.raises(ValidationError, match="missing keys"):
            ConfigurationRecord.from_dict({"parameters": {}, "outputs": {}})


class TestBenchmarkEngine:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        experiment, spec, _ = _fake_experiment(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        engine = BenchmarkEngine(cache=cache, output_dir=tmp_path / "out")
        first = engine.run_experiment(experiment, spec=spec)
        assert first.cache_hits == 0
        assert first.failures == 0
        second = engine.run_experiment(experiment, spec=spec)
        assert second.cache_hits == len(second.records) == 3
        assert [r.outputs for r in first.records] == [
            r.outputs for r in second.records
        ]

    def test_code_change_invalidates_cache(self, tmp_path):
        experiment, spec, source = _fake_experiment(tmp_path)
        cache = ResultCache(tmp_path / "cache")
        engine = BenchmarkEngine(cache=cache)
        first = engine.run_experiment(experiment, spec=spec)
        source.write_text("case v2\n")
        second = engine.run_experiment(experiment, spec=spec)
        assert second.cache_hits == 0
        assert second.code_digest != first.code_digest

    def test_parallel_engine_matches_serial(self, tmp_path):
        experiment, spec, _ = _fake_experiment(tmp_path)
        serial = BenchmarkEngine(workers=1).run_experiment(experiment, spec=spec)
        pooled = BenchmarkEngine(workers=2).run_experiment(experiment, spec=spec)
        assert [r.outputs for r in serial.records] == [
            r.outputs for r in pooled.records
        ]
        assert [r.outputs["y"] for r in pooled.records] == [10, 20, 30]

    def test_failures_recorded_and_not_cached(self, tmp_path):
        experiment, spec, _ = _fake_experiment(tmp_path)
        spec = BenchSpec(
            case=_always_boom,
            grid=spec.grid,
            source=spec.source,
        )
        cache = ResultCache(tmp_path / "cache")
        engine = BenchmarkEngine(cache=cache, output_dir=tmp_path / "out")
        manifest = engine.run_experiment(experiment, spec=spec)
        assert manifest.failures == 3
        assert len(cache) == 0
        # The manifest is still written, with the errors on record.
        loaded = load_manifest(tmp_path / "out" / "BENCH_TX.json")
        assert all("boom" in record.error for record in loaded.records)

    def test_manifest_metadata(self, tmp_path):
        experiment, spec, _ = _fake_experiment(tmp_path)
        manifest = BenchmarkEngine().run_experiment(experiment, spec=spec)
        assert manifest.experiment_id == "TX"
        assert manifest.cache_enabled is False
        assert manifest.total_seconds > 0
        assert all(record.seconds >= 0 for record in manifest.records)

    @pytest.mark.parametrize(
        "kwargs", [{"workers": 0}, {"retries": -1}, {"timeout": 0}]
    )
    def test_invalid_engine_arguments(self, kwargs):
        with pytest.raises(ValidationError):
            BenchmarkEngine(**kwargs)


class TestSelectExperiments:
    def test_default_is_full_registry(self):
        assert select_experiments() == list(EXPERIMENTS)

    def test_glob_selects_range(self):
        selected = select_experiments(["E1?"])
        assert [e.id for e in selected] == [
            "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
            "E18", "E19",
        ]

    def test_case_insensitive_id(self):
        assert [e.id for e in select_experiments(["e4"])] == ["E4"]

    def test_registry_order_preserved(self):
        selected = select_experiments(["E9", "E2"])
        assert [e.id for e in selected] == ["E2", "E9"]

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValidationError, match="no experiment matches"):
            select_experiments(["E99"])


class TestRegisteredBenchSpecs:
    @pytest.mark.parametrize("experiment", EXPERIMENTS, ids=lambda e: e.id)
    def test_every_experiment_has_a_valid_spec(self, experiment):
        spec = load_bench_spec(experiment)
        # The case must survive pickling for the process-pool backend.
        assert pickle.loads(pickle.dumps(spec.case)) is spec.case
        configurations = expand_grid(spec.grid, spec.fixed)
        assert configurations
        if spec.seed_param is not None:
            assert all(spec.seed_param in c for c in configurations)
        assert spec.source and spec.source.endswith(
            experiment.bench.rsplit("/", 1)[-1]
        )
