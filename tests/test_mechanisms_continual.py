"""Unit tests for continual release (tree aggregation)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms.continual import NaivePrefixRelease, TreeAggregator


@pytest.fixture
def stream():
    rng = np.random.default_rng(0)
    return (rng.uniform(size=256) < 0.3).astype(float)


class TestTreeAggregator:
    def test_levels_and_padding(self):
        tree = TreeAggregator(horizon=100, epsilon=1.0)
        assert tree.size == 128
        assert tree.levels == 8

    def test_release_shape(self, stream):
        tree = TreeAggregator(horizon=256, epsilon=1.0)
        out = tree.release(stream, random_state=1)
        assert out.shape == (256,)

    def test_unbiased(self, stream):
        tree = TreeAggregator(horizon=256, epsilon=1.0)
        rng = np.random.default_rng(2)
        truth = np.cumsum(stream)
        total = np.zeros_like(truth)
        trials = 400
        for _ in range(trials):
            total += tree.release(stream, random_state=rng)
        bias = np.abs(total / trials - truth).max()
        assert bias < tree.per_step_noise_std() / np.sqrt(trials) * 5

    def test_error_within_predicted_std(self, stream):
        tree = TreeAggregator(horizon=256, epsilon=1.0)
        rng = np.random.default_rng(3)
        truth = np.cumsum(stream)
        errors = []
        for _ in range(200):
            errors.append(np.abs(tree.release(stream, random_state=rng) - truth))
        rms = float(np.sqrt(np.mean(np.square(errors))))
        assert rms <= tree.per_step_noise_std() * 1.2

    def test_prefix_decomposition_exact_without_noise(self, stream):
        """With ε huge the noise vanishes and the dyadic decomposition
        must reproduce the exact prefix sums — a correctness check on the
        tree indexing."""
        tree = TreeAggregator(horizon=256, epsilon=1e9)
        out = tree.release(stream, random_state=4)
        assert out == pytest.approx(np.cumsum(stream), abs=1e-3)

    def test_partial_stream_allowed(self):
        tree = TreeAggregator(horizon=256, epsilon=1e9)
        out = tree.release(np.ones(100), random_state=5)
        assert out == pytest.approx(np.arange(1, 101, dtype=float), abs=1e-3)

    def test_rejects_overlong_stream(self):
        tree = TreeAggregator(horizon=8, epsilon=1.0)
        with pytest.raises(ValidationError):
            tree.release(np.ones(9), random_state=0)

    def test_rejects_oversized_values(self):
        tree = TreeAggregator(horizon=8, epsilon=1.0, value_sensitivity=1.0)
        with pytest.raises(ValidationError):
            tree.release([2.0], random_state=0)


class TestNaiveBaseline:
    def test_release_shape(self, stream):
        naive = NaivePrefixRelease(horizon=256, epsilon=1.0)
        assert naive.release(stream, random_state=6).shape == (256,)

    def test_tree_beats_naive_at_equal_budget(self, stream):
        """The headline scaling: per-step noise √2·T/ε for naive vs
        √(2·log T)·log T/ε for the tree — a big gap at T = 256."""
        epsilon = 1.0
        tree = TreeAggregator(horizon=256, epsilon=epsilon)
        naive = NaivePrefixRelease(horizon=256, epsilon=epsilon)
        assert tree.per_step_noise_std() < naive.per_step_noise_std() / 5

        rng = np.random.default_rng(7)
        truth = np.cumsum(stream)
        tree_rms = np.sqrt(
            np.mean(
                [
                    np.mean((tree.release(stream, random_state=rng) - truth) ** 2)
                    for _ in range(50)
                ]
            )
        )
        naive_rms = np.sqrt(
            np.mean(
                [
                    np.mean(
                        (naive.release(stream, random_state=rng) - truth) ** 2
                    )
                    for _ in range(50)
                ]
            )
        )
        assert tree_rms < naive_rms / 5

    def test_scaling_with_horizon(self):
        """Tree noise grows polylog in T; naive grows linearly."""
        epsilon = 1.0
        ratios = []
        for horizon in [64, 1024]:
            tree = TreeAggregator(horizon=horizon, epsilon=epsilon)
            naive = NaivePrefixRelease(horizon=horizon, epsilon=epsilon)
            ratios.append(naive.per_step_noise_std() / tree.per_step_noise_std())
        assert ratios[1] > ratios[0]  # the gap widens with T
