"""Unit tests for private posterior sampling (Beta–Bernoulli)."""

import numpy as np
import pytest

from repro.core.bayes import (
    TruncatedBetaBernoulliPosterior,
    bernoulli_log_likelihood_range,
    posterior_sampling_privacy,
    temperature_for_posterior_privacy,
)
from repro.exceptions import ValidationError


class TestCalibration:
    def test_likelihood_range_formula(self):
        assert bernoulli_log_likelihood_range(0.1) == pytest.approx(np.log(9.0))

    def test_range_grows_as_truncation_shrinks(self):
        assert bernoulli_log_likelihood_range(0.01) > bernoulli_log_likelihood_range(0.2)

    def test_privacy_roundtrip(self):
        b = 2.0
        lam = temperature_for_posterior_privacy(1.0, b)
        assert posterior_sampling_privacy(lam, b) == pytest.approx(1.0)

    def test_rejects_bad_truncation(self):
        with pytest.raises(ValidationError):
            bernoulli_log_likelihood_range(0.5)


class TestPosterior:
    @pytest.fixture
    def data(self):
        rng = np.random.default_rng(0)
        return (rng.uniform(size=400) < 0.7).astype(int)

    def test_parameters_scale_with_temperature(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=1.0, truncation=0.1)
        alpha, beta = model.posterior_parameters(data)
        k = data.sum()
        assert alpha == pytest.approx(1.0 + model.temperature * k)
        assert beta == pytest.approx(1.0 + model.temperature * (len(data) - k))

    def test_samples_respect_truncation(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=1.0, truncation=0.2)
        rng = np.random.default_rng(1)
        draws = [model.release(data, random_state=rng) for _ in range(500)]
        assert min(draws) >= 0.2
        assert max(draws) <= 0.8

    def test_concentrates_near_truth_at_large_epsilon(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=200.0, truncation=0.05)
        rng = np.random.default_rng(2)
        draws = np.array([model.release(data, random_state=rng) for _ in range(300)])
        assert draws.mean() == pytest.approx(data.mean(), abs=0.05)
        assert draws.std() < 0.1

    def test_near_prior_at_tiny_epsilon(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=1e-6, truncation=0.05)
        rng = np.random.default_rng(3)
        draws = np.array([model.release(data, random_state=rng) for _ in range(2000)])
        # Uniform prior truncated to [0.05, 0.95]: mean 0.5, high spread.
        assert draws.mean() == pytest.approx(0.5, abs=0.03)
        assert draws.std() > 0.2

    def test_posterior_mean_matches_samples(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=5.0, truncation=0.05)
        rng = np.random.default_rng(4)
        draws = np.array([model.release(data, random_state=rng) for _ in range(20_000)])
        assert draws.mean() == pytest.approx(model.posterior_mean(data), abs=0.005)

    def test_density_normalized(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=2.0, truncation=0.1)
        thetas = np.linspace(0.1, 0.9, 100_001)
        densities = np.array([model.posterior_density(data, t) for t in thetas])
        assert np.trapezoid(densities, thetas) == pytest.approx(1.0, abs=1e-3)

    def test_density_zero_outside_truncation(self, data):
        model = TruncatedBetaBernoulliPosterior(epsilon=2.0, truncation=0.1)
        assert model.posterior_density(data, 0.01) == 0.0

    def test_rejects_bad_data(self):
        model = TruncatedBetaBernoulliPosterior(epsilon=1.0)
        with pytest.raises(ValidationError):
            model.posterior_parameters([0, 1, 2])

    def test_mse_improves_with_epsilon(self, data):
        strict = TruncatedBetaBernoulliPosterior(epsilon=0.05)
        loose = TruncatedBetaBernoulliPosterior(epsilon=50.0)
        mse_strict = strict.mean_squared_error(data, 0.7, random_state=5)
        mse_loose = loose.mean_squared_error(data, 0.7, random_state=6)
        assert mse_loose < mse_strict


class TestPrivacyOfPosteriorSampling:
    def test_discretized_audit_respects_guarantee(self):
        """Discretize the released sample to a fine grid and audit the
        induced discrete mechanism exactly over neighbour pairs: the
        measured ε must stay within the nominal guarantee (discretization
        is post-processing, so it cannot inflate the loss)."""
        from repro.distributions import DiscreteDistribution
        from repro.information import max_divergence

        epsilon = 1.0
        model = TruncatedBetaBernoulliPosterior(epsilon=epsilon, truncation=0.1)
        edges = np.linspace(0.1, 0.9, 81)

        def discrete_law(dataset):
            alpha, beta = model.posterior_parameters(dataset)
            from scipy.stats import beta as beta_distribution

            cdf = beta_distribution.cdf(edges, alpha, beta)
            masses = np.diff(cdf)
            masses = np.clip(masses, 1e-300, None)
            return DiscreteDistribution(range(len(masses)), masses / masses.sum())

        worst = 0.0
        datasets = [[0, 0, 0], [0, 0, 1], [0, 1, 1], [1, 1, 1]]
        for a in datasets:
            for b in datasets:
                if sum(1 for x, y in zip(a, b) if x != y) == 1:
                    worst = max(
                        worst, max_divergence(discrete_law(a), discrete_law(b))
                    )
        assert worst <= epsilon + 1e-9
        assert worst > 0.1 * epsilon  # and the guarantee is not vacuous
