"""Unit tests for the sensitivity calculus."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import empirical_risk_sensitivity, global_sensitivity
from repro.mechanisms.sensitivity import (
    count_query_sensitivity,
    estimate_sensitivity,
    mean_query_sensitivity,
)


class TestGlobalSensitivity:
    def test_count_query(self):
        sensitivity = global_sensitivity(
            lambda d: float(sum(d)), universe=[0, 1], n=3
        )
        assert sensitivity == pytest.approx(1.0)

    def test_sum_query_over_bounded_universe(self):
        sensitivity = global_sensitivity(
            lambda d: float(sum(d)), universe=[0, 1, 2, 3], n=2
        )
        assert sensitivity == pytest.approx(3.0)

    def test_mean_query(self):
        sensitivity = global_sensitivity(
            lambda d: float(np.mean(d)), universe=[0.0, 1.0], n=4
        )
        assert sensitivity == pytest.approx(0.25)

    def test_constant_query_is_zero(self):
        sensitivity = global_sensitivity(lambda d: 7.0, universe=[0, 1], n=2)
        assert sensitivity == 0.0

    def test_vector_query_l1(self):
        sensitivity = global_sensitivity(
            lambda d: np.array([sum(d), -float(sum(d))]), universe=[0, 1], n=2
        )
        assert sensitivity == pytest.approx(2.0)

    def test_unordered_matches_ordered_for_exchangeable_query(self):
        query = lambda d: float(sum(d))
        ordered = global_sensitivity(query, [0, 1, 2], n=2, ordered=True)
        unordered = global_sensitivity(query, [0, 1, 2], n=2, ordered=False)
        assert ordered == pytest.approx(unordered)

    def test_rejects_empty_universe(self):
        with pytest.raises(ValidationError):
            global_sensitivity(lambda d: 0.0, [], n=1)

    def test_rejects_bad_n(self):
        with pytest.raises(ValidationError):
            global_sensitivity(lambda d: 0.0, [0], n=0)


class TestEstimateSensitivity:
    def test_lower_bounds_truth(self):
        query = lambda d: float(sum(d))
        datasets = [[0, 1, 0], [1, 1, 1], [0, 0, 0]]
        estimate = estimate_sensitivity(
            query, datasets, universe=[0, 1], random_state=0
        )
        assert estimate <= 1.0 + 1e-12

    def test_finds_sensitivity_with_enough_probes(self):
        query = lambda d: float(sum(d))
        datasets = [[0, 0], [1, 1]]
        estimate = estimate_sensitivity(
            query,
            datasets,
            universe=[0, 1],
            substitutions_per_dataset=100,
            random_state=0,
        )
        assert estimate == pytest.approx(1.0)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValidationError):
            estimate_sensitivity(lambda d: 0.0, [[]], universe=[0], random_state=0)


class TestClosedForms:
    def test_empirical_risk_sensitivity(self):
        assert empirical_risk_sensitivity(loss_range=1.0, n=50) == pytest.approx(
            1.0 / 50
        )

    def test_empirical_risk_sensitivity_matches_enumeration(self):
        """The closed form B/n equals exhaustive enumeration for a concrete
        bounded loss (absolute loss of a fixed predictor on {0,1} data)."""
        theta = 0.3

        def risk(dataset):
            return float(np.mean([abs(theta - z) for z in dataset]))

        enumerated = global_sensitivity(risk, universe=[0, 1], n=3)
        # Loss values are |0.3-0| = 0.3 and |0.3-1| = 0.7: range 0.4.
        assert enumerated == pytest.approx(
            empirical_risk_sensitivity(loss_range=0.4, n=3)
        )

    def test_count_sensitivity(self):
        assert count_query_sensitivity() == 1.0

    def test_mean_sensitivity(self):
        assert mean_query_sensitivity(value_range=2.0, n=10) == pytest.approx(0.2)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            empirical_risk_sensitivity(0.0, 10)
        with pytest.raises(ValidationError):
            empirical_risk_sensitivity(1.0, 0)
