"""Unit + property tests for divergences."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information import (
    binary_kl,
    binary_kl_inverse,
    hockey_stick_divergence,
    jensen_shannon_divergence,
    kl_divergence,
    max_divergence,
    renyi_divergence,
    total_variation,
)
from repro.information.divergences import kl_decomposition


def simplex(size: int):
    return st.lists(st.floats(1e-6, 1.0), min_size=size, max_size=size).map(
        lambda ws: [w / sum(ws) for w in ws]
    )


class TestKL:
    def test_self_divergence_zero(self):
        p = [0.3, 0.7]
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_known_value(self):
        assert kl_divergence([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_infinite_when_not_absolutely_continuous(self):
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == np.inf

    def test_asymmetric(self):
        p = [0.9, 0.1]
        q = [0.5, 0.5]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_accepts_distributions(self):
        a = DiscreteDistribution(["x", "y"], [0.5, 0.5])
        b = DiscreteDistribution(["x", "y"], [0.9, 0.1])
        assert kl_divergence(a, b) > 0

    @given(simplex(4), simplex(4))
    def test_nonnegative(self, p, q):
        assert kl_divergence(p, q) >= -1e-12

    @given(simplex(4), simplex(4))
    def test_pinsker_inequality(self, p, q):
        tv = total_variation(p, q)
        assert kl_divergence(p, q) >= 2 * tv**2 - 1e-9


class TestBinaryKL:
    def test_zero_on_diagonal(self):
        assert binary_kl(0.3, 0.3) == pytest.approx(0.0)

    def test_matches_vector_kl(self):
        assert binary_kl(0.2, 0.6) == pytest.approx(
            kl_divergence([0.2, 0.8], [0.6, 0.4])
        )

    def test_inverse_roundtrip(self):
        p, budget = 0.1, 0.05
        q = binary_kl_inverse(p, budget)
        assert binary_kl(p, q) == pytest.approx(budget, abs=1e-6)

    def test_inverse_zero_budget(self):
        assert binary_kl_inverse(0.3, 0.0) == pytest.approx(0.3)

    def test_inverse_huge_budget_saturates(self):
        assert binary_kl_inverse(0.3, 100.0) == pytest.approx(1.0)

    def test_inverse_monotone_in_budget(self):
        q1 = binary_kl_inverse(0.2, 0.01)
        q2 = binary_kl_inverse(0.2, 0.1)
        assert q1 < q2


class TestOtherDivergences:
    def test_total_variation_known(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_js_symmetric_and_bounded(self):
        p, q = [0.9, 0.1], [0.1, 0.9]
        js = jensen_shannon_divergence(p, q)
        assert js == pytest.approx(jensen_shannon_divergence(q, p))
        assert 0 <= js <= np.log(2) + 1e-12

    def test_js_finite_even_without_common_support(self):
        assert np.isfinite(jensen_shannon_divergence([1.0, 0.0], [0.0, 1.0]))

    def test_renyi_alpha_one_is_kl(self):
        p, q = [0.3, 0.7], [0.6, 0.4]
        assert renyi_divergence(p, q, 1.0) == pytest.approx(kl_divergence(p, q))

    def test_renyi_alpha_inf_is_max_divergence(self):
        p, q = [0.3, 0.7], [0.6, 0.4]
        assert renyi_divergence(p, q, np.inf) == pytest.approx(
            max_divergence(p, q)
        )

    def test_renyi_monotone_in_alpha(self):
        p, q = [0.3, 0.7], [0.6, 0.4]
        values = [renyi_divergence(p, q, a) for a in [0.5, 1.0, 2.0, 10.0]]
        assert all(v1 <= v2 + 1e-12 for v1, v2 in zip(values, values[1:]))

    def test_renyi_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            renyi_divergence([0.5, 0.5], [0.5, 0.5], -1.0)


class TestMaxDivergence:
    def test_known_value(self):
        # max log ratio over atoms with positive p mass.
        p, q = [0.8, 0.2], [0.4, 0.6]
        assert max_divergence(p, q) == pytest.approx(np.log(2.0))

    def test_infinite_without_absolute_continuity(self):
        assert max_divergence([0.5, 0.5], [1.0, 0.0]) == np.inf

    def test_dp_characterization(self):
        # For any event S, log P(S)/Q(S) <= D_inf(P||Q): check all 2^k events.
        p = np.array([0.5, 0.3, 0.2])
        q = np.array([0.25, 0.25, 0.5])
        d = max_divergence(p, q)
        for mask in range(1, 8):
            s = [bool(mask & (1 << i)) for i in range(3)]
            ratio = np.log(p[s].sum()) - np.log(q[s].sum())
            assert ratio <= d + 1e-12

    @given(simplex(3), simplex(3))
    def test_upper_bounds_kl(self, p, q):
        assert kl_divergence(p, q) <= max_divergence(p, q) + 1e-9


class TestHockeyStick:
    def test_zero_epsilon_is_like_tv(self):
        p, q = [0.8, 0.2], [0.4, 0.6]
        assert hockey_stick_divergence(p, q, 0.0) == pytest.approx(
            total_variation(p, q)
        )

    def test_large_epsilon_gives_zero(self):
        p, q = [0.8, 0.2], [0.4, 0.6]
        assert hockey_stick_divergence(p, q, 10.0) == pytest.approx(0.0)

    def test_pure_dp_iff_hockey_stick_zero_at_epsilon(self):
        p, q = [0.8, 0.2], [0.4, 0.6]
        eps = max_divergence(p, q)
        assert hockey_stick_divergence(p, q, eps) == pytest.approx(0.0, abs=1e-12)
        assert hockey_stick_divergence(p, q, eps * 0.5) > 0


class TestKLDecomposition:
    def test_identity_holds_exactly(self):
        support = ["t0", "t1", "t2"]
        posteriors = [
            DiscreteDistribution(support, [0.7, 0.2, 0.1]),
            DiscreteDistribution(support, [0.1, 0.3, 0.6]),
        ]
        prior = DiscreteDistribution(support, [0.4, 0.3, 0.3])
        out = kl_decomposition(posteriors, [0.5, 0.5], prior)
        assert out["expected_kl"] == pytest.approx(
            out["mutual_information"] + out["marginal_kl"]
        )

    def test_optimal_prior_zeroes_marginal_kl(self):
        support = ["a", "b"]
        posteriors = [
            DiscreteDistribution(support, [0.9, 0.1]),
            DiscreteDistribution(support, [0.2, 0.8]),
        ]
        weights = [0.3, 0.7]
        # First pass with any prior to get the marginal, then use it.
        first = kl_decomposition(
            posteriors, weights, DiscreteDistribution(support, [0.5, 0.5])
        )
        second = kl_decomposition(posteriors, weights, first["marginal"])
        assert second["marginal_kl"] == pytest.approx(0.0, abs=1e-12)
        assert second["expected_kl"] == pytest.approx(
            second["mutual_information"]
        )

    def test_mutual_information_matches_joint_formula(self):
        from repro.information import mutual_information_from_joint

        support = [0, 1]
        posteriors = [
            DiscreteDistribution(support, [0.9, 0.1]),
            DiscreteDistribution(support, [0.3, 0.7]),
        ]
        weights = np.array([0.4, 0.6])
        joint = weights[:, None] * np.stack(
            [post.probabilities for post in posteriors]
        )
        out = kl_decomposition(
            posteriors, weights, DiscreteDistribution(support, [0.5, 0.5])
        )
        assert out["mutual_information"] == pytest.approx(
            mutual_information_from_joint(joint)
        )

    def test_rejects_mismatched_lengths(self):
        support = [0, 1]
        posteriors = [DiscreteDistribution(support, [0.5, 0.5])]
        prior = DiscreteDistribution(support, [0.5, 0.5])
        with pytest.raises(ValidationError):
            kl_decomposition(posteriors, [0.5, 0.5], prior)
