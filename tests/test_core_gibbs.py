"""Unit tests for the Gibbs posterior/estimator (Lemma 3.2, Theorem 4.1)."""

import numpy as np
import pytest

from repro.core import (
    ContinuousGibbsPosterior,
    GibbsEstimator,
    GibbsPosterior,
    privacy_of_temperature,
    temperature_for_privacy,
)
from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid


@pytest.fixture
def task():
    return BernoulliTask(p=0.8)


@pytest.fixture
def grid(task):
    return PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)


class TestCalibration:
    def test_roundtrip(self):
        eps = privacy_of_temperature(10.0, loss_range=1.0, n=50)
        assert temperature_for_privacy(eps, loss_range=1.0, n=50) == (
            pytest.approx(10.0)
        )

    def test_formula(self):
        # ε = 2λΔ = 2·5·(1/20) = 0.5
        assert privacy_of_temperature(5.0, 1.0, 20) == pytest.approx(0.5)

    def test_larger_n_allows_larger_temperature(self):
        t_small = temperature_for_privacy(1.0, 1.0, 10)
        t_large = temperature_for_privacy(1.0, 1.0, 1000)
        assert t_large > t_small


class TestGibbsPosterior:
    def test_exact_form(self, grid):
        gibbs = GibbsPosterior(grid, temperature=2.0)
        sample = [1, 1, 0]
        risks = grid.empirical_risks(sample)
        expected = np.exp(-2.0 * risks)
        expected /= expected.sum()
        assert gibbs.posterior(sample).probabilities == pytest.approx(expected)

    def test_respects_prior(self, grid):
        prior = DiscreteDistribution(
            grid.thetas, [0.6, 0.1, 0.1, 0.1, 0.1]
        )
        gibbs = GibbsPosterior(grid, temperature=1.0, prior=prior)
        sample = [1, 1]
        risks = grid.empirical_risks(sample)
        expected = prior.probabilities * np.exp(-risks)
        expected /= expected.sum()
        assert gibbs.posterior(sample).probabilities == pytest.approx(expected)

    def test_zero_temperature_limit_is_prior(self, grid):
        gibbs = GibbsPosterior(grid, temperature=1e-12)
        post = gibbs.posterior([1, 1, 1])
        assert post.probabilities == pytest.approx([0.2] * 5, abs=1e-9)

    def test_high_temperature_concentrates_on_erm(self, grid):
        gibbs = GibbsPosterior(grid, temperature=10_000.0)
        sample = [1] * 10
        post = gibbs.posterior(sample)
        assert post.mode() == grid.erm(sample)
        assert post.probability_of(post.mode()) > 0.99

    def test_huge_temperature_numerically_stable(self, grid):
        gibbs = GibbsPosterior(grid, temperature=1e8)
        post = gibbs.posterior([1, 0, 1])
        assert np.isfinite(post.probabilities).all()
        assert post.probabilities.sum() == pytest.approx(1.0)

    def test_free_energy_is_minimum_of_objective(self, grid):
        """free energy = min over posteriors of E R̂ + KL/λ (Lemma 3.2)."""
        from repro.core.pac_bayes import catoni_objective

        gibbs = GibbsPosterior(grid, temperature=3.0)
        sample = [1, 1, 0, 1]
        risks = grid.empirical_risks(sample)
        prior = gibbs.prior
        post = gibbs.posterior(sample)
        objective_at_gibbs = catoni_objective(post, prior, risks, 3.0) / 3.0
        assert gibbs.free_energy(sample) == pytest.approx(objective_at_gibbs)

    def test_expected_empirical_risk_below_prior_risk(self, grid):
        gibbs = GibbsPosterior(grid, temperature=5.0)
        sample = [1, 1, 1, 0]
        risks = grid.empirical_risks(sample)
        prior_risk = float(risks @ gibbs.prior.probabilities)
        assert gibbs.expected_empirical_risk(sample) <= prior_risk + 1e-12

    def test_privacy_epsilon(self, grid):
        gibbs = GibbsPosterior(grid, temperature=4.0)
        assert gibbs.privacy_epsilon(8) == pytest.approx(2 * 4.0 / 8)

    def test_rejects_mismatched_prior(self, grid):
        prior = DiscreteDistribution([9.9], [1.0])
        with pytest.raises(ValidationError):
            GibbsPosterior(grid, 1.0, prior=prior)


class TestGibbsEstimator:
    def test_from_privacy_calibration(self, grid):
        est = GibbsEstimator.from_privacy(grid, epsilon=1.0, expected_sample_size=100)
        assert est.privacy.epsilon == pytest.approx(1.0)
        assert est.temperature == pytest.approx(50.0)

    def test_release_comes_from_grid(self, grid, task):
        est = GibbsEstimator.from_privacy(grid, 1.0, 50)
        sample = list(task.sample(50, random_state=0))
        theta = est.release(sample, random_state=1)
        assert theta in grid.thetas

    def test_wrong_sample_size_rejected(self, grid):
        est = GibbsEstimator.from_privacy(grid, 1.0, 50)
        with pytest.raises(ValidationError):
            est.release([1] * 49, random_state=0)

    def test_more_privacy_means_flatter_posterior(self, grid, task):
        sample = list(task.sample(50, random_state=2))
        strict = GibbsEstimator.from_privacy(grid, 0.01, 50)
        loose = GibbsEstimator.from_privacy(grid, 10.0, 50)
        assert (
            strict.output_distribution(sample).entropy()
            > loose.output_distribution(sample).entropy()
        )

    def test_utility_improves_with_epsilon(self, grid, task):
        """Expected true risk of the released predictor falls as ε grows."""
        sample = list(task.sample(200, random_state=3))
        risks = {}
        for eps in [0.05, 1.0, 20.0]:
            est = GibbsEstimator.from_privacy(grid, eps, 200)
            dist = est.output_distribution(sample)
            risks[eps] = sum(
                p * task.true_risk(theta) for theta, p in dist
            )
        assert risks[20.0] < risks[1.0] < risks[0.05]


class TestContinuousGibbs:
    def test_posterior_concentrates_with_temperature(self):
        task = BernoulliTask(p=0.9)
        sample = list(task.sample(100, random_state=4))

        def log_prior(theta):
            # Flat prior on [0, 1], -inf outside (clamped smoothly).
            return 0.0 if 0.0 <= theta[0] <= 1.0 else -1e9

        def risk(theta, s):
            return float(np.mean([abs(theta[0] - z) for z in s]))

        gibbs = ContinuousGibbsPosterior(log_prior, risk, dimension=1, temperature=200.0)
        result = gibbs.sample(
            sample, 2_000, step_size=0.1, burn_in=500, initial=[0.5], random_state=5
        )
        draws = result.samples[:, 0]
        assert draws.mean() > 0.8  # concentrates near the ERM θ = 1

    def test_privacy_epsilon_formula(self):
        gibbs = ContinuousGibbsPosterior(
            lambda t: 0.0, lambda t, s: 0.0, dimension=1, temperature=10.0
        )
        assert gibbs.privacy_epsilon(loss_range=1.0, n=40) == pytest.approx(0.5)

    def test_log_density_combines_prior_and_risk(self):
        gibbs = ContinuousGibbsPosterior(
            lambda t: -1.0, lambda t, s: 2.0, dimension=1, temperature=3.0
        )
        assert gibbs.log_density(np.zeros(1), [0]) == pytest.approx(-7.0)
