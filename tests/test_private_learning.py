"""Unit tests for the private learners (Chaudhuri baselines + Gibbs)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import (
    HuberHingeLoss,
    LogisticLoss,
    LogisticRegressionModel,
    TwoGaussiansTask,
    ZeroOneLoss,
)
from repro.private_learning import (
    ExponentialMechanismLearner,
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
    direction_grid,
    erm_argmin_sensitivity,
)


@pytest.fixture
def data():
    task = TwoGaussiansTask([2.0, 0.0], clip_features=True)
    return task, task.sample(500, random_state=0)


class TestArgminSensitivity:
    def test_closed_form(self):
        assert erm_argmin_sensitivity(1.0, 0.1, 100) == pytest.approx(0.2)

    def test_empirical_never_exceeds_closed_form(self, data):
        """Refit on neighbouring datasets; the argmin displacement must stay
        within 2L/(nΛ)."""
        _, (x, y) = data
        lam = 0.5
        base = LogisticRegressionModel(regularization=lam).fit(x, y)
        bound = erm_argmin_sensitivity(1.0, lam, len(y))
        rng = np.random.default_rng(1)
        for _ in range(5):
            i = int(rng.integers(len(y)))
            x2, y2 = x.copy(), y.copy()
            x2[i] = rng.normal(size=2)
            x2[i] /= max(np.linalg.norm(x2[i]), 1.0)
            y2[i] = -y2[i]
            neighbour = LogisticRegressionModel(regularization=lam).fit(x2, y2)
            gap = np.linalg.norm(base.coefficients - neighbour.coefficients)
            assert gap <= bound + 1e-9

    def test_rejects_vanishing_regularization(self):
        """Λ → 0 loses strong convexity: 2L/(nΛ) overflows to inf, which
        would calibrate vacuous (infinite-scale) noise downstream."""
        with pytest.raises(ValidationError, match="strongly convex"):
            erm_argmin_sensitivity(1.0, 1e-320, 100)

    def test_rejects_infinite_lipschitz(self):
        with pytest.raises(ValidationError, match="finite"):
            erm_argmin_sensitivity(np.inf, 0.1, 100)

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ValidationError):
            erm_argmin_sensitivity(1.0, 0.0, 100)
        with pytest.raises(ValidationError):
            erm_argmin_sensitivity(-1.0, 0.1, 100)
        with pytest.raises(ValidationError):
            erm_argmin_sensitivity(1.0, 0.1, 0)


class TestOutputPerturbation:
    def test_accuracy_reasonable_at_large_epsilon(self, data):
        task, (x, y) = data
        clf = OutputPerturbationClassifier(
            LogisticLoss(), regularization=0.01, epsilon=50.0
        ).fit(x, y, random_state=2)
        assert clf.accuracy(x, y) > 0.85

    def test_noise_dominates_at_tiny_epsilon(self, data):
        """At ε → 0 the released vector is essentially noise."""
        task, (x, y) = data
        nonprivate = LogisticRegressionModel(regularization=0.01).fit(x, y)
        gaps = []
        for seed in range(5):
            clf = OutputPerturbationClassifier(
                LogisticLoss(), regularization=0.01, epsilon=0.001
            ).fit(x, y, random_state=seed)
            gaps.append(
                np.linalg.norm(clf.coefficients - nonprivate.coefficients)
            )
        assert min(gaps) > np.linalg.norm(nonprivate.coefficients)

    def test_rejects_unclipped_features(self):
        x = np.array([[3.0, 0.0], [0.0, 1.0]])
        y = np.array([1, -1])
        clf = OutputPerturbationClassifier(LogisticLoss(), 0.1, epsilon=1.0)
        with pytest.raises(ValidationError):
            clf.fit(x, y, random_state=0)

    def test_rejects_non_lipschitz_loss(self):
        with pytest.raises(ValidationError):
            OutputPerturbationClassifier(ZeroOneLoss(), 0.1, epsilon=1.0)

    def test_release_interface(self, data):
        _, (x, y) = data
        clf = OutputPerturbationClassifier(LogisticLoss(), 0.1, epsilon=1.0)
        theta = clf.release((x, y), random_state=3)
        assert theta.shape == (2,)

    def test_predict_before_fit_raises(self):
        clf = OutputPerturbationClassifier(LogisticLoss(), 0.1, epsilon=1.0)
        with pytest.raises(ValidationError):
            clf.predict(np.zeros((1, 2)))


class TestObjectivePerturbation:
    def test_accuracy_reasonable_at_large_epsilon(self, data):
        task, (x, y) = data
        clf = ObjectivePerturbationClassifier(
            LogisticLoss(), regularization=0.01, epsilon=50.0
        ).fit(x, y, random_state=4)
        assert clf.accuracy(x, y) > 0.85

    def test_works_with_huber_hinge(self, data):
        _, (x, y) = data
        clf = ObjectivePerturbationClassifier(
            HuberHingeLoss(smoothing=0.5), regularization=0.05, epsilon=5.0
        ).fit(x, y, random_state=5)
        assert clf.coefficients.shape == (2,)

    def test_rejects_hinge_without_smoothing(self):
        from repro.learning import HingeLoss

        with pytest.raises(ValidationError):
            ObjectivePerturbationClassifier(HingeLoss(), 0.1, epsilon=1.0)

    def test_small_epsilon_triggers_regularization_topup(self, data):
        _, (x, y) = data
        clf = ObjectivePerturbationClassifier(
            LogisticLoss(), regularization=1e-6, epsilon=0.01
        ).fit(x, y, random_state=6)
        assert clf.effective_regularization > 1e-6

    def test_large_epsilon_no_topup(self, data):
        _, (x, y) = data
        clf = ObjectivePerturbationClassifier(
            LogisticLoss(), regularization=0.1, epsilon=10.0
        ).fit(x, y, random_state=7)
        assert clf.effective_regularization == pytest.approx(0.1)

    def test_beats_output_perturbation_at_moderate_epsilon(self, data):
        """The headline comparison of Chaudhuri et al. — objective
        perturbation wins at moderate ε (averaged over seeds)."""
        task, (x, y) = data
        x_test, y_test = task.sample(2_000, random_state=100)
        epsilon, lam = 0.5, 0.01
        obj_acc, out_acc = [], []
        for seed in range(15):
            obj = ObjectivePerturbationClassifier(
                LogisticLoss(), lam, epsilon
            ).fit(x, y, random_state=seed)
            out = OutputPerturbationClassifier(
                LogisticLoss(), lam, epsilon
            ).fit(x, y, random_state=seed)
            obj_acc.append(obj.accuracy(x_test, y_test))
            out_acc.append(out.accuracy(x_test, y_test))
        assert np.mean(obj_acc) > np.mean(out_acc)


class TestDirectionGrid:
    def test_2d_unit_circle(self):
        grid = direction_grid(2, 8)
        assert len(grid) == 8
        for theta in grid:
            assert np.linalg.norm(theta) == pytest.approx(1.0)

    def test_high_dimension_unit_norm(self):
        grid = direction_grid(5, 16)
        assert len(grid) == 16
        for theta in grid:
            assert np.linalg.norm(theta) == pytest.approx(1.0)

    def test_deterministic(self):
        a = direction_grid(4, 10)
        b = direction_grid(4, 10)
        assert all(np.array_equal(u, v) for u, v in zip(a, b))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            direction_grid(1, 8)
        with pytest.raises(ValidationError):
            direction_grid(2, 1)

    def test_2d_directions_all_distinct(self):
        grid = direction_grid(2, 64)
        assert len({tuple(theta) for theta in grid}) == 64

    def test_degenerate_zero_rows_are_skipped(self):
        """A zero Gaussian row has no direction (0/0 → NaN); the grid must
        skip it and keep drawing rather than emit a NaN predictor."""

        class ZeroThenNormal(np.random.Generator):
            def __init__(self):
                super().__init__(np.random.PCG64(4))
                self._calls = 0

            def normal(self, *args, **kwargs):
                self._calls += 1
                if self._calls <= 2:
                    return np.zeros(kwargs.get("size", args[-1] if args else None))
                return super().normal(*args, **kwargs)

        grid = direction_grid(3, 5, random_state=ZeroThenNormal())
        assert len(grid) == 5
        for theta in grid:
            assert np.all(np.isfinite(theta))
            assert np.linalg.norm(theta) == pytest.approx(1.0)

    def test_duplicate_rows_are_deduplicated(self):
        """Repeated rows would silently double a predictor's prior mass;
        the grid must hold distinct directions."""

        class RepeatFirstRow(np.random.Generator):
            def __init__(self):
                super().__init__(np.random.PCG64(4))
                self._row = None
                self._calls = 0

            def normal(self, *args, **kwargs):
                self._calls += 1
                if self._calls == 1:
                    self._row = super().normal(*args, **kwargs)
                    return self._row
                if self._calls <= 3:
                    return self._row.copy()
                return super().normal(*args, **kwargs)

        grid = direction_grid(4, 6, random_state=RepeatFirstRow())
        assert len(grid) == 6
        assert len({tuple(theta) for theta in grid}) == 6

    def test_exhausted_degenerate_generator_raises(self):
        class AlwaysZero(np.random.Generator):
            def __init__(self):
                super().__init__(np.random.PCG64(0))

            def normal(self, *args, **kwargs):
                return np.zeros(kwargs.get("size", args[-1] if args else None))

        with pytest.raises(ValidationError, match="distinct unit directions"):
            direction_grid(3, 4, random_state=AlwaysZero())

    def test_healthy_generator_grid_unchanged(self):
        """The degeneracy guards must not perturb grids from real RNGs:
        same rows, in order, as the raw bulk-draw construction (up to the
        1-ulp wiggle of per-row vs axis-reduced norms)."""
        rng = np.random.default_rng(12345)
        raw = rng.normal(size=(16, 5))
        raw /= np.linalg.norm(raw, axis=1, keepdims=True)
        grid = direction_grid(5, 16, random_state=12345)
        assert np.allclose(np.stack(grid), raw, rtol=0.0, atol=1e-14)


class TestExponentialMechanismLearner:
    def test_temperature_calibration(self):
        learner = ExponentialMechanismLearner(
            2, epsilon=1.0, sample_size=200, resolution=16
        )
        assert learner.temperature == pytest.approx(100.0)
        assert learner.epsilon == pytest.approx(1.0)

    def test_learns_at_large_epsilon(self, data):
        task, (x, y) = data
        learner = ExponentialMechanismLearner(
            2, epsilon=50.0, sample_size=len(y), resolution=32
        ).fit(x, y, random_state=8)
        assert learner.accuracy(x, y) > 0.85

    def test_posterior_flat_at_tiny_epsilon(self, data):
        _, (x, y) = data
        learner = ExponentialMechanismLearner(
            2, epsilon=1e-4, sample_size=len(y), resolution=16
        )
        dist = learner.output_distribution(x, y)
        assert dist.entropy() == pytest.approx(np.log(16), abs=1e-3)

    def test_posterior_concentrates_at_large_epsilon(self, data):
        _, (x, y) = data
        learner = ExponentialMechanismLearner(
            2, epsilon=100.0, sample_size=len(y), resolution=16
        )
        dist = learner.output_distribution(x, y)
        assert dist.probability_of(dist.mode()) > 0.9

    def test_exact_privacy_audit_on_tiny_instance(self):
        """End-to-end Theorem 4.1 on the learner itself: exact audit over a
        4-point data universe."""
        from repro.privacy import ExactPrivacyAuditor

        learner = ExponentialMechanismLearner(
            2, epsilon=1.0, sample_size=2, resolution=8
        )
        universe = [
            ((1.0, 0.0), 1),
            ((-1.0, 0.0), -1),
            ((0.0, 1.0), 1),
            ((0.0, -1.0), -1),
        ]
        auditor = ExactPrivacyAuditor(learner.estimator.output_distribution)
        report = auditor.audit(universe, n=2, claimed_epsilon=1.0)
        assert report.satisfied
