"""Unit tests for the data-independent bounds and the §3 comparison."""

import numpy as np
import pytest

from repro.core.uniform_bounds import (
    compare_uniform_vs_pac_bayes,
    occam_bound,
    vc_bound,
)
from repro.exceptions import ValidationError
from repro.learning import GaussianThresholdTask, PredictorGrid


class TestOccamBound:
    def test_formula(self):
        out = occam_bound(0.1, class_size=100, n=400, delta=0.05)
        expected = 0.1 + np.sqrt((np.log(100) + np.log(20)) / 800)
        assert out == pytest.approx(expected)

    def test_grows_with_class_size(self):
        small = occam_bound(0.1, 10, 100, 0.05)
        large = occam_bound(0.1, 10_000, 100, 0.05)
        assert large > small

    def test_shrinks_with_n(self):
        assert occam_bound(0.1, 100, 10_000, 0.05) < occam_bound(
            0.1, 100, 100, 0.05
        )

    def test_validates(self):
        with pytest.raises(ValidationError):
            occam_bound(0.1, 0, 100, 0.05)


class TestVcBound:
    def test_shrinks_with_n(self):
        assert vc_bound(0.1, 1, 10_000, 0.05) < vc_bound(0.1, 1, 100, 0.05)

    def test_grows_with_dimension(self):
        assert vc_bound(0.1, 10, 1000, 0.05) > vc_bound(0.1, 1, 1000, 0.05)

    def test_requires_enough_data(self):
        with pytest.raises(ValidationError):
            vc_bound(0.1, 50, 10, 0.05)

    def test_coverage_monte_carlo(self):
        """The VC bound (d=1, thresholds) holds uniformly over the grid on
        every draw — coverage must be ≥ 1-δ (in fact ≈ 1)."""
        task = GaussianThresholdTask(mu=1.0, sigma=1.0)
        thetas = np.linspace(-2, 2, 41)
        delta, n = 0.1, 200
        rng = np.random.default_rng(0)
        violations = 0
        trials = 200
        for _ in range(trials):
            x, y = task.sample(n, random_state=rng)
            for t in thetas[::8]:  # spot-check a sub-grid each draw
                emp = task.empirical_risk(t, x, y)
                if task.true_risk(t) > vc_bound(emp, 1, n, delta):
                    violations += 1
                    break
        assert violations / trials <= delta


class TestSection3Comparison:
    @pytest.fixture
    def setup(self):
        task = GaussianThresholdTask(mu=1.0, sigma=1.0)
        x, y = task.sample(400, random_state=1)
        grid = PredictorGrid(
            np.linspace(-2.0, 2.0, 41),
            lambda t, z: float(task.zero_one_loss(t, [z[0]], [z[1]])[0]),
            loss_bounds=(0.0, 1.0),
        )
        sample = list(zip(x, y))
        return task, grid, sample

    def test_all_certificates_cover_their_targets(self, setup):
        task, grid, sample = setup
        out = compare_uniform_vs_pac_bayes(grid, sample, vc_dimension=1)
        # Occam/VC certify the ERM; the grid ERM's true risk:
        risks = grid.empirical_risks(sample)
        erm_theta = grid.thetas[int(np.argmin(risks))]
        erm_true = task.true_risk(erm_theta)
        assert out["occam"] >= erm_true
        assert out["vc"] >= erm_true

    def test_pac_bayes_tighter_than_vc(self, setup):
        """The paper's §3 claim, measured: the data-dependent certificate
        beats the VC bound on the same task."""
        _, grid, sample = setup
        out = compare_uniform_vs_pac_bayes(grid, sample, vc_dimension=1)
        assert out["seeger"] < out["vc"]

    def test_returns_all_keys(self, setup):
        _, grid, sample = setup
        out = compare_uniform_vs_pac_bayes(grid, sample, vc_dimension=1)
        assert set(out) == {
            "erm_empirical_risk",
            "gibbs_empirical_risk",
            "occam",
            "vc",
            "catoni",
            "seeger",
        }
