"""Serving front-door tests: clocks, tenants, batching, robustness.

The deterministic backbone is :class:`SimulatedClock`: every test drives
its coroutines on a virtual timeline, so timing-dependent behaviour
(flush windows, timeouts, drain ordering) is exact and replayable, never
sleep-and-hope.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import (
    PrivacyBudgetError,
    ServiceClosedError,
    ServingError,
    ServingTimeoutError,
    ValidationError,
)
from repro.mechanisms import LaplaceMechanism, PrivacySpec
from repro.observability import Tracer, ledger_totals, tracing
from repro.serving import (
    ReleaseService,
    ServiceConfig,
    ShardedAccountant,
    SimulatedClock,
    TenantRegistry,
)
from repro.testing.statistical import derive_seed
from repro.utils.validation import check_random_state

DATASET = [0.1, 0.4, 0.7]


def make_service(
    clock,
    *,
    budget=PrivacySpec(100.0),
    seed=11,
    shards=2,
    tenants=("alice",),
    epsilon=0.5,
    **config,
):
    """A registry + service + Laplace mechanism wired for one test."""
    registry = TenantRegistry()
    for tenant_id in tenants:
        registry.register(tenant_id, budget, seed=seed, shards=shards)
    service = ReleaseService(
        registry, clock=clock, config=ServiceConfig(**config)
    )
    service.add_mechanism(
        "sum", LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, epsilon)
    )
    return service


def tenant_stream(tenant_id, seed):
    """The generator a tenant's releases draw from, re-derived."""
    return check_random_state(
        derive_seed("tenant", tenant_id, base_seed=seed)
    )


class TestSimulatedClock:
    def test_sleep_orders_by_deadline_then_registration(self):
        clock = SimulatedClock()
        wakes = []

        async def sleeper(name, seconds):
            await clock.sleep(seconds)
            wakes.append((name, clock.now()))

        async def main():
            await asyncio.gather(
                sleeper("slow", 3.0), sleeper("fast", 1.0),
                sleeper("tie-a", 2.0), sleeper("tie-b", 2.0),
            )

        clock.run(main())
        assert wakes == [
            ("fast", 1.0), ("tie-a", 2.0), ("tie-b", 2.0), ("slow", 3.0)
        ]

    def test_runs_in_virtual_time_not_wall_time(self):
        clock = SimulatedClock()

        async def main():
            await clock.sleep(3600.0)
            return clock.now()

        assert clock.run(main()) == 3600.0

    def test_wait_for_times_out_on_the_virtual_timeline(self):
        clock = SimulatedClock()

        async def main():
            never = asyncio.get_running_loop().create_future()
            with pytest.raises(ServingTimeoutError):
                await clock.wait_for(never, 2.5)
            return clock.now()

        assert clock.run(main()) == 2.5

    def test_wait_for_returns_early_result(self):
        clock = SimulatedClock()

        async def main():
            future = asyncio.get_running_loop().create_future()

            async def resolver():
                await clock.sleep(1.0)
                future.set_result("done")

            task = asyncio.ensure_future(resolver())
            result = await clock.wait_for(future, 10.0)
            await task
            return result, clock.now()

        assert clock.run(main()) == ("done", 1.0)

    def test_deadlock_is_detected_not_hung(self):
        clock = SimulatedClock()

        async def main():
            await asyncio.get_running_loop().create_future()

        with pytest.raises(ServingError, match="deadlock"):
            clock.run(main())


class TestShardedAccountant:
    def test_budget_is_split_and_enforced(self):
        accountant = ShardedAccountant(PrivacySpec(1.0), shards=4)
        spent = 0
        while accountant.try_charge(PrivacySpec(0.25)):
            spent += 1
        assert spent == 4
        assert accountant.spent_epsilon == pytest.approx(1.0)
        assert not accountant.try_charge(PrivacySpec(0.25))

    def test_refusal_emits_exactly_one_event(self):
        accountant = ShardedAccountant(PrivacySpec(1.0), shards=4)
        tracer = Tracer("shard-refusal")
        with tracing(tracer):
            with pytest.raises(PrivacyBudgetError):
                accountant.charge(PrivacySpec(0.9))
        refusals = [e for e in tracer.events if e.kind == "refusal"]
        assert len(refusals) == 1
        assert tracer.metrics.counter("accountant.refusals") == 1

    def test_refund_restores_capacity(self):
        accountant = ShardedAccountant(PrivacySpec(1.0), shards=2)
        assert accountant.try_charge(PrivacySpec(0.5), label="r")
        accountant.refund(PrivacySpec(0.5), label="r")
        assert accountant.spent_epsilon == 0.0
        assert accountant.try_charge(PrivacySpec(0.5), label="r")

    def test_refund_without_charge_raises(self):
        accountant = ShardedAccountant(PrivacySpec(1.0), shards=2)
        with pytest.raises(ValidationError, match="refund"):
            accountant.refund(PrivacySpec(0.5))

    def test_fragmentation_refuses_early_never_overspends(self):
        # A 0.6 charge cannot fit any 0.5-capacity shard even though the
        # pooled remainder would cover it: refusal, not overshoot.
        accountant = ShardedAccountant(PrivacySpec(1.0), shards=2)
        assert not accountant.try_charge(PrivacySpec(0.6))
        assert accountant.spent_epsilon == 0.0


class TestTenantRegistry:
    def test_duplicate_registration_rejected(self):
        registry = TenantRegistry()
        registry.register("a", PrivacySpec(1.0))
        with pytest.raises(ValidationError, match="already registered"):
            registry.register("a", PrivacySpec(1.0))

    def test_unknown_tenant_rejected(self):
        with pytest.raises(ValidationError, match="unknown tenant"):
            TenantRegistry().get("ghost")

    def test_tenant_stream_is_deterministic(self):
        first = TenantRegistry().register("a", PrivacySpec(1.0), seed=3)
        second = TenantRegistry().register("a", PrivacySpec(1.0), seed=3)
        assert first.rng.standard_normal() == second.rng.standard_normal()


class TestBatching:
    def test_concurrent_requests_coalesce_into_one_flush(self):
        clock = SimulatedClock()
        service = make_service(clock, flush_window=0.05)
        tracer = Tracer("coalesce")

        async def main():
            return await asyncio.gather(
                *(service.submit("alice", "sum", DATASET, n=1) for _ in range(6))
            )

        with tracing(tracer):
            results = clock.run(main())
        assert tracer.metrics.counter("serving.flushes") == 1
        assert tracer.metrics.counter("serving.released") == 6
        assert all(len(piece) == 1 for piece in results)

    def test_batched_outputs_bit_identical_to_sequential(self):
        """The coalesced flush must be stream-equivalent to serving the
        same requests one by one from the tenant's generator."""
        seed = 29
        requests = [1, 2, 3, 1]

        def serve_all(batching):
            clock = SimulatedClock()
            service = make_service(
                clock, seed=seed, flush_window=0.05, batching=batching
            )

            async def main():
                results = await asyncio.gather(
                    *(
                        service.submit("alice", "sum", DATASET, n=n)
                        for n in requests
                    )
                )
                await service.drain()
                return [value for piece in results for value in piece]

            return clock.run(main())

        batched = serve_all(batching=True)
        sequential = serve_all(batching=False)
        assert batched == sequential
        # And both equal one direct release_many on the tenant stream.
        mechanism = LaplaceMechanism(lambda d: float(np.sum(d)), 1.0, 0.5)
        direct = mechanism.release_many(
            DATASET, sum(requests), random_state=tenant_stream("alice", seed)
        )
        assert batched == list(direct)

    def test_max_batch_flushes_ahead_of_the_window(self):
        clock = SimulatedClock()
        service = make_service(clock, flush_window=1e9, max_batch=4)

        async def main():
            results = await asyncio.gather(
                *(service.submit("alice", "sum", DATASET) for _ in range(4))
            )
            return results, clock.now()

        results, elapsed = clock.run(main())
        assert len(results) == 4
        assert elapsed == 0.0  # never waited for the (absurd) window

    def test_distinct_datasets_do_not_coalesce(self):
        clock = SimulatedClock()
        service = make_service(clock, flush_window=0.05)
        other = [9.0, 9.5]
        tracer = Tracer("keys")

        async def main():
            return await asyncio.gather(
                service.submit("alice", "sum", DATASET),
                service.submit("alice", "sum", other),
            )

        with tracing(tracer):
            clock.run(main())
        assert tracer.metrics.counter("serving.flushes") == 2


class TestAdmissionControl:
    def test_over_budget_tenant_is_refused_before_release(self):
        clock = SimulatedClock()
        service = make_service(
            clock, budget=PrivacySpec(1.0), epsilon=0.4, flush_window=0.01,
            shards=1,
        )
        tracer = Tracer("admission")

        async def main():
            outcomes = []
            for _ in range(4):
                try:
                    await service.submit("alice", "sum", DATASET)
                    outcomes.append("ok")
                except PrivacyBudgetError:
                    outcomes.append("refused")
            return outcomes

        with tracing(tracer):
            outcomes = clock.run(main())
        assert outcomes == ["ok", "ok", "refused", "refused"]
        # Refused requests never reached the mechanism: releases == charges.
        assert tracer.metrics.counter("serving.released") == 2
        refusals = [e for e in tracer.events if e.kind == "refusal"]
        assert len(refusals) == 2
        # Ledger reconstruction: net charge events equal accountant spend.
        spent = service.registry.get("alice").accountant.spent_epsilon
        assert ledger_totals(tracer.events, kinds=("charge", "refund"))[0] == (
            pytest.approx(spent)
        )

    def test_unknown_mechanism_and_bad_n_are_usage_errors(self):
        clock = SimulatedClock()
        service = make_service(clock)

        async def main():
            with pytest.raises(ValidationError, match="unknown mechanism"):
                await service.submit("alice", "median", DATASET)
            with pytest.raises(ValidationError, match="n must be"):
                await service.submit("alice", "sum", DATASET, n=0)

        clock.run(main())


class TestShutdown:
    def test_drain_flushes_pending_batches_early(self):
        clock = SimulatedClock()
        service = make_service(clock, flush_window=1e9)

        async def main():
            pending = asyncio.ensure_future(
                service.submit("alice", "sum", DATASET)
            )
            await asyncio.sleep(0)
            await service.drain()
            return await pending, clock.now()

        outputs, elapsed = clock.run(main())
        assert len(outputs) == 1
        assert elapsed == 0.0

    def test_submit_after_shutdown_is_refused(self):
        clock = SimulatedClock()
        service = make_service(clock)

        async def main():
            await service.drain()
            with pytest.raises(ServiceClosedError):
                await service.submit("alice", "sum", DATASET)

        clock.run(main())

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            ServiceConfig(flush_window=-1.0)
        with pytest.raises(ValidationError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ValidationError):
            ServiceConfig(request_timeout=0.0)
        with pytest.raises(ValidationError):
            ServiceConfig(max_retries=-1)
