"""Unit tests for Fano lower bounds."""

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information import DiscreteChannel
from repro.information.fano import (
    bayes_identification_error,
    dp_identification_lower_bound,
    fano_error_lower_bound,
    verify_fano,
)


class TestFanoBound:
    def test_zero_information_forces_near_chance(self):
        assert fano_error_lower_bound(0.0, 16) == pytest.approx(
            1.0 - np.log(2) / np.log(16)
        )

    def test_enough_information_makes_bound_vacuous(self):
        assert fano_error_lower_bound(10.0, 4) == 0.0

    def test_monotone_in_information(self):
        bounds = [fano_error_lower_bound(i, 32) for i in [0.0, 0.5, 1.0, 2.0]]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    def test_rejects_k_one(self):
        with pytest.raises(ValidationError):
            fano_error_lower_bound(0.5, 1)


class TestDpLowerBound:
    def test_small_epsilon_forces_error(self):
        # ε = 0.01, n = 10, k = 1024: nε = 0.1 nats vs log k ≈ 6.9.
        bound = dp_identification_lower_bound(0.01, 10, 1024)
        assert bound > 0.8

    def test_large_budget_vacuous(self):
        assert dp_identification_lower_bound(1.0, 100, 4) == 0.0

    def test_monotone_in_k(self):
        small = dp_identification_lower_bound(0.05, 5, 8)
        large = dp_identification_lower_bound(0.05, 5, 4096)
        assert large >= small


class TestBayesError:
    def test_noiseless_channel_zero_error(self):
        channel = DiscreteChannel(range(3), range(3), np.eye(3))
        prior = DiscreteDistribution.uniform(range(3))
        assert bayes_identification_error(channel, prior) == pytest.approx(0.0)

    def test_useless_channel_chance_error(self):
        channel = DiscreteChannel(
            range(4), range(4), np.full((4, 4), 0.25)
        )
        prior = DiscreteDistribution.uniform(range(4))
        assert bayes_identification_error(channel, prior) == pytest.approx(0.75)

    def test_prior_support_checked(self):
        channel = DiscreteChannel(range(3), range(3), np.eye(3))
        prior = DiscreteDistribution.uniform(range(4))
        with pytest.raises(ValidationError):
            bayes_identification_error(channel, prior)


class TestVerifyFano:
    def test_holds_on_random_channels(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            matrix = rng.dirichlet(np.ones(5), size=6)
            channel = DiscreteChannel(range(6), range(5), matrix)
            prior = DiscreteDistribution(range(6), rng.dirichlet(np.ones(6)))
            report = verify_fano(channel, prior)
            assert report["holds"], report

    def test_holds_on_gibbs_learning_channel(self):
        """The secret-identification error of the paper's channel respects
        Fano with the channel's exact mutual information."""
        from repro.core import GibbsEstimator, LearningChannel
        from repro.learning import BernoulliTask, PredictorGrid

        task = BernoulliTask(p=0.5)  # uniform secret: Fano at full strength
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        estimator = GibbsEstimator.from_privacy(grid, 1.0, expected_sample_size=3)
        law = DiscreteDistribution([0, 1], [0.5, 0.5])
        learning = LearningChannel(law, 3, estimator.gibbs.posterior)
        report = verify_fano(learning.channel, learning.sample_law)
        assert report["holds"]
        # With ε = 1 on 8 equiprobable secrets the adversary stays near
        # chance: error ≥ 0.5.
        assert report["bayes_error"] > 0.5

    def test_dp_chain_dominates_exact_fano(self):
        """The a-priori DP lower bound never exceeds the exact-MI Fano
        bound (it uses a looser information cap)."""
        from repro.core import GibbsEstimator, LearningChannel
        from repro.learning import BernoulliTask, PredictorGrid

        task = BernoulliTask(p=0.5)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        n, epsilon = 3, 0.5
        estimator = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=n)
        law = DiscreteDistribution([0, 1], [0.5, 0.5])
        learning = LearningChannel(law, n, estimator.gibbs.posterior)
        report = verify_fano(learning.channel, learning.sample_law)
        chain = dp_identification_lower_bound(epsilon, n, k=2**n)
        assert chain <= report["fano_bound"] + 1e-12
        assert report["bayes_error"] >= chain - 1e-12
