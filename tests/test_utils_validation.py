"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import NotNormalizedError, ValidationError
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_random_state,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = check_random_state(42).uniform()
        b = check_random_state(42).uniform()
        assert a == b

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_legacy_random_state_is_bridged(self):
        legacy = np.random.RandomState(0)
        assert isinstance(check_random_state(legacy), np.random.Generator)

    def test_bad_seed_raises(self):
        with pytest.raises(ValidationError):
            check_random_state("not a seed")


class TestCheckArray:
    def test_coerces_lists(self):
        arr = check_array([1, 2, 3])
        assert arr.dtype == float
        assert arr.shape == (3,)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1.0, 2.0], ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="finite"):
            check_array([np.inf])

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValidationError, match="empty"):
            check_array([])

    def test_allows_empty_when_asked(self):
        assert check_array([], allow_empty=True).size == 0


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, strict=False)

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive(np.inf)

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_positive("three")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive(np.nan)

    def test_rejects_nan_even_when_not_strict(self):
        with pytest.raises(ValidationError):
            check_positive(np.nan, strict=False)

    def test_rejects_negative_inf(self):
        with pytest.raises(ValidationError):
            check_positive(-np.inf)

    def test_rejects_none(self):
        with pytest.raises(ValidationError):
            check_positive(None)

    def test_rejects_bool_like_containers(self):
        with pytest.raises(ValidationError):
            check_positive([1.0])

    def test_error_message_names_the_parameter(self):
        with pytest.raises(ValidationError, match="epsilon"):
            check_positive(-1.0, name="epsilon")


class TestPrivacyParameterEdgeCases:
    """The ε/δ validation paths dplint rule DPL002 relies on."""

    @pytest.mark.parametrize("epsilon", [0.0, -1.0, np.nan, np.inf, -np.inf])
    def test_degenerate_epsilon_rejected(self, epsilon):
        with pytest.raises(ValidationError):
            check_positive(epsilon, name="epsilon")

    @pytest.mark.parametrize("epsilon", ["1.0", None, [1.0], object()])
    def test_non_numeric_epsilon_rejected(self, epsilon):
        with pytest.raises(ValidationError):
            check_positive(epsilon, name="epsilon")

    @pytest.mark.parametrize("delta", [-1e-9, 1.0 + 1e-9, np.nan, np.inf])
    def test_out_of_range_delta_rejected(self, delta):
        with pytest.raises(ValidationError):
            check_in_range(delta, name="delta", low=0.0, high=1.0)

    @pytest.mark.parametrize("delta", [0.0, 1.0])
    def test_boundary_delta_rejected_when_exclusive(self, delta):
        with pytest.raises(ValidationError):
            check_in_range(
                delta, name="delta", low=0.0, high=1.0, inclusive=False
            )

    def test_nan_delta_rejected_even_inclusive(self):
        # NaN compares false against every bound, so it must not slip
        # through either branch of the range check.
        with pytest.raises(ValidationError):
            check_in_range(np.nan, name="delta", low=0.0, high=1.0)

    @pytest.mark.parametrize("delta", ["0.1", None, [0.5]])
    def test_non_numeric_delta_rejected(self, delta):
        with pytest.raises(ValidationError):
            check_in_range(delta, name="delta", low=0.0, high=1.0)

    def test_valid_epsilon_returned_as_float(self):
        value = check_positive(np.float64(0.5), name="epsilon")
        assert isinstance(value, float)
        assert value == 0.5

    def test_valid_delta_returned_as_float(self):
        value = check_in_range(1e-6, name="delta", low=0.0, high=1.0)
        assert isinstance(value, float)
        assert value == 1e-6


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(0.0, low=0.0, high=1.0) == 0.0
        assert check_in_range(1.0, low=0.0, high=1.0) == 1.0

    def test_exclusive_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, low=0.0, high=1.0, inclusive=False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, low=0.0, high=1.0)


class TestCheckProbabilityVector:
    def test_valid_vector_renormalized_exactly(self):
        out = check_probability_vector([0.25, 0.75])
        assert out.sum() == pytest.approx(1.0, abs=0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="nonnegative"):
            check_probability_vector([-0.1, 1.1])

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(NotNormalizedError):
            check_probability_vector([0.5, 0.4])

    def test_accepts_within_tolerance(self):
        out = check_probability_vector([0.5, 0.5 + 1e-10])
        assert out.sum() == pytest.approx(1.0)
