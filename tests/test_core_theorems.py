"""The paper's claims as executable checks — all must HOLD."""

import numpy as np
import pytest

from repro.core.theorems import (
    check_exponential_mechanism_privacy,
    check_gibbs_bound_optimality,
    check_gibbs_channel_consistency,
    check_gibbs_privacy,
    check_tradeoff_fixed_point,
)
from repro.distributions import DiscreteDistribution
from repro.learning import BernoulliTask, PredictorGrid, empirical_risk_matrix
from repro.mechanisms import ExponentialMechanism


@pytest.fixture
def task():
    return BernoulliTask(p=0.7)


@pytest.fixture
def grid(task):
    return PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)


class TestTheorem41:
    @pytest.mark.parametrize("temperature", [0.5, 2.0, 10.0])
    def test_holds_across_temperatures(self, grid, temperature):
        report = check_gibbs_privacy(grid, temperature, universe=[0, 1], n=3)
        assert report.holds, str(report)

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_holds_across_sample_sizes(self, grid, n):
        report = check_gibbs_privacy(grid, 3.0, universe=[0, 1], n=n)
        assert report.holds, str(report)

    def test_measured_positive_and_below_claim(self, grid):
        report = check_gibbs_privacy(grid, 5.0, universe=[0, 1], n=2)
        assert 0 < report.measured <= report.claimed

    def test_nonuniform_prior(self, grid):
        prior = DiscreteDistribution(grid.thetas, [0.4, 0.3, 0.1, 0.1, 0.1])
        report = check_gibbs_privacy(
            grid, 4.0, universe=[0, 1], n=2, prior=prior
        )
        assert report.holds

    def test_claim_scales_with_temperature(self, grid):
        low = check_gibbs_privacy(grid, 1.0, universe=[0, 1], n=2)
        high = check_gibbs_privacy(grid, 4.0, universe=[0, 1], n=2)
        assert high.claimed == pytest.approx(4 * low.claimed)

    def test_report_str(self, grid):
        report = check_gibbs_privacy(grid, 1.0, universe=[0, 1], n=2)
        assert "Theorem 4.1" in str(report)
        assert "HOLDS" in str(report)


class TestTheorem25:
    def test_calibrated_mechanism(self):
        mech = ExponentialMechanism(
            lambda d, u: -abs(sum(d) - u),
            outputs=range(4),
            sensitivity=1.0,
            epsilon=1.0,
        )
        report = check_exponential_mechanism_privacy(mech, universe=[0, 1], n=3)
        assert report.holds

    def test_raw_paper_parametrization(self):
        mech = ExponentialMechanism(
            lambda d, u: -abs(sum(d) - u),
            outputs=range(4),
            sensitivity=1.0,
            epsilon=0.7,
            calibrated=False,
        )
        report = check_exponential_mechanism_privacy(mech, universe=[0, 1], n=3)
        assert report.holds
        assert report.claimed == pytest.approx(2 * 0.7 * 1.0)


class TestLemma32:
    def test_holds(self, task, grid):
        sample = list(task.sample(30, random_state=0))
        prior = DiscreteDistribution.uniform(grid.thetas)
        risks = grid.empirical_risks(sample)
        report = check_gibbs_bound_optimality(
            prior, risks, temperature=6.0, random_state=1
        )
        assert report.holds, str(report)

    def test_holds_with_skewed_prior(self, task, grid):
        sample = list(task.sample(30, random_state=2))
        prior = DiscreteDistribution(grid.thetas, [0.5, 0.2, 0.1, 0.1, 0.1])
        risks = grid.empirical_risks(sample)
        report = check_gibbs_bound_optimality(
            prior, risks, temperature=2.0, random_state=3
        )
        assert report.holds

    def test_details_contain_free_energy(self, task, grid):
        sample = list(task.sample(10, random_state=4))
        prior = DiscreteDistribution.uniform(grid.thetas)
        report = check_gibbs_bound_optimality(
            prior, grid.empirical_risks(sample), 1.0, random_state=5
        )
        assert report.details["identity_gap"] < 1e-8


class TestTheorem42:
    @pytest.fixture
    def instance(self, task, grid):
        datasets = [(0, 0), (0, 1), (1, 0), (1, 1)]
        risks = empirical_risk_matrix(
            lambda t, z: abs(t - z), grid.thetas, [list(d) for d in datasets]
        )
        p = task.p
        source = np.array([(1 - p) ** 2, (1 - p) * p, p * (1 - p), p**2])
        return source, risks

    @pytest.mark.parametrize("epsilon", [0.3, 1.0, 5.0])
    def test_holds_across_epsilons(self, instance, epsilon):
        source, risks = instance
        report = check_tradeoff_fixed_point(
            source, risks, epsilon, random_state=0
        )
        assert report.holds, str(report)

    def test_gibbs_deviation_tiny(self, instance):
        source, risks = instance
        report = check_tradeoff_fixed_point(source, risks, 1.0, random_state=1)
        assert report.details["gibbs_deviation"] < 1e-7

    def test_information_reported(self, instance):
        source, risks = instance
        report = check_tradeoff_fixed_point(source, risks, 2.0, random_state=2)
        assert report.details["mutual_information"] >= 0


class TestIdentification:
    def test_exponential_mechanism_equals_gibbs_kernel(self):
        rng = np.random.default_rng(0)
        risks = rng.uniform(size=(6, 4))
        prior = rng.dirichlet(np.ones(4))
        report = check_gibbs_channel_consistency(prior, risks, temperature=3.0)
        assert report.holds
