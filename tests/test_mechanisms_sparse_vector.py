"""Unit tests for the sparse vector technique."""

import numpy as np
import pytest

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms import SparseVector, above_threshold


class TestSparseVector:
    def test_requires_start(self):
        sv = SparseVector(threshold=10.0, sensitivity=1.0, epsilon=1.0)
        with pytest.raises(ValidationError):
            sv.query(5.0)

    def test_finds_obvious_above(self):
        sv = SparseVector(threshold=0.0, sensitivity=1.0, epsilon=10.0)
        sv.start(random_state=0)
        assert sv.query(1_000.0) is True

    def test_rejects_obvious_below(self):
        sv = SparseVector(threshold=1_000.0, sensitivity=1.0, epsilon=10.0)
        sv.start(random_state=0)
        assert sv.query(-1_000.0) is False

    def test_halts_after_budget(self):
        sv = SparseVector(0.0, 1.0, 10.0, max_positives=2)
        sv.start(random_state=1)
        assert sv.query(1_000.0)
        assert not sv.halted
        assert sv.query(1_000.0)
        assert sv.halted
        with pytest.raises(PrivacyBudgetError):
            sv.query(1_000.0)

    def test_below_threshold_queries_are_free(self):
        """Arbitrarily many below-threshold queries never halt it."""
        sv = SparseVector(1_000.0, 1.0, 1.0)
        sv.start(random_state=2)
        for _ in range(500):
            sv.query(0.0)
        assert not sv.halted

    def test_release_batch_interface(self):
        queries = [lambda d, k=k: float(sum(d)) - k for k in range(5)]
        sv = SparseVector(threshold=0.0, sensitivity=1.0, epsilon=50.0)
        answers = sv.release(([1, 1, 1], queries), random_state=3)
        # First query (3 - 0 = 3 >= 0) fires with overwhelming probability
        # at ε = 50; release stops after the single allowed positive.
        assert answers[-1] is True
        assert len(answers) <= 5

    def test_borderline_queries_are_randomized(self):
        sv = SparseVector(threshold=0.0, sensitivity=1.0, epsilon=0.5)
        answers = []
        for seed in range(200):
            sv.start(random_state=seed)
            answers.append(sv.query(0.0))
        rate = np.mean(answers)
        assert 0.2 < rate < 0.8

    def test_reset_on_start(self):
        sv = SparseVector(0.0, 1.0, 10.0)
        sv.start(random_state=4)
        sv.query(1_000.0)
        assert sv.halted
        sv.start(random_state=5)
        assert not sv.halted

    def test_rejects_bad_max_positives(self):
        with pytest.raises(ValidationError):
            SparseVector(0.0, 1.0, 1.0, max_positives=0)


class TestAboveThreshold:
    def test_finds_first_above(self):
        data = [1] * 10
        queries = [lambda d, k=k: float(sum(d) - 100 + 95 * (k == 3)) for k in range(6)]
        # Query 3 evaluates to 5, others to -90; with high epsilon it wins.
        index = above_threshold(data, queries, threshold=0.0, epsilon=50.0,
                                random_state=0)
        assert index == 3

    def test_returns_none_when_all_far_below(self):
        data = [0]
        queries = [lambda d: -1_000.0 for _ in range(10)]
        assert above_threshold(
            data, queries, threshold=0.0, epsilon=10.0, random_state=1
        ) is None

    def test_empirical_privacy_of_answer_pattern(self):
        """Sampled audit of the full answer vector on a neighbour pair:
        the measured loss stays within the ε budget (with sampling slack)."""
        from repro.privacy import SampledPrivacyAuditor

        epsilon = 0.4
        queries = [lambda d: float(sum(d))] * 3

        def release(dataset, random_state=None):
            sv = SparseVector(threshold=1.5, sensitivity=1.0, epsilon=epsilon)
            return tuple(sv.release((list(dataset), queries), random_state=random_state))

        auditor = SampledPrivacyAuditor(release, n_samples=30_000)
        report = auditor.audit_pair([1, 1], [1, 0], random_state=2)
        assert report.measured_epsilon <= epsilon + 0.1
