"""Unit tests for local DP frequency estimation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.privacy.local import (
    KRandomizedResponse,
    UnaryEncoding,
    clip_and_renormalize,
)

CATEGORIES = ["a", "b", "c", "d"]


def sample_records(rng, n=40_000, weights=(0.5, 0.25, 0.15, 0.1)):
    return rng.choice(CATEGORIES, size=n, p=weights).tolist()


class TestKRandomizedResponse:
    def test_probabilities_sum_correctly(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        k = len(CATEGORIES)
        total = mech.truth_probability + (k - 1) * mech.lie_probability
        assert total == pytest.approx(1.0)

    def test_per_record_ratio_is_exactly_epsilon(self):
        eps = 1.3
        mech = KRandomizedResponse(CATEGORIES, epsilon=eps)
        assert np.log(
            mech.truth_probability / mech.lie_probability
        ) == pytest.approx(eps)

    def test_randomize_stays_in_categories(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert mech.randomize("a", random_state=rng) in CATEGORIES

    def test_rejects_unknown_value(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.randomize("z")

    def test_frequency_estimation_debiased(self):
        rng = np.random.default_rng(1)
        records = sample_records(rng)
        mech = KRandomizedResponse(CATEGORIES, epsilon=2.0)
        reports = mech.release(records, random_state=rng)
        estimates = mech.estimate_frequencies(reports)
        assert estimates == pytest.approx([0.5, 0.25, 0.15, 0.1], abs=0.02)

    def test_estimates_sum_to_one(self):
        rng = np.random.default_rng(2)
        records = sample_records(rng, n=5_000)
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        reports = mech.release(records, random_state=rng)
        assert mech.estimate_frequencies(reports).sum() == pytest.approx(1.0)

    def test_variance_formula_conservative(self):
        rng = np.random.default_rng(3)
        n = 5_000
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        estimates = []
        records = sample_records(rng, n=n)
        for _ in range(200):
            reports = mech.release(records, random_state=rng)
            estimates.append(mech.estimate_frequencies(reports)[0])
        assert np.var(estimates) <= mech.estimator_variance(n) * 1.2

    def test_needs_two_categories(self):
        with pytest.raises(ValidationError):
            KRandomizedResponse(["only"], epsilon=1.0)


class TestUnaryEncoding:
    def test_randomize_shape(self):
        mech = UnaryEncoding(CATEGORIES, epsilon=1.0)
        bits = mech.randomize("b", random_state=0)
        assert bits.shape == (4,)
        assert set(bits.tolist()) <= {0, 1}

    def test_bit_keep_probability(self):
        eps = 2.0
        mech = UnaryEncoding(CATEGORIES, epsilon=eps)
        assert mech.keep_probability == pytest.approx(
            np.exp(1.0) / (np.exp(1.0) + 1)
        )

    def test_frequency_estimation_debiased(self):
        rng = np.random.default_rng(4)
        records = sample_records(rng)
        mech = UnaryEncoding(CATEGORIES, epsilon=2.0)
        reports = mech.release(records, random_state=rng)
        estimates = mech.estimate_frequencies(reports)
        assert estimates == pytest.approx([0.5, 0.25, 0.15, 0.1], abs=0.02)

    def test_rejects_bad_matrix(self):
        mech = UnaryEncoding(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.estimate_frequencies(np.zeros((5, 3)))

    def test_unary_beats_krr_for_many_categories(self):
        """The reason UE exists: with many categories at small ε its
        estimator variance is lower than k-RR's."""
        categories = list(range(64))
        eps, n = 1.0, 10_000
        krr = KRandomizedResponse(categories, epsilon=eps)
        unary = UnaryEncoding(categories, epsilon=eps)
        assert unary.estimator_variance(n) < krr.estimator_variance(n)

    def test_krr_competitive_for_few_categories(self):
        categories = ["x", "y"]
        eps, n = 1.0, 10_000
        krr = KRandomizedResponse(categories, epsilon=eps)
        unary = UnaryEncoding(categories, epsilon=eps)
        assert krr.estimator_variance(n) < unary.estimator_variance(n)

class TestLocalMechanismEdgeCases:
    """Edge cases shared by the frequency-oracle mechanisms."""

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    def test_single_category_domain_rejected(self, cls):
        with pytest.raises(ValidationError):
            cls(["only"], epsilon=1.0)

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    def test_duplicate_categories_rejected(self, cls):
        with pytest.raises(ValidationError):
            cls(["a", "b", "a"], epsilon=1.0)

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    @pytest.mark.parametrize(
        "epsilon", [0.0, -1.0, float("nan"), float("inf")]
    )
    def test_epsilon_boundaries_rejected(self, cls, epsilon):
        """ε must be strictly positive and finite — 0, negatives, NaN and
        inf all fail validation, not arithmetic."""
        with pytest.raises(ValidationError):
            cls(CATEGORIES, epsilon=epsilon)

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    def test_unknown_record_rejected_by_privatize(self, cls):
        mech = cls(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize("z", random_state=0)

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    def test_unknown_record_rejected_by_privatize_many(self, cls):
        mech = cls(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize_many(["a", "b", "z"], random_state=0)

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    def test_unhashable_record_rejected(self, cls):
        mech = cls(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize(["not", "hashable"], random_state=0)

    def test_unknown_report_rejected_by_estimator(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.estimate_frequencies(["a", "z"])

    @pytest.mark.parametrize("cls", [KRandomizedResponse, UnaryEncoding])
    def test_empty_batch_rejected(self, cls):
        mech = cls(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.privatize_many([], random_state=0)


class TestPrivatizeManyBitIdentity:
    """The vectorized kernels must be stream-equivalent to per-record
    calls: same Generator state in, identical reports out (DPL001 /
    release_many discipline, extended to the local model)."""

    def test_krr_matches_sequential_privatize(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        rng = np.random.default_rng(7)
        records = sample_records(rng, n=2_000)
        serial = [
            mech.privatize(r, random_state=np.random.default_rng(42))
            for r in records[:1]
        ]
        batch_rng = np.random.default_rng(42)
        seq_rng = np.random.default_rng(42)
        batch = mech.privatize_many(records, random_state=batch_rng)
        sequential = [
            mech.privatize(r, random_state=seq_rng) for r in records
        ]
        assert batch == sequential
        assert serial[0] == batch[0]
        # Both consume the same number of uniforms: the streams stay
        # aligned for whatever draws next.
        assert batch_rng.uniform() == seq_rng.uniform()

    def test_unary_matches_sequential_privatize(self):
        mech = UnaryEncoding(CATEGORIES, epsilon=1.0)
        records = sample_records(np.random.default_rng(8), n=500)
        batch_rng = np.random.default_rng(43)
        seq_rng = np.random.default_rng(43)
        batch = mech.privatize_many(records, random_state=batch_rng)
        sequential = [
            mech.privatize(r, random_state=seq_rng) for r in records
        ]
        assert len(batch) == len(sequential)
        for got, expected in zip(batch, sequential):
            np.testing.assert_array_equal(got, expected)
        assert batch_rng.uniform() == seq_rng.uniform()

    def test_release_matches_privatize_many(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        records = sample_records(np.random.default_rng(9), n=300)
        assert mech.release(records, random_state=5) == mech.privatize_many(
            records, random_state=5
        )


class TestClipAndRenormalize:
    """Regression: tiny-n debiased estimates can leave the simplex."""

    def test_tiny_sample_produces_negative_estimates(self):
        """Three identical truthful reports at large ε push the other
        coordinates' debiased estimates below zero — the bug fixed by
        the clip option."""
        mech = KRandomizedResponse(CATEGORIES, epsilon=6.0)
        raw = mech.estimate_frequencies(["a", "a", "a"])
        assert raw.min() < 0.0
        clipped = mech.estimate_frequencies(["a", "a", "a"], clip=True)
        assert clipped.min() >= 0.0
        assert clipped.sum() == pytest.approx(1.0)
        assert clipped.argmax() == 0

    def test_unary_clip_option(self):
        mech = UnaryEncoding(CATEGORIES, epsilon=6.0)
        reports = np.tile(np.array([1, 0, 0, 0]), (3, 1))
        raw = mech.estimate_frequencies(reports)
        assert raw.min() < 0.0
        clipped = mech.estimate_frequencies(reports, clip=True)
        assert clipped.min() >= 0.0
        assert clipped.sum() == pytest.approx(1.0)

    def test_all_clipped_to_zero_falls_back_to_uniform(self):
        out = clip_and_renormalize(np.array([-0.2, -0.1, -0.3]))
        assert out == pytest.approx([1 / 3, 1 / 3, 1 / 3])

    def test_in_simplex_input_is_unchanged(self):
        est = np.array([0.5, 0.25, 0.15, 0.1])
        assert clip_and_renormalize(est) == pytest.approx(est)

    @pytest.mark.parametrize(
        "bad",
        [
            np.zeros((2, 2)),
            np.array([]),
            np.array([0.5, np.nan]),
            np.array([0.5, np.inf]),
        ],
    )
    def test_invalid_inputs_rejected(self, bad):
        with pytest.raises(ValidationError):
            clip_and_renormalize(bad)
