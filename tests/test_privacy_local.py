"""Unit tests for local DP frequency estimation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.privacy.local import KRandomizedResponse, UnaryEncoding

CATEGORIES = ["a", "b", "c", "d"]


def sample_records(rng, n=40_000, weights=(0.5, 0.25, 0.15, 0.1)):
    return rng.choice(CATEGORIES, size=n, p=weights).tolist()


class TestKRandomizedResponse:
    def test_probabilities_sum_correctly(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        k = len(CATEGORIES)
        total = mech.truth_probability + (k - 1) * mech.lie_probability
        assert total == pytest.approx(1.0)

    def test_per_record_ratio_is_exactly_epsilon(self):
        eps = 1.3
        mech = KRandomizedResponse(CATEGORIES, epsilon=eps)
        assert np.log(
            mech.truth_probability / mech.lie_probability
        ) == pytest.approx(eps)

    def test_randomize_stays_in_categories(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert mech.randomize("a", random_state=rng) in CATEGORIES

    def test_rejects_unknown_value(self):
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.randomize("z")

    def test_frequency_estimation_debiased(self):
        rng = np.random.default_rng(1)
        records = sample_records(rng)
        mech = KRandomizedResponse(CATEGORIES, epsilon=2.0)
        reports = mech.release(records, random_state=rng)
        estimates = mech.estimate_frequencies(reports)
        assert estimates == pytest.approx([0.5, 0.25, 0.15, 0.1], abs=0.02)

    def test_estimates_sum_to_one(self):
        rng = np.random.default_rng(2)
        records = sample_records(rng, n=5_000)
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        reports = mech.release(records, random_state=rng)
        assert mech.estimate_frequencies(reports).sum() == pytest.approx(1.0)

    def test_variance_formula_conservative(self):
        rng = np.random.default_rng(3)
        n = 5_000
        mech = KRandomizedResponse(CATEGORIES, epsilon=1.0)
        estimates = []
        records = sample_records(rng, n=n)
        for _ in range(200):
            reports = mech.release(records, random_state=rng)
            estimates.append(mech.estimate_frequencies(reports)[0])
        assert np.var(estimates) <= mech.estimator_variance(n) * 1.2

    def test_needs_two_categories(self):
        with pytest.raises(ValidationError):
            KRandomizedResponse(["only"], epsilon=1.0)


class TestUnaryEncoding:
    def test_randomize_shape(self):
        mech = UnaryEncoding(CATEGORIES, epsilon=1.0)
        bits = mech.randomize("b", random_state=0)
        assert bits.shape == (4,)
        assert set(bits.tolist()) <= {0, 1}

    def test_bit_keep_probability(self):
        eps = 2.0
        mech = UnaryEncoding(CATEGORIES, epsilon=eps)
        assert mech.keep_probability == pytest.approx(
            np.exp(1.0) / (np.exp(1.0) + 1)
        )

    def test_frequency_estimation_debiased(self):
        rng = np.random.default_rng(4)
        records = sample_records(rng)
        mech = UnaryEncoding(CATEGORIES, epsilon=2.0)
        reports = mech.release(records, random_state=rng)
        estimates = mech.estimate_frequencies(reports)
        assert estimates == pytest.approx([0.5, 0.25, 0.15, 0.1], abs=0.02)

    def test_rejects_bad_matrix(self):
        mech = UnaryEncoding(CATEGORIES, epsilon=1.0)
        with pytest.raises(ValidationError):
            mech.estimate_frequencies(np.zeros((5, 3)))

    def test_unary_beats_krr_for_many_categories(self):
        """The reason UE exists: with many categories at small ε its
        estimator variance is lower than k-RR's."""
        categories = list(range(64))
        eps, n = 1.0, 10_000
        krr = KRandomizedResponse(categories, epsilon=eps)
        unary = UnaryEncoding(categories, epsilon=eps)
        assert unary.estimator_variance(n) < krr.estimator_variance(n)

    def test_krr_competitive_for_few_categories(self):
        categories = ["x", "y"]
        eps, n = 1.0, 10_000
        krr = KRandomizedResponse(categories, epsilon=eps)
        unary = UnaryEncoding(categories, epsilon=eps)
        assert krr.estimator_variance(n) < unary.estimator_variance(n)
