"""Unit tests for the optimizers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import gradient_descent, newton_method


def quadratic(center, scale=1.0):
    """A strongly convex quadratic with a known minimizer."""
    center = np.asarray(center, dtype=float)

    def objective(x):
        return 0.5 * scale * float((x - center) @ (x - center))

    def gradient(x):
        return scale * (x - center)

    def hessian(x):
        return scale * np.eye(center.size)

    return objective, gradient, hessian


class TestGradientDescent:
    def test_finds_quadratic_minimum(self):
        obj, grad, _ = quadratic([1.0, -2.0])
        result = gradient_descent(obj, grad, np.zeros(2))
        assert result.converged
        assert result.x == pytest.approx([1.0, -2.0], abs=1e-6)

    def test_ill_conditioned_quadratic(self):
        scales = np.array([100.0, 1.0])

        def obj(x):
            return 0.5 * float(scales @ (x**2))

        def grad(x):
            return scales * x

        result = gradient_descent(obj, grad, np.array([1.0, 1.0]), tol=1e-6)
        assert result.x == pytest.approx([0.0, 0.0], abs=1e-5)

    def test_monotone_objective(self):
        # Each iterate cannot increase the objective (Armijo backtracking).
        obj, grad, _ = quadratic([3.0])
        values = []

        def tracked(x):
            value = obj(x)
            values.append(value)
            return value

        gradient_descent(tracked, grad, np.array([0.0]), max_iterations=50)
        accepted = sorted(set(values), reverse=True)
        assert accepted[0] >= accepted[-1]

    def test_rejects_2d_x0(self):
        obj, grad, _ = quadratic([0.0])
        with pytest.raises(ValidationError):
            gradient_descent(obj, grad, np.zeros((2, 2)))

    def test_reports_gradient_norm(self):
        obj, grad, _ = quadratic([1.0])
        result = gradient_descent(obj, grad, np.array([5.0]))
        assert result.gradient_norm <= 1e-8

    def test_logistic_objective(self):
        # Mean logistic loss + ridge on a tiny dataset.
        x = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.5]])
        y = np.array([1.0, -1.0, -1.0])
        lam = 0.1

        def obj(theta):
            margins = y * (x @ theta)
            return float(np.log1p(np.exp(-margins)).mean()) + 0.5 * lam * float(
                theta @ theta
            )

        def grad(theta):
            margins = y * (x @ theta)
            sig = 1.0 / (1.0 + np.exp(margins))
            return -(x.T @ (sig * y)) / len(y) + lam * theta

        result = gradient_descent(obj, grad, np.zeros(2))
        assert result.converged
        assert np.linalg.norm(grad(result.x)) <= 1e-7


class TestNewtonMethod:
    def test_quadratic_in_one_step(self):
        obj, grad, hess = quadratic([2.0, 3.0], scale=4.0)
        result = newton_method(obj, grad, hess, np.zeros(2))
        assert result.converged
        assert result.iterations <= 3
        assert result.x == pytest.approx([2.0, 3.0], abs=1e-9)

    def test_matches_gradient_descent_solution(self):
        x = np.array([[1.0, 0.2], [-0.5, 1.0], [0.3, -0.8]])
        y = np.array([1.0, -1.0, 1.0])
        lam = 0.5

        def obj(theta):
            margins = y * (x @ theta)
            return float(np.log1p(np.exp(-margins)).mean()) + 0.5 * lam * float(
                theta @ theta
            )

        def grad(theta):
            margins = y * (x @ theta)
            sig = 1.0 / (1.0 + np.exp(margins))
            return -(x.T @ (sig * y)) / len(y) + lam * theta

        def hess(theta):
            margins = y * (x @ theta)
            sig = 1.0 / (1.0 + np.exp(-margins))
            w = sig * (1 - sig)
            return (x.T @ (x * w[:, None])) / len(y) + lam * np.eye(2)

        newton = newton_method(obj, grad, hess, np.zeros(2))
        gd = gradient_descent(obj, grad, np.zeros(2), tol=1e-10)
        assert newton.x == pytest.approx(gd.x, abs=1e-6)

    def test_singular_hessian_falls_back(self):
        # Hessian singular at the start: solver must still make progress.
        def obj(x):
            return float(x[0] ** 4 + x[0] ** 2)

        def grad(x):
            return np.array([4 * x[0] ** 3 + 2 * x[0]])

        def hess(x):
            return np.array([[12 * x[0] ** 2 + 2]])

        result = newton_method(obj, grad, hess, np.array([1.0]))
        assert abs(result.x[0]) < 1e-5
