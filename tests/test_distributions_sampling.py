"""Unit tests for the samplers."""

import warnings

import numpy as np
import pytest

from repro.distributions import (
    BatchedLangevinSampler,
    MetropolisHastingsSampler,
    inverse_cdf_sample,
    log_acceptance_ratio,
)
from repro.exceptions import ValidationError


class TestInverseCdfSample:
    def test_deterministic_mapping(self):
        indices = inverse_cdf_sample([0.2, 0.3, 0.5], [0.1, 0.25, 0.95])
        assert list(indices) == [0, 1, 2]

    def test_boundary_uniform_zero(self):
        assert inverse_cdf_sample([0.5, 0.5], [0.0])[0] == 0

    def test_boundary_uniform_one(self):
        assert inverse_cdf_sample([0.5, 0.5], [1.0])[0] == 1

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            inverse_cdf_sample([0.5, 0.6], [0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            inverse_cdf_sample([-0.1, 1.1], [0.5])

    def test_distribution_matches(self):
        rng = np.random.default_rng(0)
        uniforms = rng.uniform(size=100_000)
        indices = inverse_cdf_sample([0.1, 0.9], uniforms)
        assert np.mean(indices) == pytest.approx(0.9, abs=0.01)


class TestMetropolisHastings:
    def test_standard_normal_target(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float(x @ x), dimension=1, step_size=1.0
        )
        result = sampler.run(20_000, burn_in=2_000, random_state=0)
        assert result.samples.shape == (20_000, 1)
        assert result.samples.mean() == pytest.approx(0.0, abs=0.08)
        assert result.samples.std() == pytest.approx(1.0, abs=0.08)

    def test_acceptance_rate_reasonable(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float(x @ x), dimension=1, step_size=1.0
        )
        result = sampler.run(5_000, burn_in=500, random_state=1)
        assert 0.2 < result.acceptance_rate < 0.95

    def test_reproducible(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float(x @ x), dimension=2, step_size=0.5
        )
        a = sampler.run(100, burn_in=10, random_state=7)
        b = sampler.run(100, burn_in=10, random_state=7)
        assert np.array_equal(a.samples, b.samples)

    def test_shifted_target_mean(self):
        mu = np.array([2.0, -1.0])
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float((x - mu) @ (x - mu)),
            dimension=2,
            step_size=1.0,
        )
        result = sampler.run(30_000, burn_in=3_000, random_state=2)
        assert result.samples.mean(axis=0) == pytest.approx(mu, abs=0.1)

    def test_thinning_reduces_autocorrelation(self):
        def log_density(x):
            return -0.5 * float(x @ x)

        sampler = MetropolisHastingsSampler(log_density, dimension=1, step_size=0.3)
        unthinned = sampler.run(4_000, burn_in=500, thin=1, random_state=3)
        thinned = sampler.run(4_000, burn_in=500, thin=10, random_state=3)

        def lag1(samples):
            x = samples[:, 0]
            x = x - x.mean()
            return float((x[:-1] * x[1:]).mean() / (x**2).mean())

        assert lag1(thinned.samples) < lag1(unthinned.samples)

    def test_rejects_bad_initial(self):
        sampler = MetropolisHastingsSampler(lambda x: 0.0, dimension=2)
        with pytest.raises(ValidationError):
            sampler.run(10, initial=[1.0], random_state=0)

    def test_rejects_nonfinite_initial_density(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -np.inf, dimension=1
        )
        with pytest.raises(ValidationError):
            sampler.run(10, random_state=0)

    def test_rejects_bad_counts(self):
        sampler = MetropolisHastingsSampler(lambda x: 0.0, dimension=1)
        with pytest.raises(ValidationError):
            sampler.run(0)
        with pytest.raises(ValidationError):
            sampler.run(10, thin=0)

    def test_extreme_temperature_runs_warning_free(self):
        """Gibbs-scale temperatures: the density *ratio* overflows float64
        (log-gaps of order 1e8), but the log-space acceptance never forms
        it — no overflow warnings, and the chain still concentrates."""
        temperature = 1e8

        def log_density(x):
            return -temperature * float(x @ x)

        sampler = MetropolisHastingsSampler(
            log_density, dimension=1, step_size=1e-4
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = sampler.run(2_000, burn_in=500, random_state=11)
        assert 0.05 < result.acceptance_rate < 1.0
        assert np.all(np.abs(result.samples) < 0.01)

    def test_infinite_density_spike_is_rejected_not_absorbed(self):
        """A +inf proposal log-density must be rejected: accepting it would
        wedge the chain (every later ratio inf - inf = nan, never accepted)."""
        spike = 3.0

        def log_density(x):
            if abs(float(x[0]) - spike) < 0.5:
                return np.inf
            return -0.5 * float(x @ x)

        sampler = MetropolisHastingsSampler(log_density, dimension=1, step_size=1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = sampler.run(3_000, burn_in=0, random_state=5)
        assert np.all(np.isfinite(result.log_densities))
        assert np.all(np.abs(result.samples[:, 0] - spike) >= 0.5)

    def test_nan_density_is_rejected(self):
        def log_density(x):
            if float(x[0]) < 0:
                return np.nan
            return -0.5 * float(x @ x)

        sampler = MetropolisHastingsSampler(log_density, dimension=1, step_size=0.8)
        result = sampler.run(1_000, burn_in=0, initial=[1.0], random_state=9)
        assert np.all(result.samples[:, 0] >= 0)
        assert np.all(np.isfinite(result.log_densities))


class TestLogAcceptanceRatio:
    def test_plain_difference(self):
        assert log_acceptance_ratio(-1.0, -3.0) == pytest.approx(2.0)

    def test_correction_term(self):
        assert log_acceptance_ratio(-1.0, -1.0, log_correction=0.5) == (
            pytest.approx(0.5)
        )

    def test_huge_gaps_stay_finite(self):
        assert log_acceptance_ratio(-1e300, -2e300) == pytest.approx(1e300)

    def test_nonfinite_proposals_map_to_minus_inf(self):
        ratios = log_acceptance_ratio(
            np.array([np.inf, np.nan, -np.inf, 0.0]), np.zeros(4)
        )
        assert ratios[0] == -np.inf
        assert ratios[1] == -np.inf
        assert ratios[2] == -np.inf
        assert ratios[3] == 0.0

    def test_scalar_inputs_return_float(self):
        assert isinstance(log_acceptance_ratio(0.0, -1.0), float)


class TestBatchedLangevinSampler:
    @staticmethod
    def _standard_normal(dimension):
        return BatchedLangevinSampler(
            lambda theta: -0.5 * (theta * theta).sum(axis=1),
            lambda theta: -theta,
            dimension,
            step_size=0.9,
        )

    def test_standard_normal_target(self):
        sampler = self._standard_normal(3)
        result = sampler.run(4_000, steps=80, random_state=0)
        assert result.samples.shape == (4_000, 3)
        assert result.samples.mean(axis=0) == pytest.approx(
            np.zeros(3), abs=0.08
        )
        assert result.samples.std(axis=0) == pytest.approx(
            np.ones(3), abs=0.08
        )
        assert 0.2 < result.acceptance_rate < 0.95

    def test_batch_equals_sequential_chains_bitwise(self):
        sampler = self._standard_normal(4)
        batch = sampler.run(7, steps=25, random_state=123).samples
        rng = np.random.default_rng(123)
        sequential = np.stack(
            [sampler.run(1, steps=25, random_state=rng).samples[0] for _ in range(7)]
        )
        assert np.array_equal(batch, sequential)

    def test_shifted_target_mean(self):
        mu = np.array([1.5, -2.0])
        sampler = BatchedLangevinSampler(
            lambda theta: -0.5 * ((theta - mu) ** 2).sum(axis=1),
            lambda theta: mu - theta,
            2,
            step_size=0.9,
        )
        result = sampler.run(4_000, steps=80, random_state=1)
        assert result.samples.mean(axis=0) == pytest.approx(mu, abs=0.1)

    def test_extreme_temperature_warning_free(self):
        temperature = 1e8
        sampler = BatchedLangevinSampler(
            lambda theta: -temperature * (theta * theta).sum(axis=1),
            lambda theta: -2.0 * temperature * theta,
            2,
            step_size=1e-4,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = sampler.run(64, steps=50, random_state=3)
        assert np.all(np.abs(result.samples) < 0.01)
        assert np.all(np.isfinite(result.log_densities))

    def test_reproducible(self):
        sampler = self._standard_normal(2)
        a = sampler.run(9, steps=30, random_state=42)
        b = sampler.run(9, steps=30, random_state=42)
        assert np.array_equal(a.samples, b.samples)
        assert a.acceptance_rate == b.acceptance_rate

    def test_rejects_bad_shapes_and_counts(self):
        sampler = self._standard_normal(3)
        with pytest.raises(ValidationError):
            sampler.run(0)
        with pytest.raises(ValidationError):
            sampler.run(2, steps=0)
        with pytest.raises(ValidationError):
            sampler.run(2, initial=[1.0], random_state=0)

    def test_rejects_nonfinite_initial_density(self):
        sampler = BatchedLangevinSampler(
            lambda theta: np.full(theta.shape[0], -np.inf),
            lambda theta: -theta,
            2,
        )
        with pytest.raises(ValidationError):
            sampler.run(3, random_state=0)

    def test_rejects_misshapen_callables(self):
        scalar_density = BatchedLangevinSampler(
            lambda theta: -0.5 * float((theta * theta).sum()),
            lambda theta: -theta,
            2,
        )
        with pytest.raises(ValidationError):
            scalar_density.run(3, random_state=0)
        bad_grad = BatchedLangevinSampler(
            lambda theta: -0.5 * (theta * theta).sum(axis=1),
            lambda theta: -theta[:, :1],
            2,
        )
        with pytest.raises(ValidationError):
            bad_grad.run(3, random_state=0)
