"""Unit tests for the samplers."""

import numpy as np
import pytest

from repro.distributions import MetropolisHastingsSampler, inverse_cdf_sample
from repro.exceptions import ValidationError


class TestInverseCdfSample:
    def test_deterministic_mapping(self):
        indices = inverse_cdf_sample([0.2, 0.3, 0.5], [0.1, 0.25, 0.95])
        assert list(indices) == [0, 1, 2]

    def test_boundary_uniform_zero(self):
        assert inverse_cdf_sample([0.5, 0.5], [0.0])[0] == 0

    def test_boundary_uniform_one(self):
        assert inverse_cdf_sample([0.5, 0.5], [1.0])[0] == 1

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            inverse_cdf_sample([0.5, 0.6], [0.5])

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            inverse_cdf_sample([-0.1, 1.1], [0.5])

    def test_distribution_matches(self):
        rng = np.random.default_rng(0)
        uniforms = rng.uniform(size=100_000)
        indices = inverse_cdf_sample([0.1, 0.9], uniforms)
        assert np.mean(indices) == pytest.approx(0.9, abs=0.01)


class TestMetropolisHastings:
    def test_standard_normal_target(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float(x @ x), dimension=1, step_size=1.0
        )
        result = sampler.run(20_000, burn_in=2_000, random_state=0)
        assert result.samples.shape == (20_000, 1)
        assert result.samples.mean() == pytest.approx(0.0, abs=0.08)
        assert result.samples.std() == pytest.approx(1.0, abs=0.08)

    def test_acceptance_rate_reasonable(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float(x @ x), dimension=1, step_size=1.0
        )
        result = sampler.run(5_000, burn_in=500, random_state=1)
        assert 0.2 < result.acceptance_rate < 0.95

    def test_reproducible(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float(x @ x), dimension=2, step_size=0.5
        )
        a = sampler.run(100, burn_in=10, random_state=7)
        b = sampler.run(100, burn_in=10, random_state=7)
        assert np.array_equal(a.samples, b.samples)

    def test_shifted_target_mean(self):
        mu = np.array([2.0, -1.0])
        sampler = MetropolisHastingsSampler(
            lambda x: -0.5 * float((x - mu) @ (x - mu)),
            dimension=2,
            step_size=1.0,
        )
        result = sampler.run(30_000, burn_in=3_000, random_state=2)
        assert result.samples.mean(axis=0) == pytest.approx(mu, abs=0.1)

    def test_thinning_reduces_autocorrelation(self):
        def log_density(x):
            return -0.5 * float(x @ x)

        sampler = MetropolisHastingsSampler(log_density, dimension=1, step_size=0.3)
        unthinned = sampler.run(4_000, burn_in=500, thin=1, random_state=3)
        thinned = sampler.run(4_000, burn_in=500, thin=10, random_state=3)

        def lag1(samples):
            x = samples[:, 0]
            x = x - x.mean()
            return float((x[:-1] * x[1:]).mean() / (x**2).mean())

        assert lag1(thinned.samples) < lag1(unthinned.samples)

    def test_rejects_bad_initial(self):
        sampler = MetropolisHastingsSampler(lambda x: 0.0, dimension=2)
        with pytest.raises(ValidationError):
            sampler.run(10, initial=[1.0], random_state=0)

    def test_rejects_nonfinite_initial_density(self):
        sampler = MetropolisHastingsSampler(
            lambda x: -np.inf, dimension=1
        )
        with pytest.raises(ValidationError):
            sampler.run(10, random_state=0)

    def test_rejects_bad_counts(self):
        sampler = MetropolisHastingsSampler(lambda x: 0.0, dimension=1)
        with pytest.raises(ValidationError):
            sampler.run(0)
        with pytest.raises(ValidationError):
            sampler.run(10, thin=0)
