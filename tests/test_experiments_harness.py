"""Unit tests for the experiment harness."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import ResultTable, ascii_curve, run_experiment, sweep


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable(["epsilon", "risk"], title="demo")
        table.add_row(0.1, 0.51234)
        table.add_row(10.0, 0.2)
        text = table.render()
        assert "demo" in text
        assert "epsilon" in text
        assert len(text.splitlines()) == 5

    def test_named_rows(self):
        table = ResultTable(["a", "b"])
        table.add_row(b=2, a=1)
        assert table.column("a") == ["1"]
        assert table.column("b") == ["2"]

    def test_named_rows_missing_column(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValidationError):
            table.add_row(a=1)

    def test_mixed_call_rejected(self):
        table = ResultTable(["a"])
        with pytest.raises(ValidationError):
            table.add_row(1, a=1)

    def test_float_formatting(self):
        table = ResultTable(["x"])
        table.add_row(1.23456789e-7)
        assert "e-07" in table.column("x")[0]

    def test_bool_formatting(self):
        table = ResultTable(["ok"])
        table.add_row(True)
        assert table.column("ok") == ["yes"]

    def test_wrong_width_rejected(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValidationError):
            table.add_row(1)

    def test_unknown_column_lookup(self):
        table = ResultTable(["a"])
        with pytest.raises(ValidationError):
            table.column("z")

    def test_numpy_scalars_format_like_python_scalars(self):
        # Regression: np.float32 is not a float instance and np.bool_ is
        # not a bool instance, so both used to fall through to repr.
        table = ResultTable(["f32", "f64", "i64", "ok"])
        table.add_row(
            np.float32(0.5), np.float64(1.5), np.int64(7), np.bool_(True)
        )
        assert table.column("f32") == ["0.5000"]
        assert table.column("f64") == ["1.5000"]
        assert table.column("i64") == ["7"]
        assert table.column("ok") == ["yes"]


class TestAsciiCurve:
    def test_contains_points_and_labels(self):
        text = ascii_curve(
            [1, 2, 3], [1, 4, 9], title="squares", x_label="n", y_label="n^2"
        )
        assert "squares" in text
        assert "*" in text
        assert "n^2" in text

    def test_constant_series_ok(self):
        text = ascii_curve([1, 2], [5, 5])
        assert "*" in text

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            ascii_curve([1, 2], [1])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValidationError):
            ascii_curve([1, 2], [1, 2], width=2)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_values(self, bad):
        # Regression: NaN/inf used to crash deep inside the scaler with
        # an unhelpful numpy error instead of a ValidationError.
        with pytest.raises(ValidationError, match="finite"):
            ascii_curve([1, 2, 3], [1, bad, 3])
        with pytest.raises(ValidationError, match="finite"):
            ascii_curve([1, bad, 3], [1, 2, 3])


class TestRunner:
    def test_run_experiment_wraps_output(self):
        result = run_experiment("double", lambda x: {"y": 2 * x}, x=3)
        assert result.outputs == {"y": 6}
        assert result.parameters == {"x": 3}
        assert result.seconds >= 0
        assert "double" in str(result)

    def test_run_experiment_rejects_non_mapping(self):
        with pytest.raises(ValidationError):
            run_experiment("bad", lambda: 42)

    def test_sweep_cartesian_product(self):
        results = sweep(
            "add",
            lambda a, b, c: {"s": a + b + c},
            grid={"a": [1, 2], "b": [10, 20]},
            c=100,
        )
        assert len(results) == 4
        sums = sorted(r.outputs["s"] for r in results)
        assert sums == [111, 121, 112, 122] or sums == sorted([111, 121, 112, 122])

    def test_sweep_rejects_overlap(self):
        with pytest.raises(ValidationError):
            sweep("x", lambda a: {"a": a}, grid={"a": [1]}, a=2)

    def test_sweep_rejects_empty_grid(self):
        with pytest.raises(ValidationError):
            sweep("x", lambda: {}, grid={})
