"""Tests for the Zhang-style oracle inequality (paper ref 12)."""

import numpy as np
import pytest

from repro.core.theorems import check_gibbs_oracle_inequality, gibbs_oracle_bound
from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid


@pytest.fixture
def setup():
    task = BernoulliTask(p=0.75)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    data_law = DiscreteDistribution([0, 1], [0.25, 0.75])
    return task, grid, data_law


class TestOracleBound:
    def test_bound_above_oracle_risk(self, setup):
        task, grid, _ = setup
        prior = DiscreteDistribution.uniform(grid.thetas)
        risks = np.array([task.true_risk(t) for t in grid.thetas])
        bound = gibbs_oracle_bound(prior, risks, temperature=5.0, n=10)
        assert bound >= risks.min()

    def test_bound_tightens_then_loosens_in_temperature(self, setup):
        """Small λ pays the KL/λ term, large λ pays λ/(8n): the bound is
        U-shaped in λ."""
        task, grid, _ = setup
        prior = DiscreteDistribution.uniform(grid.thetas)
        risks = np.array([task.true_risk(t) for t in grid.thetas])
        n = 50
        values = [
            gibbs_oracle_bound(prior, risks, lam, n)
            for lam in [0.1, 20.0, 10_000.0]
        ]
        assert values[1] < values[0]
        assert values[1] < values[2]

    def test_estimation_term_shrinks_with_n(self, setup):
        task, grid, _ = setup
        prior = DiscreteDistribution.uniform(grid.thetas)
        risks = np.array([task.true_risk(t) for t in grid.thetas])
        small = gibbs_oracle_bound(prior, risks, 10.0, n=10)
        large = gibbs_oracle_bound(prior, risks, 10.0, n=10_000)
        assert large < small

    def test_rejects_bad_inputs(self, setup):
        _, grid, _ = setup
        prior = DiscreteDistribution.uniform(grid.thetas)
        with pytest.raises(ValidationError):
            gibbs_oracle_bound(prior, [0.1] * 5, 1.0, n=0)


class TestOracleInequality:
    @pytest.mark.parametrize("temperature", [0.5, 2.0, 8.0, 40.0])
    def test_holds_across_temperatures(self, setup, temperature):
        task, grid, data_law = setup
        report = check_gibbs_oracle_inequality(
            grid, data_law, n=3, temperature=temperature, true_risk=task.true_risk
        )
        assert report.holds, str(report)

    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_holds_across_sample_sizes(self, setup, n):
        task, grid, data_law = setup
        report = check_gibbs_oracle_inequality(
            grid, data_law, n=n, temperature=4.0, true_risk=task.true_risk
        )
        assert report.holds, str(report)

    def test_holds_with_skewed_prior(self, setup):
        task, grid, data_law = setup
        prior = DiscreteDistribution(grid.thetas, [0.4, 0.3, 0.1, 0.1, 0.1])
        report = check_gibbs_oracle_inequality(
            grid,
            data_law,
            n=2,
            temperature=3.0,
            true_risk=task.true_risk,
            prior=prior,
        )
        assert report.holds

    def test_measured_risk_above_bayes(self, setup):
        task, grid, data_law = setup
        report = check_gibbs_oracle_inequality(
            grid, data_law, n=3, temperature=8.0, true_risk=task.true_risk
        )
        assert report.measured >= task.bayes_risk() - 1e-12

    def test_bound_not_vacuous_at_good_temperature(self, setup):
        """At a well-chosen λ the bound is within 0.1 of the measured
        risk — it is an oracle inequality, not a triviality."""
        task, grid, data_law = setup
        report = check_gibbs_oracle_inequality(
            grid, data_law, n=4, temperature=2.0, true_risk=task.true_risk
        )
        assert report.claimed - report.measured < 0.1
