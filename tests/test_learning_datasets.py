"""Unit tests for the synthetic tasks — exact risks against Monte Carlo."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import (
    BernoulliTask,
    GaussianThresholdTask,
    LinearRegressionTask,
    LogisticTask,
    TwoGaussiansTask,
)


class TestBernoulliTask:
    def test_sample_frequency(self):
        task = BernoulliTask(p=0.7)
        sample = task.sample(100_000, random_state=0)
        assert sample.mean() == pytest.approx(0.7, abs=0.005)

    def test_true_risk_closed_form(self):
        task = BernoulliTask(p=0.7)
        assert task.true_risk(0.0) == pytest.approx(0.7)
        assert task.true_risk(1.0) == pytest.approx(0.3)

    def test_true_risk_matches_empirical(self):
        task = BernoulliTask(p=0.6)
        sample = task.sample(200_000, random_state=1)
        for theta in [0.0, 0.3, 1.0]:
            assert task.empirical_risk(theta, sample) == pytest.approx(
                task.true_risk(theta), abs=0.005
            )

    def test_bayes_risk(self):
        assert BernoulliTask(p=0.7).bayes_risk() == pytest.approx(0.3)
        assert BernoulliTask(p=0.2).bayes_risk() == pytest.approx(0.2)

    def test_loss_bounded(self):
        task = BernoulliTask(p=0.5)
        assert task.loss(0.3, [0, 1]).max() <= 1.0

    def test_rejects_bad_p(self):
        with pytest.raises(ValidationError):
            BernoulliTask(p=1.5)


class TestGaussianThresholdTask:
    def test_true_risk_at_optimum(self):
        task = GaussianThresholdTask(mu=1.0, sigma=1.0)
        assert task.true_risk(0.0) == pytest.approx(task.bayes_risk())

    def test_true_risk_symmetric(self):
        task = GaussianThresholdTask(mu=1.0, sigma=1.0)
        assert task.true_risk(0.5) == pytest.approx(task.true_risk(-0.5))

    def test_true_risk_matches_empirical(self):
        task = GaussianThresholdTask(mu=1.0, sigma=1.0)
        x, y = task.sample(200_000, random_state=2)
        for t in [-1.0, 0.0, 0.7]:
            assert task.empirical_risk(t, x, y) == pytest.approx(
                task.true_risk(t), abs=0.005
            )

    def test_far_threshold_risk_half(self):
        task = GaussianThresholdTask(mu=1.0, sigma=1.0)
        assert task.true_risk(100.0) == pytest.approx(0.5, abs=1e-6)

    def test_labels_balanced(self):
        task = GaussianThresholdTask()
        _, y = task.sample(100_000, random_state=3)
        assert np.mean(y) == pytest.approx(0.0, abs=0.02)


class TestTwoGaussiansTask:
    def test_true_risk_of_optimal_direction(self):
        mean = np.array([1.0, 1.0])
        task = TwoGaussiansTask(mean)
        assert task.true_risk(mean) == pytest.approx(task.bayes_risk())

    def test_true_risk_scale_invariant(self):
        task = TwoGaussiansTask([1.0, 0.0])
        theta = np.array([2.0, 1.0])
        assert task.true_risk(theta) == pytest.approx(task.true_risk(theta * 10))

    def test_true_risk_matches_empirical(self):
        task = TwoGaussiansTask([1.0, 0.5])
        x, y = task.sample(200_000, random_state=4)
        theta = np.array([1.0, -0.5])
        margins = y * (x @ theta)
        empirical = float((margins <= 0).mean())
        assert empirical == pytest.approx(task.true_risk(theta), abs=0.005)

    def test_orthogonal_direction_risk_half(self):
        task = TwoGaussiansTask([1.0, 0.0])
        assert task.true_risk([0.0, 1.0]) == pytest.approx(0.5)

    def test_zero_theta_risk_half(self):
        task = TwoGaussiansTask([1.0, 0.0])
        assert task.true_risk([0.0, 0.0]) == 0.5

    def test_clipped_features_in_unit_ball(self):
        task = TwoGaussiansTask([2.0, 0.0], clip_features=True)
        x, _ = task.sample(10_000, random_state=5)
        assert np.linalg.norm(x, axis=1).max() <= 1.0 + 1e-9

    def test_rejects_zero_mean(self):
        with pytest.raises(ValidationError):
            TwoGaussiansTask([0.0, 0.0])


class TestLogisticTask:
    def test_features_in_unit_ball(self):
        task = LogisticTask([2.0, -1.0], eval_size=1_000)
        x, _ = task.sample(5_000, random_state=6)
        assert np.linalg.norm(x, axis=1).max() <= 1.0 + 1e-9

    def test_bayes_risk_below_half(self):
        task = LogisticTask([4.0, 0.0], eval_size=50_000)
        assert task.bayes_zero_one_risk() < 0.5

    def test_true_risk_of_flipped_direction_worse(self):
        theta_star = np.array([4.0, 0.0])
        task = LogisticTask(theta_star, eval_size=50_000)
        good = task.true_zero_one_risk(theta_star)
        bad = task.true_zero_one_risk(-theta_star)
        assert bad > good
        assert good + bad == pytest.approx(1.0, abs=0.02)

    def test_labels_correlate_with_margin(self):
        task = LogisticTask([5.0, 0.0], eval_size=1_000)
        x, y = task.sample(20_000, random_state=7)
        agreement = np.mean(np.sign(x[:, 0]) == y)
        assert agreement > 0.6


class TestLinearRegressionTask:
    def test_true_risk_of_truth_is_noise_floor(self):
        task = LinearRegressionTask([1.0, -2.0], noise=0.3)
        assert task.true_squared_risk([1.0, -2.0]) == pytest.approx(0.09)

    def test_true_risk_matches_empirical(self):
        theta_star = np.array([1.0, -0.5])
        task = LinearRegressionTask(theta_star, noise=0.2)
        x, y = task.sample(300_000, random_state=8)
        theta = np.array([0.5, 0.0])
        empirical = float(((x @ theta - y) ** 2).mean())
        assert empirical == pytest.approx(
            task.true_squared_risk(theta), rel=0.02
        )

    def test_bayes_risk(self):
        assert LinearRegressionTask([1.0], noise=0.5).bayes_squared_risk() == (
            pytest.approx(0.25)
        )
