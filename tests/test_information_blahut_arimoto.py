"""Unit tests for the Blahut–Arimoto algorithms."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.information import channel_capacity, rate_distortion
from repro.information.blahut_arimoto import rate_distortion_free_energy
from repro.information.mutual_information import mutual_information_from_joint


class TestChannelCapacity:
    def test_bsc_closed_form(self):
        # C = log2 - H(f) nats for a binary symmetric channel.
        f = 0.11
        matrix = [[1 - f, f], [f, 1 - f]]
        expected = np.log(2) + f * np.log(f) + (1 - f) * np.log(1 - f)
        result = channel_capacity(matrix)
        assert result.converged
        assert result.value == pytest.approx(expected, abs=1e-8)

    def test_bsc_capacity_achieving_input_is_uniform(self):
        result = channel_capacity([[0.8, 0.2], [0.2, 0.8]])
        assert result.input_distribution == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_noiseless_channel(self):
        result = channel_capacity(np.eye(3))
        assert result.value == pytest.approx(np.log(3), abs=1e-8)

    def test_useless_channel_capacity_zero(self):
        result = channel_capacity([[0.5, 0.5], [0.5, 0.5]])
        assert result.value == pytest.approx(0.0, abs=1e-10)

    def test_erasure_channel(self):
        # Binary erasure channel with erasure prob e: C = (1 - e) log 2.
        e = 0.3
        matrix = [[1 - e, e, 0.0], [0.0, e, 1 - e]]
        result = channel_capacity(matrix)
        assert result.value == pytest.approx((1 - e) * np.log(2), abs=1e-7)

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValidationError):
            channel_capacity([[0.5, 0.6], [0.5, 0.5]])

    def test_capacity_no_less_than_any_input(self):
        rng = np.random.default_rng(0)
        matrix = rng.dirichlet(np.ones(3), size=4)
        result = channel_capacity(matrix)
        for _ in range(20):
            p = rng.dirichlet(np.ones(4))
            joint = p[:, None] * matrix
            assert result.value >= mutual_information_from_joint(joint) - 1e-7


class TestRateDistortion:
    def test_zero_distortion_channel_found_when_cheap(self):
        # With beta large, the solver should pick the zero-distortion map.
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = rate_distortion([0.5, 0.5], d, beta=50.0)
        assert result.distortion < 1e-3
        assert result.rate == pytest.approx(np.log(2), abs=1e-2)

    def test_tiny_beta_gives_near_zero_rate(self):
        d = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = rate_distortion([0.5, 0.5], d, beta=1e-4)
        assert result.rate < 1e-6
        assert result.distortion == pytest.approx(0.5, abs=1e-3)

    def test_objective_decreases_with_more_iterations(self):
        rng = np.random.default_rng(1)
        d = rng.uniform(size=(4, 5))
        short = rate_distortion([0.25] * 4, d, beta=2.0, max_iterations=2, tol=0)
        long = rate_distortion([0.25] * 4, d, beta=2.0, max_iterations=200, tol=0)
        assert long.value <= short.value + 1e-12

    def test_optimal_channel_is_gibbs_tilt_of_marginal(self):
        rng = np.random.default_rng(2)
        d = rng.uniform(size=(3, 4))
        result = rate_distortion([0.2, 0.5, 0.3], d, beta=3.0)
        q = result.output_distribution
        expected = q[None, :] * np.exp(-3.0 * d)
        expected /= expected.sum(axis=1, keepdims=True)
        assert result.channel_matrix == pytest.approx(expected, abs=1e-6)

    def test_beats_random_channels(self):
        rng = np.random.default_rng(3)
        d = rng.uniform(size=(3, 3))
        p = np.array([0.3, 0.3, 0.4])
        beta = 2.0
        result = rate_distortion(p, d, beta=beta)
        for _ in range(50):
            k = rng.dirichlet(np.ones(3), size=3)
            joint = p[:, None] * k
            value = mutual_information_from_joint(joint) + beta * float(
                (joint * d).sum()
            )
            assert result.value <= value + 1e-9

    def test_free_energy_matches_lagrangian_optimum(self):
        rng = np.random.default_rng(4)
        d = rng.uniform(size=(4, 6))
        p = rng.dirichlet(np.ones(4))
        beta = 1.7
        result = rate_distortion(p, d, beta=beta)
        assert rate_distortion_free_energy(p, d, beta) == pytest.approx(
            result.value, abs=1e-6
        )

    def test_rejects_negative_distortion(self):
        with pytest.raises(ValidationError):
            rate_distortion([1.0], [[-0.5]], beta=1.0)

    def test_rejects_zero_initial_output_mass(self):
        with pytest.raises(ValidationError):
            rate_distortion(
                [0.5, 0.5],
                [[0.0, 1.0], [1.0, 0.0]],
                beta=1.0,
                initial_output=[1.0, 0.0],
            )

    def test_rate_decreases_in_privacy(self):
        # Smaller beta (stronger privacy) => less information released.
        rng = np.random.default_rng(5)
        d = rng.uniform(size=(4, 4))
        p = np.full(4, 0.25)
        rates = [rate_distortion(p, d, beta=b).rate for b in [0.1, 1.0, 10.0]]
        assert rates[0] <= rates[1] + 1e-9 <= rates[2] + 2e-9


# A near-degenerate rate-distortion instance whose two distortion rows
# differ only at the ~1e-11 level: the Lagrangian's true descent per
# iteration shrinks below float noise, and around iteration 27 the
# computed objective INCREASES by ~5.3e-15. Found by randomized search;
# every number is pinned so the trajectory is bit-reproducible.
_NEAR_DEGENERATE = {
    "source": [0.8051948789883169, 0.1948051210116832],
    "distortion": [
        [
            0.5681923142956917,
            0.8999457934412621,
            0.4478583619952511,
            0.40661284503649486,
        ],
        [
            0.5681923143012494,
            0.8999457934416549,
            0.447858361995477,
            0.4066128450395298,
        ],
    ],
    "beta": 31.608710495005962,
}


class TestConvergenceDiagnostics:
    """Regression: a float-noise objective *increase* is not convergence.

    The original stopping rule ``previous - value < tol`` is satisfied by
    any increase, so a run that went UP by more than the tolerance was
    reported ``converged=True``. The fix classifies the final gap: beyond-
    tolerance increases terminate with ``converged=False`` and
    ``monotone=False``, and the gap itself is surfaced on the result.
    """

    def test_non_monotone_step_is_not_reported_converged(self):
        result = rate_distortion(
            _NEAR_DEGENERATE["source"],
            _NEAR_DEGENERATE["distortion"],
            _NEAR_DEGENERATE["beta"],
            tol=1e-15,
        )
        assert not result.converged
        assert not result.monotone
        assert result.final_gap < -1e-15  # the increase, surfaced
        assert result.iterations == 27

    def test_non_monotone_raises_when_asked(self):
        from repro.exceptions import ConvergenceError

        with pytest.raises(ConvergenceError, match="objective increased"):
            rate_distortion(
                _NEAR_DEGENERATE["source"],
                _NEAR_DEGENERATE["distortion"],
                _NEAR_DEGENERATE["beta"],
                tol=1e-15,
                raise_on_failure=True,
            )

    def test_same_instance_converges_at_default_tolerance(self):
        # At the default tol the run stops before noise dominates; the
        # flags then report an ordinary monotone convergence.
        result = rate_distortion(
            _NEAR_DEGENERATE["source"],
            _NEAR_DEGENERATE["distortion"],
            _NEAR_DEGENERATE["beta"],
        )
        assert result.converged
        assert result.monotone
        assert abs(result.final_gap) < 1e-12

    def test_monotone_instance_reports_gap_and_flags(self):
        result = rate_distortion([0.5, 0.5], [[0.0, 1.0], [1.0, 0.0]], 1.0)
        assert result.converged
        assert result.monotone
        assert -1e-12 < result.final_gap < 1e-12

    def test_capacity_final_gap_is_certified_bound_gap(self):
        result = channel_capacity([[0.8, 0.2], [0.2, 0.8]], tol=1e-10)
        assert result.converged
        assert result.monotone
        assert 0.0 <= result.final_gap < 1e-10

    def test_iteration_budget_exhaustion_still_flagged_monotone(self):
        rng = np.random.default_rng(11)
        d = rng.uniform(size=(6, 6))
        result = rate_distortion(
            np.full(6, 1 / 6), d, beta=5.0, tol=0.0, max_iterations=3
        )
        assert not result.converged
        assert result.monotone
