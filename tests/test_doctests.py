"""Run the doctest examples embedded in module docstrings."""

import doctest
import importlib

import pytest

MODULES_WITH_DOCTESTS = [
    "repro.learning.preprocessing",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_DOCTESTS)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} lists no doctests"
    assert results.failed == 0
