"""Unit tests for report-noisy-max and its exponential-mechanism link."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.mechanisms import ExponentialMechanism, ReportNoisyMax


def quality(dataset, candidate):
    return -abs(sum(dataset) - candidate)


class TestReportNoisyMax:
    def test_release_in_range(self):
        mech = ReportNoisyMax(quality, range(4), 1.0, epsilon=1.0)
        assert mech.release([1, 0, 1], random_state=0) in range(4)

    def test_rejects_bad_noise_kind(self):
        with pytest.raises(ValidationError):
            ReportNoisyMax(quality, range(4), 1.0, 1.0, noise="cauchy")

    def test_rejects_empty_outputs(self):
        with pytest.raises(ValidationError):
            ReportNoisyMax(quality, [], 1.0, 1.0)

    def test_gumbel_variant_equals_exponential_mechanism(self):
        """Gumbel-max trick: the output law equals the calibrated
        exponential mechanism's, checked by frequency comparison."""
        epsilon = 2.0
        dataset = [1, 1, 0]
        noisy_max = ReportNoisyMax(quality, range(4), 1.0, epsilon, noise="gumbel")
        exp_mech = ExponentialMechanism(quality, range(4), 1.0, epsilon)
        expected = exp_mech.output_distribution(dataset)

        rng = np.random.default_rng(0)
        draws = [noisy_max.release(dataset, random_state=rng) for _ in range(60_000)]
        for candidate in range(4):
            frequency = np.mean([d == candidate for d in draws])
            assert frequency == pytest.approx(
                expected.probability_of(candidate), abs=0.01
            )

    def test_laplace_variant_still_prefers_best(self):
        mech = ReportNoisyMax(
            quality, range(4), 1.0, epsilon=10.0, noise="laplace"
        )
        dataset = [1, 1, 0]  # best candidate is 2
        rng = np.random.default_rng(1)
        draws = [mech.release(dataset, random_state=rng) for _ in range(5_000)]
        assert np.mean([d == 2 for d in draws]) > 0.8

    def test_release_with_score(self):
        mech = ReportNoisyMax(quality, range(4), 1.0, epsilon=1.0)
        winner, score = mech.release_with_score([1, 1, 0], random_state=2)
        assert winner in range(4)
        assert np.isfinite(score)

    def test_sampled_privacy_of_gumbel_variant(self):
        """Black-box audit: measured ε of the Gumbel variant stays within
        the nominal guarantee (it equals the ε-DP exponential mechanism)."""
        from repro.privacy import SampledPrivacyAuditor

        epsilon = 1.0
        mech = ReportNoisyMax(quality, range(3), 1.0, epsilon, noise="gumbel")
        auditor = SampledPrivacyAuditor(
            lambda d, random_state=None: mech.release(d, random_state=random_state),
            n_samples=60_000,
        )
        report = auditor.audit_pair([0, 0], [0, 1], random_state=3)
        # Sampled estimate; allow small estimation slack above ε.
        assert report.measured_epsilon <= epsilon + 0.05
