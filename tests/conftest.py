"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import DiscreteDistribution
from repro.learning import BernoulliTask, PredictorGrid

# The statistical tier's plugin: the `statistical` marker with bounded
# reruns, plus the seeded `statistical_rng` / `statistical_policy` fixtures.
pytest_plugins = ("repro.testing.plugin",)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for reproducible tests."""
    return np.random.default_rng(20120330)  # the workshop date


@pytest.fixture
def bernoulli_task() -> BernoulliTask:
    """A biased-coin prediction task with closed-form risks."""
    return BernoulliTask(p=0.75)


@pytest.fixture
def small_grid(bernoulli_task) -> PredictorGrid:
    """A 5-point predictor grid on [0, 1] for the Bernoulli task."""
    return PredictorGrid.linspace(bernoulli_task.loss, 0.0, 1.0, 5)


@pytest.fixture
def uniform_prior(small_grid) -> DiscreteDistribution:
    """Uniform prior over the small grid."""
    return DiscreteDistribution.uniform(small_grid.thetas)
