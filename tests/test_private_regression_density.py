"""Unit tests for private regression and density estimation (future-work
extensions the paper announces in Section 5)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learning import LinearRegressionTask, RidgeRegressionModel
from repro.private_learning import (
    GibbsDensityEstimator,
    GibbsRidgeRegression,
    LaplaceHistogramDensity,
    SufficientStatisticsRidge,
    beta_shape_family,
    coefficient_grid,
    discretize_density,
)


@pytest.fixture
def regression_data():
    task = LinearRegressionTask([0.8, -0.5], noise=0.1)
    x, y = task.sample(600, random_state=0)
    return task, x, np.clip(y, -1.0, 1.0)


class TestCoefficientGrid:
    def test_lattice_size(self):
        grid = coefficient_grid(2, radius=1.0, points_per_axis=5)
        assert len(grid) == 25

    def test_contains_extremes_and_origin(self):
        grid = coefficient_grid(2, radius=1.0, points_per_axis=3)
        assert (0.0, 0.0) in grid
        assert (1.0, 1.0) in grid
        assert (-1.0, -1.0) in grid

    def test_rejects_bad_args(self):
        with pytest.raises(ValidationError):
            coefficient_grid(0, 1.0, 3)
        with pytest.raises(ValidationError):
            coefficient_grid(2, 1.0, 1)


class TestGibbsRidgeRegression:
    def test_learns_at_large_epsilon(self, regression_data):
        task, x, y = regression_data
        model = GibbsRidgeRegression(
            2, epsilon=100.0, sample_size=len(y), points_per_axis=9
        ).fit(x, y, random_state=1)
        # Within one lattice step of the truth in each coordinate.
        assert np.abs(model.coefficients - task.theta_star).max() <= 0.5 + 1e-9

    def test_mse_beats_zero_predictor_at_large_epsilon(self, regression_data):
        _, x, y = regression_data
        model = GibbsRidgeRegression(
            2, epsilon=100.0, sample_size=len(y)
        ).fit(x, y, random_state=2)
        assert model.mean_squared_error(x, y) < float((y**2).mean())

    def test_posterior_flat_at_tiny_epsilon(self, regression_data):
        _, x, y = regression_data
        model = GibbsRidgeRegression(
            2, epsilon=1e-5, sample_size=len(y), points_per_axis=5
        )
        dist = model.output_distribution(x, y)
        assert dist.entropy() == pytest.approx(np.log(25), abs=1e-3)

    def test_temperature_calibration(self):
        model = GibbsRidgeRegression(
            2, epsilon=1.0, sample_size=100, loss_ceiling=4.0
        )
        # λ = ε·n / (2·loss_range) = 100 / 8.
        assert model.temperature == pytest.approx(12.5)

    def test_rejects_unclipped_features(self):
        model = GibbsRidgeRegression(2, 1.0, 4)
        x = np.array([[2.0, 0.0]] * 4)
        y = np.zeros(4)
        with pytest.raises(ValidationError):
            model.fit(x, y, random_state=0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            GibbsRidgeRegression(2, 1.0, 4).predict(np.zeros((1, 2)))


class TestSufficientStatisticsRidge:
    def test_approaches_nonprivate_at_large_epsilon(self, regression_data):
        _, x, y = regression_data
        nonprivate = RidgeRegressionModel(regularization=0.01).fit(x, y)
        private = SufficientStatisticsRidge(
            2, epsilon=1000.0, regularization=0.01
        ).fit(x, y, random_state=3)
        assert private.coefficients == pytest.approx(
            nonprivate.coefficients, abs=0.05
        )

    def test_noise_dominates_at_tiny_epsilon(self, regression_data):
        _, x, y = regression_data
        nonprivate = RidgeRegressionModel(regularization=0.01).fit(x, y)
        gaps = []
        for seed in range(5):
            private = SufficientStatisticsRidge(
                2, epsilon=0.001, regularization=0.01
            ).fit(x, y, random_state=seed)
            gaps.append(
                np.linalg.norm(private.coefficients - nonprivate.coefficients)
            )
        assert min(gaps) > 0.1

    def test_mse_improves_with_epsilon(self, regression_data):
        task, x, y = regression_data
        x_test, y_test = task.sample(2_000, random_state=50)
        y_test = np.clip(y_test, -1, 1)

        def mean_mse(epsilon):
            values = []
            for seed in range(10):
                model = SufficientStatisticsRidge(
                    2, epsilon=epsilon, regularization=0.01
                ).fit(x, y, random_state=seed)
                values.append(model.mean_squared_error(x_test, y_test))
            return float(np.mean(values))

        assert mean_mse(100.0) < mean_mse(0.05)

    def test_rejects_unbounded_targets(self):
        model = SufficientStatisticsRidge(1, 1.0, y_bound=1.0)
        x = np.array([[0.5], [0.5]])
        y = np.array([5.0, 0.0])
        with pytest.raises(ValidationError):
            model.fit(x, y, random_state=0)

    def test_rejects_wrong_dimension(self, regression_data):
        _, x, y = regression_data
        model = SufficientStatisticsRidge(3, 1.0)
        with pytest.raises(ValidationError):
            model.fit(x, y, random_state=0)


class TestBetaShapeFamily:
    def test_candidates_are_distributions(self):
        family = beta_shape_family(8, [(2.0, 2.0), (1.0, 3.0)])
        for candidate in family:
            probs = np.asarray(candidate)
            assert probs.sum() == pytest.approx(1.0)
            assert (probs > 0).all()

    def test_symmetric_shape_is_symmetric(self):
        (candidate,) = beta_shape_family(10, [(3.0, 3.0)])
        probs = np.asarray(candidate)
        assert probs == pytest.approx(probs[::-1])

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            beta_shape_family(8, [(0.0, 1.0)])
        with pytest.raises(ValidationError):
            beta_shape_family(1, [(1.0, 1.0)])


class TestGibbsDensityEstimator:
    @pytest.fixture
    def skewed_data(self):
        rng = np.random.default_rng(4)
        return rng.beta(8.0, 2.0, size=800)

    def test_picks_the_right_shape_at_large_epsilon(self, skewed_data):
        est = GibbsDensityEstimator(epsilon=50.0, sample_size=len(skewed_data))
        est.fit(skewed_data, random_state=5)
        reference = discretize_density(
            lambda x: x**7 * (1 - x) if 0 < x < 1 else 0.0, est.bins
        )
        assert est.total_variation_to(reference) < 0.25

    def test_posterior_flat_at_tiny_epsilon(self, skewed_data):
        est = GibbsDensityEstimator(epsilon=1e-5, sample_size=len(skewed_data))
        dist = est.output_distribution(skewed_data)
        assert dist.entropy() == pytest.approx(
            np.log(len(est.candidates)), abs=1e-3
        )

    def test_pdf_integrates_to_one(self, skewed_data):
        est = GibbsDensityEstimator(epsilon=10.0, sample_size=len(skewed_data))
        est.fit(skewed_data, random_state=6)
        xs = np.linspace(0, 1, 10_001)[:-1] + 0.5e-4
        assert np.mean(est.pdf(xs)) == pytest.approx(1.0, abs=0.01)

    def test_rejects_out_of_range_data(self):
        est = GibbsDensityEstimator(epsilon=1.0, sample_size=3)
        with pytest.raises(ValidationError):
            est.fit([0.5, 1.5, 0.2], random_state=0)


class TestLaplaceHistogramDensity:
    def test_recovers_distribution_at_large_epsilon(self):
        rng = np.random.default_rng(7)
        data = rng.beta(2.0, 5.0, size=20_000)
        est = LaplaceHistogramDensity(epsilon=100.0, bins=16).fit(
            data, random_state=8
        )
        reference = discretize_density(
            lambda x: 30 * x * (1 - x) ** 4 if 0 < x < 1 else 0.0, 16
        )
        assert est.total_variation_to(reference) < 0.05

    def test_noise_dominates_at_tiny_epsilon(self):
        rng = np.random.default_rng(9)
        data = rng.beta(2.0, 5.0, size=200)
        uniform = np.full(16, 1 / 16)
        est = LaplaceHistogramDensity(epsilon=0.001, bins=16).fit(
            data, random_state=10
        )
        # With this much noise the estimate is far from the truth.
        reference = discretize_density(
            lambda x: 30 * x * (1 - x) ** 4 if 0 < x < 1 else 0.0, 16
        )
        assert est.total_variation_to(reference) > 0.2 or est.total_variation_to(
            uniform
        ) < 0.4

    def test_probabilities_normalized(self):
        rng = np.random.default_rng(11)
        est = LaplaceHistogramDensity(epsilon=1.0).fit(
            rng.uniform(size=100), random_state=12
        )
        assert est.bin_probabilities.sum() == pytest.approx(1.0)
        assert (est.bin_probabilities >= 0).all()

    def test_pdf_before_fit(self):
        with pytest.raises(NotFittedError):
            LaplaceHistogramDensity(epsilon=1.0).pdf([0.5])


class TestDiscretizeDensity:
    def test_uniform_density(self):
        probs = discretize_density(lambda x: 1.0, 4)
        assert probs == pytest.approx([0.25] * 4)

    def test_rejects_negative_pdf(self):
        with pytest.raises(ValidationError):
            discretize_density(lambda x: -1.0, 4)

    def test_normalizes_unnormalized_pdf(self):
        probs = discretize_density(lambda x: 7.0, 8)
        assert probs.sum() == pytest.approx(1.0)
