"""Unit tests for entropies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information import (
    binary_entropy,
    conditional_entropy,
    cross_entropy,
    entropy,
    joint_entropy,
)


def simplex(size: int):
    return st.lists(st.floats(1e-6, 1.0), min_size=size, max_size=size).map(
        lambda ws: [w / sum(ws) for w in ws]
    )


class TestEntropy:
    def test_uniform_is_log_k(self):
        assert entropy([0.25] * 4) == pytest.approx(np.log(4))

    def test_point_mass_is_zero(self):
        assert entropy([1.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_accepts_discrete_distribution(self):
        dist = DiscreteDistribution(["a", "b"], [0.5, 0.5])
        assert entropy(dist) == pytest.approx(np.log(2))

    @given(simplex(5))
    def test_bounded_by_log_support(self, probs):
        assert 0.0 <= entropy(probs) <= np.log(5) + 1e-9


class TestBinaryEntropy:
    def test_symmetric(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_half_is_log_two(self):
        assert binary_entropy(0.5) == pytest.approx(np.log(2))

    def test_endpoints_zero(self):
        assert binary_entropy(0.0) == pytest.approx(0.0)
        assert binary_entropy(1.0) == pytest.approx(0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            binary_entropy(1.5)


class TestCrossEntropy:
    def test_self_cross_entropy_is_entropy(self):
        p = [0.2, 0.8]
        assert cross_entropy(p, p) == pytest.approx(entropy(p))

    def test_gibbs_inequality(self):
        p = [0.2, 0.8]
        q = [0.6, 0.4]
        assert cross_entropy(p, q) >= entropy(p)

    def test_missing_mass_is_infinite(self):
        assert cross_entropy([0.5, 0.5], [1.0, 0.0]) == np.inf

    def test_zero_p_mass_ignores_q(self):
        assert cross_entropy([1.0, 0.0], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            cross_entropy([1.0], [0.5, 0.5])


class TestJointEntropy:
    def test_independent_product_adds(self):
        px = np.array([0.3, 0.7])
        py = np.array([0.5, 0.5])
        joint = np.outer(px, py)
        assert joint_entropy(joint) == pytest.approx(entropy(px) + entropy(py))

    def test_rejects_non_matrix(self):
        with pytest.raises(ValidationError):
            joint_entropy([0.5, 0.5])

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            joint_entropy([[0.5, 0.5], [0.5, 0.5]])


class TestConditionalEntropy:
    def test_independent_gives_marginal_entropy(self):
        px = np.array([0.3, 0.7])
        py = np.array([0.25, 0.75])
        joint = np.outer(px, py)
        assert conditional_entropy(joint) == pytest.approx(entropy(py))

    def test_deterministic_channel_gives_zero(self):
        # Y = X: joint is diagonal.
        joint = np.diag([0.4, 0.6])
        assert conditional_entropy(joint) == pytest.approx(0.0)

    def test_chain_rule(self):
        rng = np.random.default_rng(0)
        joint = rng.dirichlet(np.ones(6)).reshape(2, 3)
        h_x = entropy(joint.sum(axis=1))
        assert conditional_entropy(joint) == pytest.approx(
            joint_entropy(joint) - h_x
        )
