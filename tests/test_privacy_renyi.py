"""Unit tests for Rényi differential privacy."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid
from repro.privacy import (
    RenyiSpec,
    compose_rdp,
    measure_rdp,
    optimal_rdp_to_dp,
    rdp_of_gaussian,
    rdp_of_laplace,
    rdp_of_pure_dp,
)


class TestRenyiSpec:
    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValidationError):
            RenyiSpec(alpha=1.0, rho=0.1)

    def test_compose_adds_rho(self):
        a = RenyiSpec(2.0, 0.3)
        b = RenyiSpec(2.0, 0.5)
        assert a.compose(b).rho == pytest.approx(0.8)

    def test_compose_requires_common_alpha(self):
        with pytest.raises(ValidationError):
            RenyiSpec(2.0, 0.3).compose(RenyiSpec(3.0, 0.3))

    def test_conversion_formula(self):
        spec = RenyiSpec(alpha=10.0, rho=0.5)
        out = spec.to_approximate_dp(delta=1e-5)
        assert out.epsilon == pytest.approx(0.5 + np.log(1e5) / 9.0)
        assert out.delta == 1e-5

    def test_str(self):
        assert "RDP" in str(RenyiSpec(2.0, 0.1))


class TestClosedForms:
    def test_pure_dp_curve_small_epsilon_quadratic(self):
        # Exact RR curve behaves as α·ε²/2 for small ε.
        eps, alpha = 0.01, 2.0
        spec = rdp_of_pure_dp(epsilon=eps, alpha=alpha)
        assert spec.rho == pytest.approx(alpha * eps**2 / 2, rel=0.05)

    def test_pure_dp_curve_is_exact_rr_divergence(self):
        from repro.information import renyi_divergence

        eps, alpha = 0.8, 3.0
        p = np.exp(eps) / (1 + np.exp(eps))
        expected = renyi_divergence([p, 1 - p], [1 - p, p], alpha)
        assert rdp_of_pure_dp(eps, alpha).rho == pytest.approx(expected)

    def test_pure_dp_curve_caps_at_epsilon(self):
        spec = rdp_of_pure_dp(epsilon=3.0, alpha=500.0)
        assert spec.rho <= 3.0 + 1e-12

    def test_pure_dp_curve_dominates_any_dp_mechanism(self):
        """No ε-DP pair of output laws exceeds the RR curve at any α —
        randomized response is extremal for Rényi leakage."""
        from repro.core import GibbsPosterior
        from repro.learning import BernoulliTask, PredictorGrid
        from repro.privacy.renyi import measure_rdp

        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        gibbs = GibbsPosterior(grid, temperature=3.0)
        eps = gibbs.privacy_epsilon(2)
        for alpha in [1.5, 2.0, 8.0]:
            measured = measure_rdp(gibbs.posterior, [0, 1], 2, alpha)
            assert measured <= rdp_of_pure_dp(eps, alpha).rho + 1e-9

    def test_gaussian_rdp_linear_in_alpha(self):
        a = rdp_of_gaussian(1.0, sigma=2.0, alpha=2.0)
        b = rdp_of_gaussian(1.0, sigma=2.0, alpha=4.0)
        assert b.rho == pytest.approx(2 * a.rho)

    def test_laplace_rdp_below_pure_epsilon(self):
        # Laplace is ε-DP with ε = Δ/b; its RDP at finite α is < ε.
        spec = rdp_of_laplace(sensitivity=1.0, scale=1.0, alpha=2.0)
        assert 0 < spec.rho < 1.0

    def test_laplace_rdp_approaches_epsilon_at_large_alpha(self):
        eps = 1.0
        spec = rdp_of_laplace(1.0, 1.0, alpha=500.0)
        assert spec.rho == pytest.approx(eps, abs=0.02)

    def test_laplace_rdp_increasing_in_alpha(self):
        rhos = [rdp_of_laplace(1.0, 1.0, a).rho for a in [1.5, 3.0, 10.0, 100.0]]
        assert all(x <= y + 1e-12 for x, y in zip(rhos, rhos[1:]))


class TestComposition:
    def test_compose_many(self):
        specs = [RenyiSpec(2.0, 0.1)] * 5
        assert compose_rdp(specs).rho == pytest.approx(0.5)

    def test_rdp_beats_basic_composition_for_many_small_queries(self):
        """The reason RDP exists: k small-ε queries convert to a much
        smaller total ε than basic composition's k·ε."""
        eps, k, delta = 0.1, 200, 1e-6
        basic_epsilon = k * eps

        def curve(alpha):
            return compose_rdp([rdp_of_pure_dp(eps, alpha)] * k)

        converted = optimal_rdp_to_dp(curve, delta)
        assert converted.epsilon < basic_epsilon

    def test_optimal_conversion_no_worse_than_any_alpha(self):
        def curve(alpha):
            return compose_rdp([rdp_of_gaussian(1.0, 1.0, alpha)] * 10)

        best = optimal_rdp_to_dp(curve, 1e-5)
        for alpha in [1.5, 2.0, 8.0, 32.0]:
            assert best.epsilon <= curve(alpha).to_approximate_dp(1e-5).epsilon + 1e-9


class TestMeasureRdp:
    def test_gibbs_rdp_below_pure_dp_guarantee(self):
        """Measured Rényi divergence of the Gibbs mechanism at finite α
        never exceeds the pure-DP bound (Rényi is monotone in α)."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        from repro.core import GibbsPosterior

        gibbs = GibbsPosterior(grid, temperature=3.0)
        pure = gibbs.privacy_epsilon(2)
        for alpha in [1.5, 2.0, 8.0]:
            measured = measure_rdp(gibbs.posterior, [0, 1], 2, alpha)
            assert measured <= pure + 1e-9

    def test_measured_rdp_monotone_in_alpha(self):
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        from repro.core import GibbsPosterior

        gibbs = GibbsPosterior(grid, temperature=5.0)
        values = [
            measure_rdp(gibbs.posterior, [0, 1], 2, alpha)
            for alpha in [1.5, 2.0, 4.0, 16.0]
        ]
        assert all(a <= b + 1e-10 for a, b in zip(values, values[1:]))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            measure_rdp(lambda d: None, [0, 1], 1, alpha=0.5)
