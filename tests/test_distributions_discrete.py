"""Unit + property tests for DiscreteDistribution."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distributions import DiscreteDistribution
from repro.exceptions import SupportMismatchError, ValidationError


def simplex(size: int):
    """Hypothesis strategy for a probability vector of the given size."""
    return st.lists(
        st.floats(1e-6, 1.0), min_size=size, max_size=size
    ).map(lambda ws: [w / sum(ws) for w in ws])


class TestConstruction:
    def test_basic(self):
        dist = DiscreteDistribution(["a", "b"], [0.3, 0.7])
        assert dist.probability_of("a") == pytest.approx(0.3)
        assert len(dist) == 2

    def test_rejects_empty_support(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution(["a"], [0.5, 0.5])

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution(["a", "a"], [0.5, 0.5])

    def test_rejects_unnormalized(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution(["a", "b"], [0.5, 0.6])

    def test_probabilities_read_only(self):
        dist = DiscreteDistribution(["a", "b"], [0.3, 0.7])
        with pytest.raises(ValueError):
            dist.probabilities[0] = 0.9

    def test_uniform(self):
        dist = DiscreteDistribution.uniform(range(4))
        assert dist.probabilities == pytest.approx([0.25] * 4)

    def test_point_mass(self):
        dist = DiscreteDistribution.point_mass(["a", "b", "c"], "b")
        assert dist.probability_of("b") == 1.0
        assert dist.entropy() == pytest.approx(0.0)

    def test_point_mass_outside_support(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution.point_mass(["a"], "z")

    def test_from_log_weights(self):
        dist = DiscreteDistribution.from_log_weights(["a", "b"], [0.0, np.log(3.0)])
        assert dist.probabilities == pytest.approx([0.25, 0.75])

    def test_from_log_weights_extreme(self):
        dist = DiscreteDistribution.from_log_weights([0, 1], [-2000.0, 0.0])
        assert dist.probability_of(1) == pytest.approx(1.0)

    def test_from_counts(self):
        dist = DiscreteDistribution.from_counts(["x", "y"], [1, 3])
        assert dist.probability_of("y") == pytest.approx(0.75)

    def test_from_counts_all_zero(self):
        with pytest.raises(ValidationError):
            DiscreteDistribution.from_counts(["x"], [0])

    def test_from_samples(self):
        dist = DiscreteDistribution.from_samples("aab")
        assert dist.probability_of("a") == pytest.approx(2 / 3)


class TestQueries:
    def test_outside_support_is_zero(self):
        dist = DiscreteDistribution(["a"], [1.0])
        assert dist.probability_of("z") == 0.0

    def test_expectation_identity(self):
        dist = DiscreteDistribution([0.0, 1.0], [0.25, 0.75])
        assert dist.expectation() == pytest.approx(0.75)

    def test_expectation_of_function(self):
        dist = DiscreteDistribution([0, 1], [0.5, 0.5])
        assert dist.expectation(lambda z: z * 10) == pytest.approx(5.0)

    def test_variance(self):
        dist = DiscreteDistribution([0.0, 1.0], [0.5, 0.5])
        assert dist.variance() == pytest.approx(0.25)

    def test_entropy_uniform_is_log_k(self):
        dist = DiscreteDistribution.uniform(range(8))
        assert dist.entropy() == pytest.approx(np.log(8))

    def test_mode(self):
        dist = DiscreteDistribution(["a", "b"], [0.2, 0.8])
        assert dist.mode() == "b"


class TestOperations:
    def test_map_merges_collisions(self):
        dist = DiscreteDistribution([-1, 0, 1], [0.2, 0.3, 0.5])
        image = dist.map(abs)
        assert image.probability_of(1) == pytest.approx(0.7)
        assert image.probability_of(0) == pytest.approx(0.3)

    def test_condition(self):
        dist = DiscreteDistribution([1, 2, 3, 4], [0.1, 0.2, 0.3, 0.4])
        even = dist.condition(lambda z: z % 2 == 0)
        assert even.probability_of(2) == pytest.approx(0.2 / 0.6)

    def test_condition_on_null_event(self):
        dist = DiscreteDistribution([1], [1.0])
        with pytest.raises(ValidationError):
            dist.condition(lambda z: z > 10)

    def test_product(self):
        a = DiscreteDistribution([0, 1], [0.5, 0.5])
        b = DiscreteDistribution(["x"], [1.0])
        prod = a.product(b)
        assert prod.probability_of((0, "x")) == pytest.approx(0.5)

    def test_power_support_size(self):
        dist = DiscreteDistribution([0, 1], [0.3, 0.7])
        cubed = dist.power(3)
        assert len(cubed) == 8
        assert cubed.probability_of((1, 1, 1)) == pytest.approx(0.7**3)

    def test_power_one(self):
        dist = DiscreteDistribution([0, 1], [0.3, 0.7])
        single = dist.power(1)
        assert single.probability_of((1,)) == pytest.approx(0.7)

    def test_power_entropy_is_n_times(self):
        dist = DiscreteDistribution([0, 1], [0.3, 0.7])
        assert dist.power(3).entropy() == pytest.approx(3 * dist.entropy())

    def test_mix(self):
        a = DiscreteDistribution([0, 1], [1.0, 0.0])
        b = DiscreteDistribution([0, 1], [0.0, 1.0])
        mixed = a.mix(b, 0.25)
        assert mixed.probabilities == pytest.approx([0.25, 0.75])

    def test_mix_requires_same_support(self):
        a = DiscreteDistribution([0, 1], [0.5, 0.5])
        b = DiscreteDistribution([0, 2], [0.5, 0.5])
        with pytest.raises(SupportMismatchError):
            a.mix(b, 0.5)

    def test_tilt_is_exponential_reweighting(self):
        dist = DiscreteDistribution([0, 1], [0.5, 0.5])
        tilted = dist.tilt(np.log([1.0, 3.0]))
        assert tilted.probabilities == pytest.approx([0.25, 0.75])

    def test_tilt_with_zero_factors_is_identity(self):
        dist = DiscreteDistribution([0, 1, 2], [0.2, 0.3, 0.5])
        assert dist.tilt([0.0, 0.0, 0.0]).probabilities == pytest.approx(
            dist.probabilities
        )

    def test_total_variation(self):
        a = DiscreteDistribution([0, 1], [1.0, 0.0])
        b = DiscreteDistribution([0, 1], [0.0, 1.0])
        assert a.total_variation_distance(b) == pytest.approx(1.0)

    def test_sample_reproducible(self):
        dist = DiscreteDistribution(["a", "b"], [0.5, 0.5])
        first = dist.sample(size=10, random_state=0)
        second = dist.sample(size=10, random_state=0)
        assert first == second

    def test_sample_single(self):
        dist = DiscreteDistribution(["only"], [1.0])
        assert dist.sample(random_state=0) == "only"

    def test_sample_frequencies(self):
        dist = DiscreteDistribution([0, 1], [0.2, 0.8])
        draws = dist.sample(size=5000, random_state=1)
        assert np.mean(draws) == pytest.approx(0.8, abs=0.03)


class TestProperties:
    @given(simplex(4))
    def test_entropy_nonnegative_and_bounded(self, probs):
        dist = DiscreteDistribution(range(4), probs)
        assert 0.0 <= dist.entropy() <= np.log(4) + 1e-9

    @given(simplex(3), simplex(3))
    def test_tv_is_metric_like(self, p, q):
        a = DiscreteDistribution(range(3), p)
        b = DiscreteDistribution(range(3), q)
        tv = a.total_variation_distance(b)
        assert 0.0 <= tv <= 1.0 + 1e-12
        assert tv == pytest.approx(b.total_variation_distance(a))

    @given(simplex(3))
    def test_tilt_then_untilt_roundtrips(self, probs):
        dist = DiscreteDistribution(range(3), probs)
        factors = np.array([0.5, -1.0, 2.0])
        roundtrip = dist.tilt(factors).tilt(-factors)
        assert roundtrip.probabilities == pytest.approx(
            dist.probabilities, abs=1e-10
        )
