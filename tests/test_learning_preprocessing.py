"""Unit tests for the preprocessing helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning.preprocessing import (
    PublicScaler,
    clip_to_unit_ball,
    clip_values,
    symmetrize_labels,
)


class TestClipToUnitBall:
    def test_large_rows_projected(self):
        x = np.array([[3.0, 4.0]])
        out = clip_to_unit_ball(x)
        assert np.linalg.norm(out[0]) == pytest.approx(1.0)
        # Direction preserved.
        assert out[0] == pytest.approx([0.6, 0.8])

    def test_small_rows_untouched(self):
        x = np.array([[0.1, 0.2]])
        assert clip_to_unit_ball(x) == pytest.approx(x)

    def test_custom_radius(self):
        x = np.array([[10.0, 0.0]])
        out = clip_to_unit_ball(x, radius=2.0)
        assert np.linalg.norm(out[0]) == pytest.approx(2.0)

    def test_zero_row_safe(self):
        out = clip_to_unit_ball(np.zeros((1, 3)))
        assert out == pytest.approx(np.zeros((1, 3)))

    def test_recordwise_independence(self):
        """Changing one row never changes another — the property that makes
        clipping privacy-free preprocessing."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 3)) * 3
        base = clip_to_unit_ball(x)
        x2 = x.copy()
        x2[0] = rng.normal(size=3) * 10
        other = clip_to_unit_ball(x2)
        assert other[1:] == pytest.approx(base[1:])


class TestClipValues:
    def test_clips(self):
        assert clip_values([-5.0, 0.5, 5.0], 0.0, 1.0).tolist() == [0.0, 0.5, 1.0]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            clip_values([0.0], 1.0, 0.0)


class TestPublicScaler:
    def test_maps_bounds_to_unit_interval(self):
        scaler = PublicScaler(lower=[0.0], upper=[10.0])
        out = scaler.transform([[0.0], [5.0], [10.0]])
        assert out.ravel() == pytest.approx([-1.0, 0.0, 1.0])

    def test_out_of_bounds_clipped(self):
        scaler = PublicScaler(lower=[0.0], upper=[1.0])
        assert scaler.transform([[99.0]])[0, 0] == pytest.approx(1.0)

    def test_unit_ball_guarantee(self):
        rng = np.random.default_rng(1)
        scaler = PublicScaler(lower=[0.0, -5.0, 10.0], upper=[1.0, 5.0, 20.0])
        x = rng.uniform(-10, 30, size=(200, 3))
        out = scaler.transform_to_unit_ball(x)
        assert np.linalg.norm(out, axis=1).max() <= 1.0 + 1e-12

    def test_wrong_width_rejected(self):
        scaler = PublicScaler(lower=[0.0], upper=[1.0])
        with pytest.raises(ValidationError):
            scaler.transform(np.zeros((2, 3)))

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            PublicScaler(lower=[1.0], upper=[0.0])

    def test_end_to_end_with_private_erm(self):
        """Scaled data satisfies the private-ERM contract out of the box."""
        from repro.learning import LogisticLoss
        from repro.private_learning import OutputPerturbationClassifier

        rng = np.random.default_rng(2)
        raw = rng.uniform(0, 100, size=(150, 2))
        y = np.where(raw[:, 0] > 50, 1, -1)
        scaler = PublicScaler(lower=[0.0, 0.0], upper=[100.0, 100.0])
        x = scaler.transform_to_unit_ball(raw)
        clf = OutputPerturbationClassifier(LogisticLoss(), 0.05, epsilon=20.0)
        clf.fit(x, y, random_state=3)
        assert clf.accuracy(x, y) > 0.8


class TestSymmetrizeLabels:
    def test_zero_one_mapped(self):
        assert symmetrize_labels([0, 1, 0]).tolist() == [-1, 1, -1]

    def test_already_symmetric_untouched(self):
        assert symmetrize_labels([-1, 1]).tolist() == [-1, 1]

    def test_rejects_other_labels(self):
        with pytest.raises(ValidationError):
            symmetrize_labels([1, 2])
