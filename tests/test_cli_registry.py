"""Tests for the CLI and the experiment registry."""

import pathlib

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.registry import EXPERIMENTS, get_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestRegistry:
    def test_ids_are_unique_and_ordered(self):
        ids = [e.id for e in EXPERIMENTS]
        assert ids == [f"E{k}" for k in range(1, len(ids) + 1)]

    def test_every_bench_file_exists(self):
        for experiment in EXPERIMENTS:
            assert (REPO_ROOT / experiment.bench).is_file(), experiment.bench

    def test_every_bench_file_is_registered(self):
        bench_files = {
            f"benchmarks/{p.name}"
            for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
        }
        registered = {e.bench for e in EXPERIMENTS}
        assert bench_files == registered

    def test_every_module_importable(self):
        import importlib

        for experiment in EXPERIMENTS:
            for module in experiment.modules:
                importlib.import_module(module)

    def test_lookup(self):
        assert get_experiment("e4").id == "E4"

    def test_lookup_unknown(self):
        with pytest.raises(ValidationError):
            get_experiment("E99")


class TestCli:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment in EXPERIMENTS:
            assert experiment.id in out

    def test_audit_passes(self, capsys):
        code = main(
            ["audit", "--epsilon", "1.0", "--n", "2", "--grid-size", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out

    def test_tradeoff_prints_table(self, capsys):
        code = main(["tradeoff", "--epsilons", "0.5", "5.0", "--n", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frontier" in out
        assert out.count("\n") >= 4

    def test_release_prints_guarantee(self, capsys):
        code = main(["release", "--epsilon", "2.0", "--n", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2-DP" in out
        assert "true risk" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
