"""Tests for the CLI and the experiment registry."""

import pathlib

import pytest

from repro.cli import main
from repro.exceptions import ValidationError
from repro.experiments.registry import EXPERIMENTS, get_experiment

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestRegistry:
    def test_ids_are_unique_and_ordered(self):
        ids = [e.id for e in EXPERIMENTS]
        assert ids == [f"E{k}" for k in range(1, len(ids) + 1)]

    def test_every_bench_file_exists(self):
        for experiment in EXPERIMENTS:
            assert (REPO_ROOT / experiment.bench).is_file(), experiment.bench

    def test_every_bench_file_is_registered(self):
        bench_files = {
            f"benchmarks/{p.name}"
            for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
        }
        registered = {e.bench for e in EXPERIMENTS}
        assert bench_files == registered

    def test_every_module_importable(self):
        import importlib

        for experiment in EXPERIMENTS:
            for module in experiment.modules:
                importlib.import_module(module)

    def test_lookup(self):
        assert get_experiment("e4").id == "E4"

    def test_lookup_unknown(self):
        with pytest.raises(ValidationError):
            get_experiment("E99")


class TestCli:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment in EXPERIMENTS:
            assert experiment.id in out

    def test_audit_passes(self, capsys):
        code = main(
            ["audit", "gibbs", "--epsilon", "1.0", "--n", "2",
             "--samples", "2000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out
        assert "exact" in out  # the Gibbs family also runs the enumeration audit

    def test_tradeoff_prints_table(self, capsys):
        code = main(["tradeoff", "--epsilons", "0.5", "5.0", "--n", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "frontier" in out
        assert out.count("\n") >= 4

    def test_release_prints_guarantee(self, capsys):
        code = main(["release", "--epsilon", "2.0", "--n", "50"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2-DP" in out
        assert "true risk" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliLint:
    def test_lint_clean_tree_exits_zero(self, capsys):
        import repro

        package_dir = str(pathlib.Path(next(iter(repro.__path__))))
        baseline = str(REPO_ROOT / "benchmarks" / "dplint_baseline.json")
        assert main(["lint", "--baseline", baseline, package_dir]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_lint_violating_file_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mechanisms" / "snippet.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def add_noise(rng, scale):\n"
            '    """Doc.\n\n'
            "    Parameters\n"
            "    ----------\n"
            "    rng, scale : object\n"
            '    """\n'
            "    return rng.laplace(0.0, scale)\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DPL003" in out

    def test_lint_json_output(self, capsys, tmp_path):
        import json

        bad = tmp_path / "repro" / "mechanisms" / "snippet.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(rng):\n    return rng.laplace(0.0, 1.0)\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert any(f["rule_id"] == "DPL003" for f in payload["findings"])

    def test_lint_select_filters_rules(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "mechanisms" / "snippet.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(rng):\n    return rng.laplace(0.0, 1.0)\n")
        # Only the docstring rule selected: the sampling hit disappears.
        assert main(["lint", "--select", "DPL006", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "DPL003" not in out
        assert "DPL006" in out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DPL001", "DPL006"):
            assert rule_id in out

    def test_lint_unknown_select_is_usage_error(self, capsys):
        # A typo'd rule must not silently select nothing and exit 0.
        assert main(["lint", "--select", "DLP003", "."]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err
        assert "DLP003" in err

    def test_lint_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "/no/such/dir/anywhere"]) == 2
        assert "no such file" in capsys.readouterr().err
