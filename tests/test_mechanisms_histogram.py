"""Unit tests for private histograms and linear query workloads."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.mechanisms.histogram import (
    HISTOGRAM_SENSITIVITY,
    LinearQueryWorkload,
    PrivateHistogram,
)


@pytest.fixture
def records():
    return ["a"] * 50 + ["b"] * 30 + ["c"] * 20


class TestPrivateHistogram:
    def test_true_counts(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=1.0)
        assert hist.true_counts(records).tolist() == [50, 30, 20]

    def test_unknown_category_rejected(self):
        hist = PrivateHistogram(["a"], epsilon=1.0)
        with pytest.raises(ValidationError):
            hist.true_counts(["z"])

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValidationError):
            PrivateHistogram(["a", "a"], epsilon=1.0)

    def test_release_unbiased(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=1.0)
        rng = np.random.default_rng(0)
        totals = np.zeros(3)
        trials = 3000
        for _ in range(trials):
            totals += hist.release(records, random_state=rng)
        assert totals / trials == pytest.approx([50, 30, 20], abs=0.6)

    def test_geometric_release_is_integer(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=1.0, noise="geometric")
        out = hist.release(records, random_state=1)
        assert np.allclose(out, np.round(out))

    def test_noise_scale(self):
        hist = PrivateHistogram(["a"], epsilon=0.5)
        assert hist.noise_scale == pytest.approx(HISTOGRAM_SENSITIVITY / 0.5)

    def test_nonnegative_projection(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=0.01)
        hist.release(records, random_state=2)
        assert (hist.nonnegative_counts() >= 0).all()

    def test_nonnegative_before_release_raises(self):
        hist = PrivateHistogram(["a"], epsilon=1.0)
        with pytest.raises(NotFittedError):
            hist.nonnegative_counts()

    def test_expected_max_error_holds_empirically(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=1.0)
        bound = hist.expected_max_error(confidence=0.95)
        rng = np.random.default_rng(3)
        true = hist.true_counts(records)
        hits = 0
        trials = 2000
        for _ in range(trials):
            noisy = hist.release(records, random_state=rng)
            if np.abs(noisy - true).max() <= bound:
                hits += 1
        assert hits / trials >= 0.95 - 0.02

    def test_empirical_dp_of_laplace_histogram(self):
        """Analytic check: neighbouring datasets move two counts by one
        each, so the joint log-density gap is ≤ 2·(1/scale) = ε."""
        hist = PrivateHistogram(["a", "b"], epsilon=1.0)
        # log-density gap per bin shift of 1 is at most 1/scale = ε/2;
        # two bins shift, totalling ε.
        assert 2 * (1.0 / hist.noise_scale) == pytest.approx(hist.epsilon)


class TestLinearQueryWorkload:
    def test_range_query_count(self):
        workload = LinearQueryWorkload.all_range_queries(["a", "b", "c"])
        assert len(workload) == 6  # 3 singletons + 2 pairs + 1 full range

    def test_prefix_queries(self):
        workload = LinearQueryWorkload.prefix_queries(["a", "b", "c"])
        answers = workload.true_answers([5, 3, 2])
        assert answers.tolist() == [5, 8, 10]

    def test_answers_are_post_processing(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=1.0)
        noisy = hist.release(records, random_state=4)
        workload = LinearQueryWorkload.all_range_queries(["a", "b", "c"])
        answers = workload.answer(noisy)
        assert answers.shape == (6,)
        # The full-range query equals the sum of noisy counts exactly.
        full_range = int(np.flatnonzero((workload.matrix == 1).all(axis=1))[0])
        assert answers[full_range] == pytest.approx(noisy.sum())

    def test_rejects_bad_query_matrix(self):
        with pytest.raises(ValidationError):
            LinearQueryWorkload(["a", "b"], [[1.0, 0.0, 0.0]])

    def test_variance_formula_matches_simulation(self, records):
        hist = PrivateHistogram(["a", "b", "c"], epsilon=1.0)
        workload = LinearQueryWorkload.prefix_queries(["a", "b", "c"])
        predicted = workload.per_query_noise_variance(hist.noise_scale)
        rng = np.random.default_rng(5)
        true = workload.true_answers(hist.true_counts(records))
        errors = np.stack(
            [
                workload.answer(hist.release(records, random_state=rng)) - true
                for _ in range(4000)
            ]
        )
        assert errors.var(axis=0) == pytest.approx(predicted, rel=0.1)

    def test_histogram_beats_per_query_laplace_for_large_workloads(self):
        """The classic argument: answering all ranges via one histogram
        release beats splitting ε across the queries."""
        categories = list(range(20))
        workload = LinearQueryWorkload.all_range_queries(categories)
        epsilon = 1.0
        histogram_error = workload.expected_l2_error_histogram(
            HISTOGRAM_SENSITIVITY / epsilon
        )
        per_query_error = workload.expected_l2_error_per_query_laplace(epsilon)
        assert histogram_error < per_query_error
