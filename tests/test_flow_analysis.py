"""Tests for dpflow: the whole-program dataflow layer of dplint.

Covers the project model / symbol resolution / call graph, the taint
engine, each flow rule (DPL007–DPL012) on true-positive and true-negative
fixtures, the suppression baseline, SARIF rendering, the parallel
analyzer's byte-identity guarantee, configuration validation (programmatic
and pyproject), file collection, and pragma edge cases.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    Baseline,
    BaselineEntry,
    analyze_source,
    analyze_sources_parallel,
    apply_baseline,
    config_from_mapping,
    format_sarif,
    format_text,
    load_pyproject_config,
    normalize_path,
    sarif_payload,
)
from repro.analysis.__main__ import run as cli_run
from repro.analysis.config import HAVE_TOML
from repro.analysis.flow import (
    FunctionTaintAnalysis,
    ProjectModel,
    TaintOptions,
    iter_function_defs,
    module_name_for,
)
from repro.analysis.pragmas import PRAGMA_RULE_ID
from repro.exceptions import ConfigurationError, ValidationError


def run_rule(source: str, path: str, rule_id: str, config=None):
    """Findings of one flow rule on dedented ``source`` at virtual ``path``."""
    config = config or AnalysisConfig(select=frozenset({rule_id}))
    report = analyze_source(textwrap.dedent(source), path, config=config)
    return [f for f in report.findings if f.rule_id == rule_id]


def project_of(*pairs):
    """Build a :class:`ProjectModel` from ``(source, path)`` pairs."""
    return ProjectModel.from_sources(
        [(textwrap.dedent(source), path) for source, path in pairs]
    )


# ---------------------------------------------------------------------------
# Project model, symbols, call graph
# ---------------------------------------------------------------------------


class TestProjectModel:
    def test_module_name_for(self):
        assert module_name_for(("privacy", "audit.py")) == "repro.privacy.audit"
        assert module_name_for(("privacy", "__init__.py")) == "repro.privacy"
        assert module_name_for(("cli.py",)) == "repro.cli"

    def test_from_sources_records_syntax_errors(self):
        project = project_of(("def broken(:\n", "core/bad.py"))
        info = project.modules[0]
        assert info.tree is None
        assert isinstance(info.error, SyntaxError)

    def test_module_lookup(self):
        project = project_of(("x = 1\n", "core/mod.py"))
        assert project.module("repro.core.mod") is not None
        assert project.module("repro.core.other") is None

    def test_name_collisions_first_wins(self):
        project = project_of(
            ("x = 1\n", "core/mod.py"), ("y = 2\n", "core/mod.py")
        )
        info = project.module("repro.core.mod")
        assert info is not None and "x = 1" in info.source


class TestSymbols:
    def test_canonicalize_local_symbol(self):
        project = project_of(("def fit(dataset):\n    return 0\n", "core/bayes.py"))
        assert (
            project.symbols.canonicalize("repro.core.bayes", "fit")
            == "repro.core.bayes.fit"
        )

    def test_canonicalize_import_alias(self):
        project = project_of(("import numpy as np\n", "core/mod.py"))
        assert (
            project.symbols.canonicalize("repro.core.mod", "np.array")
            == "numpy.array"
        )

    def test_resolve_module_member_access(self):
        project = project_of(
            ("def fit(dataset):\n    return 0\n", "core/bayes.py"),
            (
                """
                from repro.core import bayes

                def go(dataset):
                    return bayes.fit(dataset)
                """,
                "experiments/go.py",
            ),
        )
        symbol = project.symbols.resolve("repro.experiments.go", "bayes.fit")
        assert symbol is not None
        assert symbol.qualname == "repro.core.bayes.fit"
        assert symbol.kind == "function"


class TestCallGraph:
    def test_cross_module_edge(self):
        project = project_of(
            ("def fit(dataset):\n    return 0\n", "core/bayes.py"),
            (
                """
                from repro.core import bayes

                def go(dataset):
                    return bayes.fit(dataset)
                """,
                "experiments/go.py",
            ),
        )
        graph = project.callgraph
        assert "repro.core.bayes.fit" in graph.callees("repro.experiments.go.go")
        assert "repro.experiments.go.go" in graph.callers("repro.core.bayes.fit")

    def test_self_method_edge_and_neighborhood(self):
        project = project_of(
            (
                """
                class Auditor:
                    def drive(self, dataset):
                        return self.step(dataset)

                    def step(self, dataset):
                        return dataset
                """,
                "privacy/audit.py",
            )
        )
        graph = project.callgraph
        drive = "repro.privacy.audit.Auditor.drive"
        step = "repro.privacy.audit.Auditor.step"
        assert step in graph.callees(drive)
        assert graph.neighborhood(step) == frozenset({step, drive})

    def test_class_call_resolves_to_class(self):
        project = project_of(
            (
                """
                class Acc:
                    def __init__(self):
                        self.total = 0.0

                def make():
                    return Acc()
                """,
                "mechanisms/acc.py",
            )
        )
        graph = project.callgraph
        assert "repro.mechanisms.acc.Acc" in graph.callees(
            "repro.mechanisms.acc.make"
        )


# ---------------------------------------------------------------------------
# Taint engine
# ---------------------------------------------------------------------------


def _analysis_for(source: str):
    import ast

    tree = ast.parse(textwrap.dedent(source))
    _, func = next(iter_function_defs(tree))
    return FunctionTaintAnalysis(tree.body[0], TaintOptions(), lambda name: name)


class TestTaintEngine:
    def test_source_params_are_seeded(self):
        analysis = _analysis_for("def f(dataset, scale):\n    return scale\n")
        assert "dataset" in analysis.env
        assert "scale" not in analysis.env

    def test_sanitizer_reassignment_declassifies(self):
        analysis = _analysis_for(
            """
            def f(dataset, mech):
                x = dataset
                x = mech.release(x)
                return x
            """
        )
        assert "x" not in analysis.env
        assert not list(analysis.iter_sink_events())

    def test_propagation_through_fstring_and_arithmetic(self):
        analysis = _analysis_for(
            """
            def f(dataset):
                total = sum(dataset) / len(dataset)
                message = f"mean={total}"
                return message
            """
        )
        events = list(analysis.iter_sink_events())
        assert [event.kind for event in events] == ["return"]
        assert events[0].label.source == "dataset"

    def test_metadata_attributes_are_clean(self):
        analysis = _analysis_for(
            """
            def f(dataset):
                return dataset.shape
            """
        )
        assert not list(analysis.iter_sink_events())


# ---------------------------------------------------------------------------
# Flow rules DPL007–DPL012
# ---------------------------------------------------------------------------


class TestRawDataEgress:
    """DPL007: tainted values must not reach egress sinks un-released."""

    def test_flags_print_of_raw_aggregate(self):
        findings = run_rule(
            """
            def summarize(dataset):
                total = sum(dataset)
                print(total)
            """,
            "experiments/snippet.py",
            "DPL007",
        )
        assert len(findings) == 1
        assert "parameter 'dataset'" in findings[0].message

    def test_flags_ledger_payload(self):
        findings = run_rule(
            """
            def track(dataset, ledger):
                ledger.record(dataset)
            """,
            "experiments/snippet.py",
            "DPL007",
        )
        assert len(findings) == 1
        assert "ledger.record()" in findings[0].message

    def test_flags_logging_and_file_write(self):
        findings = run_rule(
            """
            import logging

            def dump(dataset, path):
                logging.info("records: %s", dataset)
                path.write_text(str(dataset))
            """,
            "privacy/snippet.py",
            "DPL007",
        )
        assert len(findings) == 2

    def test_released_value_is_clean(self):
        findings = run_rule(
            """
            def summarize(dataset, mech):
                value = mech.release(dataset)
                print(value)
            """,
            "experiments/snippet.py",
            "DPL007",
        )
        assert findings == []

    def test_out_of_scope_package_is_ignored(self):
        findings = run_rule(
            """
            def summarize(dataset):
                print(sum(dataset))
            """,
            "mechanisms/snippet.py",
            "DPL007",
        )
        assert findings == []

    def test_return_sink_only_in_serving(self):
        source = """
        def endpoint(dataset):
            return dataset
        """
        assert len(run_rule(source, "serving/api.py", "DPL007")) == 1
        assert run_rule(source, "experiments/run.py", "DPL007") == []


class TestUnaccountedRelease:
    """DPL008: release with an accountant in scope must be charged."""

    def test_flags_uncharged_release(self):
        findings = run_rule(
            """
            def spend(dataset, mech, accountant):
                return mech.release(dataset)
            """,
            "experiments/snippet.py",
            "DPL008",
        )
        assert len(findings) == 1

    def test_local_charge_clears(self):
        findings = run_rule(
            """
            def spend(dataset, mech, accountant):
                accountant.charge(mech.spec)
                return mech.release(dataset)
            """,
            "experiments/snippet.py",
            "DPL008",
        )
        assert findings == []

    def test_charge_in_direct_caller_clears(self):
        findings = run_rule(
            """
            def helper(dataset, mech, accountant):
                return mech.release(dataset)

            def caller(dataset, mech, accountant):
                accountant.charge(mech.spec)
                return helper(dataset, mech, accountant)
            """,
            "experiments/snippet.py",
            "DPL008",
        )
        assert findings == []

    def test_constructed_accountant_counts(self):
        findings = run_rule(
            """
            from repro.mechanisms.accountant import PrivacyAccountant

            def spend(dataset, mech):
                ledger = PrivacyAccountant(budget=1.0)
                return mech.release(dataset)
            """,
            "experiments/snippet.py",
            "DPL008",
        )
        assert len(findings) == 1

    def test_no_accountant_no_finding(self):
        findings = run_rule(
            """
            def spend(dataset, mech):
                return mech.release(dataset)
            """,
            "experiments/snippet.py",
            "DPL008",
        )
        assert findings == []


class TestEpsilonDrift:
    """DPL009: constructed epsilon must match the charged epsilon."""

    def test_flags_drift(self):
        findings = run_rule(
            """
            def go(dataset, accountant):
                mech = LaplaceMechanism(epsilon=1.0)
                accountant.charge(PrivacySpec(epsilon=0.5))
                return mech
            """,
            "experiments/snippet.py",
            "DPL009",
        )
        assert len(findings) == 1
        assert "[1.0]" in findings[0].message
        assert "[0.5]" in findings[0].message

    def test_matching_epsilons_clean(self):
        findings = run_rule(
            """
            def go(dataset, accountant):
                mech = LaplaceMechanism(epsilon=1.0)
                accountant.charge(PrivacySpec(epsilon=1.0))
                return mech
            """,
            "experiments/snippet.py",
            "DPL009",
        )
        assert findings == []

    def test_shared_constant_is_clean(self):
        findings = run_rule(
            """
            def go(dataset, accountant):
                eps = 0.25
                mech = LaplaceMechanism(epsilon=eps)
                accountant.charge(PrivacySpec(epsilon=eps))
                return mech
            """,
            "experiments/snippet.py",
            "DPL009",
        )
        assert findings == []


class TestScalarReleaseInLoop:
    """DPL010: loop-invariant scalar releases should batch."""

    def test_flags_for_loop(self):
        findings = run_rule(
            """
            def draw(dataset, mech, n):
                out = []
                for _ in range(n):
                    out.append(mech.release(dataset))
                return out
            """,
            "experiments/snippet.py",
            "DPL010",
        )
        assert len(findings) == 1

    def test_flags_comprehension(self):
        findings = run_rule(
            """
            def draw(dataset, mech, n):
                return [mech.release(dataset) for _ in range(n)]
            """,
            "experiments/snippet.py",
            "DPL010",
        )
        assert len(findings) == 1

    def test_loop_dependent_release_is_clean(self):
        findings = run_rule(
            """
            def draw(datasets, mech):
                return [mech.release(d) for d in datasets]
            """,
            "experiments/snippet.py",
            "DPL010",
        )
        assert findings == []

    def test_release_outside_loop_is_clean(self):
        findings = run_rule(
            """
            def draw(dataset, mech):
                return mech.release(dataset)
            """,
            "experiments/snippet.py",
            "DPL010",
        )
        assert findings == []

    def test_first_generator_iter_judged_against_outer_loop(self):
        # The release feeds the comprehension's first iterable (evaluated
        # once per outer iteration), so the outer for-loop is the judge —
        # and exactly one finding is produced, not one per loop level.
        findings = run_rule(
            """
            def draw(dataset, mech, n):
                rows = []
                for seed in range(n):
                    rows.append([x + 1 for x in mech.release(dataset)])
                return rows
            """,
            "experiments/snippet.py",
            "DPL010",
        )
        assert len(findings) == 1

    def test_while_loops_not_counted(self):
        findings = run_rule(
            """
            def draw(dataset, mech, stop):
                while not stop():
                    value = mech.release(dataset)
                return value
            """,
            "experiments/snippet.py",
            "DPL010",
        )
        assert findings == []


class TestTaintThroughException:
    """DPL011: raw data must not appear in raised exception messages."""

    def test_flags_record_in_message(self):
        findings = run_rule(
            """
            def validate(dataset):
                if not dataset:
                    raise ValueError(f"bad dataset: {dataset!r}")
            """,
            "mechanisms/snippet.py",
            "DPL011",
        )
        assert len(findings) == 1

    def test_data_free_message_is_clean(self):
        findings = run_rule(
            """
            def validate(dataset):
                if not dataset:
                    raise ValueError("dataset must be nonempty")
            """,
            "mechanisms/snippet.py",
            "DPL011",
        )
        assert findings == []

    def test_metadata_in_message_is_clean(self):
        findings = run_rule(
            """
            def validate(dataset):
                if dataset.ndim != 1:
                    raise ValueError(f"expected 1-d data, got shape {dataset.shape}")
            """,
            "mechanisms/snippet.py",
            "DPL011",
        )
        assert findings == []


class TestDeadSanitizer:
    """DPL012: a discarded release is pure privacy loss."""

    def test_flags_bare_expression(self):
        findings = run_rule(
            """
            def waste(dataset, mech):
                mech.release(dataset)
            """,
            "experiments/snippet.py",
            "DPL012",
        )
        assert len(findings) == 1

    def test_flags_never_read_assignment(self):
        findings = run_rule(
            """
            def waste(dataset, mech):
                value = mech.release(dataset)
                return None
            """,
            "experiments/snippet.py",
            "DPL012",
        )
        assert len(findings) == 1

    def test_used_result_is_clean(self):
        findings = run_rule(
            """
            def keep(dataset, mech):
                value = mech.release(dataset)
                return value
            """,
            "experiments/snippet.py",
            "DPL012",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

LOOPY = """
def draw(dataset, mech, n):
    return [mech.release(dataset) for _ in range(n)]
"""


def _loopy_report(config=None):
    config = config or AnalysisConfig(select=frozenset({"DPL010"}))
    return analyze_source(
        textwrap.dedent(LOOPY), "experiments/snippet.py", config=config
    )


class TestBaseline:
    def test_normalize_path_package_and_foreign(self):
        assert (
            normalize_path("/repo/src/repro/privacy/audit.py")
            == "repro/privacy/audit.py"
        )
        assert normalize_path("benchmarks/bench.py") == "benchmarks/bench.py"

    def test_round_trip_and_apply(self, tmp_path):
        report = _loopy_report()
        assert len(report.findings) == 1
        baseline = Baseline.from_findings(
            report.findings, default_justification="known, tracked"
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        filtered = apply_baseline(report, loaded)
        assert filtered.ok
        assert filtered.baselined_count == 1
        assert filtered.stale_baseline == []

    def test_stale_entries_reported(self):
        clean = analyze_source(
            "def draw(dataset, mech):\n    return mech.release(dataset)\n",
            "experiments/snippet.py",
            config=AnalysisConfig(select=frozenset({"DPL010"})),
        )
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    path="repro/experiments/snippet.py",
                    rule_id="DPL010",
                    message="gone",
                    justification="was here once",
                )
            ]
        )
        filtered = apply_baseline(clean, baseline)
        assert len(filtered.stale_baseline) == 1
        assert "DPL010" in filtered.stale_baseline[0]

    def test_count_budget_is_enforced(self):
        two = """
        def draw(dataset, mech, n):
            a = [mech.release(dataset) for _ in range(n)]
            b = [mech.release(dataset) for _ in range(n)]
            return a, b
        """
        report = analyze_source(
            textwrap.dedent(two),
            "experiments/snippet.py",
            config=AnalysisConfig(select=frozenset({"DPL010"})),
        )
        assert len(report.findings) == 2
        entry = BaselineEntry(
            path=normalize_path(report.findings[0].path),
            rule_id="DPL010",
            message=report.findings[0].message,
            count=1,
            justification="only one is sanctioned",
        )
        filtered = apply_baseline(report, Baseline(entries=[entry]))
        assert filtered.baselined_count == 1
        assert len(filtered.findings) == 1

    def test_load_rejects_missing_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "dplint-baseline/v1",
                    "entries": [
                        {"path": "x.py", "rule_id": "DPL010", "message": "m"}
                    ],
                }
            )
        )
        with pytest.raises(ConfigurationError, match="justification"):
            Baseline.load(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(ConfigurationError, match="schema"):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def test_structure(self):
        report = _loopy_report()
        payload = sarif_payload(report)
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "dplint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(ids) and len(ids) == len(set(ids))
        assert "DPL000" in ids and "DPL999" in ids

    def test_result_fields_and_rule_index(self):
        report = _loopy_report()
        payload = sarif_payload(report)
        run = payload["runs"][0]
        (result,) = run["results"]
        finding = report.findings[0]
        assert result["ruleId"] == "DPL010"
        assert result["level"] == "warning"
        assert result["message"]["text"] == finding.message
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.column + 1
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "DPL010"

    def test_round_trips_through_baseline_filter(self):
        report = _loopy_report()
        baseline = Baseline.from_findings(
            report.findings, default_justification="accepted"
        )
        filtered = apply_baseline(report, baseline)
        payload = json.loads(format_sarif(filtered))
        assert payload["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# Parallel analyzer
# ---------------------------------------------------------------------------

PARALLEL_SOURCES = [
    (textwrap.dedent(LOOPY), "experiments/one.py"),
    (
        "def validate(dataset):\n"
        '    raise ValueError(f"bad: {dataset!r}")\n',
        "mechanisms/two.py",
    ),
    ("def clean():\n    return 0\n", "core/three.py"),
]


class TestParallel:
    def test_parallel_matches_serial_byte_identically(self):
        config = AnalysisConfig(select=frozenset({"DPL010", "DPL011"}))
        serial = Analyzer(config=config).analyze_sources(PARALLEL_SOURCES)
        parallel = analyze_sources_parallel(PARALLEL_SOURCES, config, jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.files_checked == serial.files_checked
        assert format_text(parallel) == format_text(serial)
        assert format_sarif(parallel) == format_sarif(serial)

    def test_jobs_one_falls_back_to_serial(self):
        config = AnalysisConfig(select=frozenset({"DPL010"}))
        serial = Analyzer(config=config).analyze_sources(PARALLEL_SOURCES)
        fallback = analyze_sources_parallel(PARALLEL_SOURCES, config, jobs=1)
        assert fallback.findings == serial.findings

    def test_invalid_config_raises_in_parent(self):
        config = AnalysisConfig(select=frozenset({"DPL0xx"}))
        with pytest.raises(ConfigurationError):
            analyze_sources_parallel(PARALLEL_SOURCES, config, jobs=2)


# ---------------------------------------------------------------------------
# Configuration validation (satellite: unknown rule ids fail loudly)
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_unknown_select_key_names_nearest_rule(self):
        with pytest.raises(ConfigurationError, match="DPL007"):
            Analyzer(config=AnalysisConfig(select=frozenset({"DPL07"})))

    def test_unknown_rules_table_key(self):
        with pytest.raises(ConfigurationError, match="DPL099"):
            config_from_mapping({"rules": {"DPL099": {}}})

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(ConfigurationError, match="raw-data-egress"):
            config_from_mapping({"select": ["raw-data-egres"]})

    def test_stray_top_level_key(self):
        with pytest.raises(ConfigurationError, match="select"):
            config_from_mapping({"selct": ["DPL001"]})

    def test_bad_severity_name(self):
        with pytest.raises(ConfigurationError, match="severity"):
            config_from_mapping({"rules": {"DPL001": {"severity": "fatal"}}})

    @pytest.mark.skipif(not HAVE_TOML, reason="tomllib unavailable")
    def test_pyproject_unknown_rule_id(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.dplint]\nselect = ["DPL042"]\n')
        with pytest.raises(ConfigurationError, match="DPL042"):
            load_pyproject_config(pyproject)

    @pytest.mark.skipif(not HAVE_TOML, reason="tomllib unavailable")
    def test_pyproject_without_section_is_none(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.other]\nx = 1\n')
        assert load_pyproject_config(pyproject) is None

    @pytest.mark.skipif(not HAVE_TOML, reason="tomllib unavailable")
    def test_pyproject_options_round_trip(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.dplint]\n"
            'ignore = ["DPL006"]\n'
            "[tool.dplint.rules.DPL010]\n"
            'severity = "error"\n'
            "[tool.dplint.rules.DPL010.options]\n"
            'release_methods = ["release", "draw"]\n'
        )
        config = load_pyproject_config(pyproject)
        assert config is not None
        assert "DPL006" in config.ignore
        assert config.rule_option("DPL010", "release_methods", ()) == (
            "release",
            "draw",
        )


# ---------------------------------------------------------------------------
# File collection (satellite: resolve + dedupe + stable ordering)
# ---------------------------------------------------------------------------


class TestCollect:
    def test_overlapping_inputs_dedupe(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "a.py").write_text("x = 1\n")
        (package / "b.py").write_text("y = 2\n")
        collected = Analyzer().collect(
            [str(package), str(package / "a.py"), str(tmp_path / "pkg")]
        )
        resolved = [path for path, _ in collected]
        assert resolved == sorted(set(resolved))
        assert len(resolved) == 2

    def test_symlink_spelling_dedupes(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "a.py").write_text("x = 1\n")
        alias = tmp_path / "alias"
        alias.symlink_to(package)
        collected = Analyzer().collect([str(package), str(alias)])
        assert len(collected) == 1

    def test_missing_path_raises(self):
        with pytest.raises(ValidationError, match="no such file"):
            Analyzer().collect(["/definitely/not/here.py"])

    def test_display_paths_are_stable(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "a.py").write_text("x = 1\n")
        ((path, display),) = Analyzer().collect([str(package)])
        assert path.is_absolute()
        assert display == str(path)  # outside cwd → absolute display


# ---------------------------------------------------------------------------
# Pragma edge cases
# ---------------------------------------------------------------------------


class TestPragmaEdgeCases:
    def test_multi_rule_disable_list(self):
        source = """
        def waste(dataset, mech, n):
            for _ in range(n):
                mech.release(dataset)  # dplint: disable=DPL010,DPL012 -- measured discard
        """
        config = AnalysisConfig(select=frozenset({"DPL010", "DPL012"}))
        report = analyze_source(
            textwrap.dedent(source), "experiments/snippet.py", config=config
        )
        assert report.findings == []
        assert report.suppressed_count == 2

    def test_pragma_on_continuation_line_of_span(self):
        source = """
        def draw(dataset, mech, n):
            return [
                mech.release(
                    dataset
                )  # dplint: disable=DPL010 -- deliberate per-draw stream
                for _ in range(n)
            ]
        """
        config = AnalysisConfig(select=frozenset({"DPL010"}))
        report = analyze_source(
            textwrap.dedent(source), "experiments/snippet.py", config=config
        )
        assert report.findings == []
        assert report.suppressed_count == 1

    def test_missing_justification_reported(self):
        source = """
        def draw(dataset, mech, n):
            return [mech.release(dataset) for _ in range(n)]  # dplint: disable=DPL010
        """
        report = analyze_source(
            textwrap.dedent(source),
            "experiments/snippet.py",
            config=AnalysisConfig(select=frozenset({"DPL010"})),
        )
        pragma = [f for f in report.findings if f.rule_id == PRAGMA_RULE_ID]
        assert len(pragma) == 1
        assert "justification" in pragma[0].message

    def test_unknown_rule_in_pragma_suggests_neighbor(self):
        source = """
        def draw(dataset, mech, n):
            return [mech.release(dataset) for _ in range(n)]  # dplint: disable=DPL0010 -- typo
        """
        report = analyze_source(
            textwrap.dedent(source),
            "experiments/snippet.py",
            config=AnalysisConfig(select=frozenset({"DPL010"})),
        )
        pragma = [f for f in report.findings if f.rule_id == PRAGMA_RULE_ID]
        assert len(pragma) == 1
        assert "did you mean 'DPL010'" in pragma[0].message

    def test_flow_finding_suppressed_at_sink_line(self):
        source = """
        def summarize(dataset):
            total = sum(dataset)
            print(total)  # dplint: disable=DPL007 -- debugging harness only
        """
        report = analyze_source(
            textwrap.dedent(source),
            "experiments/snippet.py",
            config=AnalysisConfig(select=frozenset({"DPL007"})),
        )
        assert report.findings == []
        assert report.suppressed_count == 1


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestCli:
    def _violation_file(self, tmp_path):
        target = tmp_path / "loopy.py"
        target.write_text(textwrap.dedent(LOOPY))
        return str(target)

    def test_exit_one_on_findings(self, tmp_path, capsys):
        assert cli_run([self._violation_file(tmp_path), "--no-config"]) == 1
        assert "DPL010" in capsys.readouterr().out

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        code = cli_run(
            [self._violation_file(tmp_path), "--no-config", "--select", "DPLxyz"]
        )
        assert code == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_sarif_output_parses(self, tmp_path, capsys):
        cli_run([self._violation_file(tmp_path), "--no-config", "--format", "sarif"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        target = self._violation_file(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        assert cli_run([target, "--no-config", "--write-baseline", baseline]) == 0
        assert cli_run([target, "--no-config", "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_stale_baseline_is_surfaced(self, tmp_path, capsys):
        target = self._violation_file(tmp_path)
        baseline = str(tmp_path / "baseline.json")
        cli_run([target, "--no-config", "--write-baseline", baseline])
        # Pay off the debt, keep the baseline entry → stale warning.
        (tmp_path / "loopy.py").write_text(
            "def draw(dataset, mech, n):\n"
            "    return mech.release_many(dataset, n)\n"
        )
        capsys.readouterr()
        assert cli_run([target, "--no-config", "--baseline", baseline]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_parallel_cli_matches_serial(self, tmp_path, capsys):
        target = self._violation_file(tmp_path)
        cli_run([target, "--no-config"])
        serial_out = capsys.readouterr().out
        cli_run([target, "--no-config", "--jobs", "4"])
        assert capsys.readouterr().out == serial_out
