"""Unit tests for the mutual-information generalization bounds."""

import numpy as np
import pytest

from repro.core import (
    GibbsEstimator,
    LearningChannel,
    exact_generalization_gap,
    generalization_report,
    mutual_information_generalization_bound,
    privacy_generalization_bound,
)
from repro.distributions import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.learning import BernoulliTask, PredictorGrid


def build_channel(epsilon: float, n: int = 3, p: float = 0.7):
    task = BernoulliTask(p=p)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
    estimator = GibbsEstimator.from_privacy(grid, epsilon, expected_sample_size=n)
    law = DiscreteDistribution([0, 1], [1 - p, p])
    channel = LearningChannel(law, n, estimator.gibbs.posterior)
    return task, grid, channel


class TestBoundFormulas:
    def test_xu_raginsky_formula(self):
        assert mutual_information_generalization_bound(0.5, 100) == (
            pytest.approx(np.sqrt(0.5 / 200))
        )

    def test_zero_information_zero_gap(self):
        assert mutual_information_generalization_bound(0.0, 10) == 0.0

    def test_scales_with_loss_range(self):
        small = mutual_information_generalization_bound(1.0, 10, loss_range=1.0)
        large = mutual_information_generalization_bound(1.0, 10, loss_range=2.0)
        assert large == pytest.approx(2 * small)

    def test_privacy_chain_is_n_free(self):
        assert privacy_generalization_bound(0.5, 10) == pytest.approx(
            privacy_generalization_bound(0.5, 10_000)
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            mutual_information_generalization_bound(-0.1, 10)
        with pytest.raises(ValidationError):
            mutual_information_generalization_bound(0.1, 0)


class TestExactGap:
    def test_gap_nonnegative_for_gibbs(self):
        """The Gibbs channel fits its own sample, so on average the true
        risk exceeds the empirical risk (overfitting gap ≥ 0)."""
        task, grid, channel = build_channel(epsilon=5.0)
        gap = exact_generalization_gap(
            channel,
            true_risk=task.true_risk,
            empirical_risk=lambda sample, theta: task.empirical_risk(
                theta, sample
            ),
        )
        assert gap >= -1e-12

    def test_gap_increases_with_epsilon(self):
        """Less privacy → more memorization → larger gap."""
        gaps = []
        for epsilon in [0.1, 2.0, 20.0]:
            task, grid, channel = build_channel(epsilon=epsilon)
            gaps.append(
                exact_generalization_gap(
                    channel,
                    true_risk=task.true_risk,
                    empirical_risk=lambda sample, theta: task.empirical_risk(
                        theta, sample
                    ),
                )
            )
        assert gaps[0] < gaps[1] < gaps[2]

    def test_gap_zero_for_constant_channel(self):
        """A channel that ignores the sample cannot overfit: gap = 0."""
        task = BernoulliTask(p=0.7)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 5)
        constant = DiscreteDistribution.uniform(grid.thetas)
        law = DiscreteDistribution([0, 1], [0.3, 0.7])
        channel = LearningChannel(law, 2, lambda sample: constant)
        gap = exact_generalization_gap(
            channel,
            true_risk=task.true_risk,
            empirical_risk=lambda sample, theta: task.empirical_risk(
                theta, sample
            ),
        )
        assert gap == pytest.approx(0.0, abs=1e-12)


class TestGeneralizationReport:
    @pytest.mark.parametrize("epsilon", [0.2, 1.0, 5.0, 20.0])
    def test_xu_raginsky_bound_dominates_measured_gap(self, epsilon):
        task, grid, channel = build_channel(epsilon=epsilon)
        report = generalization_report(
            channel,
            true_risk=task.true_risk,
            empirical_risk=lambda sample, theta: task.empirical_risk(
                theta, sample
            ),
            epsilon=epsilon,
        )
        assert abs(report["generalization_gap"]) <= report["bound_xu_raginsky"]
        assert abs(report["generalization_gap"]) <= report["bound_privacy_chain"]

    def test_mi_bound_tighter_than_privacy_chain(self):
        """The measured-MI route beats the a-priori ε route (I ≤ nε is
        loose for the Gibbs channel, see E9)."""
        task, grid, channel = build_channel(epsilon=1.0)
        report = generalization_report(
            channel,
            true_risk=task.true_risk,
            empirical_risk=lambda sample, theta: task.empirical_risk(
                theta, sample
            ),
            epsilon=1.0,
        )
        assert report["bound_xu_raginsky"] < report["bound_privacy_chain"]
