"""Unit tests for the finite-grid ERM machinery."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learning import (
    BernoulliTask,
    PredictorGrid,
    empirical_risk,
    empirical_risk_matrix,
    erm_minimizer,
)


def absolute_loss(theta, z):
    return abs(theta - z)


class TestEmpiricalRisk:
    def test_mean_of_losses(self):
        assert empirical_risk(absolute_loss, 0.5, [0, 1]) == pytest.approx(0.5)

    def test_rejects_empty_sample(self):
        with pytest.raises(ValidationError):
            empirical_risk(absolute_loss, 0.5, [])

    def test_matrix_shape_and_values(self):
        matrix = empirical_risk_matrix(
            absolute_loss, thetas=[0.0, 1.0], datasets=[[0, 0], [1, 1]]
        )
        assert matrix.shape == (2, 2)
        assert matrix == pytest.approx(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_erm_minimizer(self):
        theta = erm_minimizer(absolute_loss, [0.0, 0.5, 1.0], [1, 1, 1, 0])
        assert theta == 1.0

    def test_erm_tie_break_first(self):
        theta = erm_minimizer(absolute_loss, [0.0, 1.0], [0, 1])
        assert theta == 0.0


class TestPredictorGrid:
    def test_linspace(self):
        grid = PredictorGrid.linspace(absolute_loss, 0.0, 1.0, 5)
        assert len(grid) == 5
        assert grid.thetas[0] == 0.0
        assert grid.thetas[-1] == 1.0

    def test_risk_sensitivity(self):
        grid = PredictorGrid.linspace(absolute_loss, 0.0, 1.0, 3)
        assert grid.risk_sensitivity(10) == pytest.approx(0.1)

    def test_empirical_risks_vector(self):
        grid = PredictorGrid([0.0, 1.0], absolute_loss)
        risks = grid.empirical_risks([0, 0, 1])
        assert risks == pytest.approx([1 / 3, 2 / 3])

    def test_grid_erm(self):
        task = BernoulliTask(p=0.9)
        grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 11)
        sample = task.sample(500, random_state=0)
        assert grid.erm(list(sample)) == pytest.approx(1.0)

    def test_loss_bound_violation_detected(self):
        grid = PredictorGrid([0.0], lambda t, z: 5.0, loss_bounds=(0.0, 1.0))
        with pytest.raises(ValidationError, match="bounds"):
            grid.losses_on(0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            PredictorGrid([0.0], absolute_loss, loss_bounds=(1.0, 0.0))

    def test_rejects_empty_sample(self):
        grid = PredictorGrid([0.0], absolute_loss)
        with pytest.raises(ValidationError):
            grid.empirical_risks([])

    def test_rejects_empty_grid(self):
        with pytest.raises(ValidationError):
            PredictorGrid([], absolute_loss)

    def test_loss_range(self):
        grid = PredictorGrid([0.0], absolute_loss, loss_bounds=(0.5, 2.5))
        assert grid.loss_range == pytest.approx(2.0)
