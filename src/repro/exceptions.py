"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still letting programming errors (``TypeError`` from bad call
signatures, etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or content)."""


class NotNormalizedError(ValidationError):
    """A probability vector does not sum to one within tolerance."""


class ConfigurationError(ValidationError):
    """A tool configuration is malformed (e.g. an unknown dplint rule id).

    Raised eagerly — a typo'd rule id in ``pyproject.toml`` or in an
    ``AnalysisConfig`` must fail the run loudly instead of silently
    configuring nothing and letting a CI gate pass vacuously.
    """


class PrivacyBudgetError(ReproError):
    """A privacy accountant was asked to exceed its remaining budget."""


class SensitivityError(ReproError):
    """A sensitivity value is missing, non-finite, or inconsistent."""


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its iteration budget."""


class ExperimentError(ReproError):
    """A benchmark configuration failed (or timed out) after its retry budget.

    Raised by the experiment runner when ``on_error="raise"``; the original
    exception is chained as ``__cause__``.
    """


class SupportMismatchError(ValidationError):
    """Two distributions that must share a support do not."""


class NotFittedError(ReproError):
    """A model or estimator was used before being fitted."""


class ServingError(ReproError):
    """A serving-layer failure (batch execution, clock driver, drain)."""


class ServingTimeoutError(ServingError):
    """A serving request exceeded its per-request clock timeout.

    The reservation charged at admission is refunded whenever the request
    was still queued (nothing released); a request that timed out while
    its batch was already executing keeps its charge — the release may
    have happened, and the ledger must never under-count one that did.
    """


class ServiceClosedError(ServingError):
    """A request was submitted to (or aborted by) a shut-down service."""


class DPAuditError(ReproError, AssertionError):
    """A statistical audit certified a violation of a claimed DP guarantee.

    Subclasses ``AssertionError`` so ``repro.testing.assert_dp`` composes
    with plain pytest assertions; the failing
    :class:`~repro.testing.StatisticalAuditReport` is attached as the
    ``report`` attribute.
    """
