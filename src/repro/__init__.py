"""repro — differentially-private learning through PAC-Bayes and information
theory.

A from-scratch reproduction of Darakhshan Mir, *"Differentially-private
Learning and Information Theory"* (PAIS workshop @ EDBT 2012). The library
contains:

* the paper's contribution (:mod:`repro.core`): the Gibbs estimator, its
  privacy guarantee (Theorem 4.1), PAC-Bayes bounds and their Gibbs
  minimizer (Theorem 3.1 / Lemma 3.2), the mutual-information-regularized
  learning objective and its Gibbs fixed point (Theorem 4.2), and the
  Figure-1 learning channel;
* every substrate it stands on: a DP mechanism library
  (:mod:`repro.mechanisms`), privacy auditing (:mod:`repro.privacy`),
  information theory (:mod:`repro.information`), discrete distributions and
  samplers (:mod:`repro.distributions`), and a statistical-learning stack
  (:mod:`repro.learning`, :mod:`repro.private_learning`).

Quickstart::

    import numpy as np
    from repro import BernoulliTask, GibbsEstimator, PredictorGrid

    task = BernoulliTask(p=0.8)
    sample = task.sample(100, random_state=0)
    grid = PredictorGrid.linspace(task.loss, 0.0, 1.0, 21)
    learner = GibbsEstimator.from_privacy(grid, epsilon=1.0,
                                          expected_sample_size=100)
    theta = learner.release(list(sample), random_state=0)
"""

from repro.exceptions import (
    ConvergenceError,
    DPAuditError,
    NotFittedError,
    PrivacyBudgetError,
    ReproError,
    SensitivityError,
    ValidationError,
)
from repro.distributions import DiscreteDistribution
from repro.information import (
    DiscreteChannel,
    channel_capacity,
    entropy,
    kl_divergence,
    mutual_information_from_joint,
    rate_distortion,
)
from repro.mechanisms import (
    ExponentialMechanism,
    GaussianMechanism,
    GeometricMechanism,
    LaplaceMechanism,
    Mechanism,
    PrivacyAccountant,
    PrivacySpec,
    RandomizedResponse,
)
from repro.privacy import ExactPrivacyAuditor, SampledPrivacyAuditor
from repro.testing import StatisticalAuditReport, assert_dp, audit_mechanism
from repro.learning import (
    BernoulliTask,
    GaussianThresholdTask,
    LinearSVM,
    LogisticRegressionModel,
    LogisticTask,
    PredictorGrid,
    TwoGaussiansTask,
)
from repro.core import (
    ContinuousGibbsPosterior,
    GibbsEstimator,
    GibbsPosterior,
    LearningChannel,
    catoni_bound,
    evaluate_all_bounds,
    mcallester_bound,
    minimize_tradeoff,
    seeger_bound,
    tradeoff_curve,
)
from repro.private_learning import (
    ExponentialMechanismLearner,
    GibbsERMClassifier,
    ObjectivePerturbationClassifier,
    OutputPerturbationClassifier,
    RegularizedExponentialMechanism,
)

__version__ = "1.0.0"

__all__ = [
    "BernoulliTask",
    "ContinuousGibbsPosterior",
    "ConvergenceError",
    "DPAuditError",
    "DiscreteChannel",
    "DiscreteDistribution",
    "ExactPrivacyAuditor",
    "ExponentialMechanism",
    "ExponentialMechanismLearner",
    "GaussianMechanism",
    "GaussianThresholdTask",
    "GeometricMechanism",
    "GibbsERMClassifier",
    "GibbsEstimator",
    "GibbsPosterior",
    "LaplaceMechanism",
    "LearningChannel",
    "LinearSVM",
    "LogisticRegressionModel",
    "LogisticTask",
    "Mechanism",
    "NotFittedError",
    "ObjectivePerturbationClassifier",
    "OutputPerturbationClassifier",
    "PredictorGrid",
    "PrivacyAccountant",
    "PrivacyBudgetError",
    "PrivacySpec",
    "RandomizedResponse",
    "RegularizedExponentialMechanism",
    "ReproError",
    "SampledPrivacyAuditor",
    "SensitivityError",
    "StatisticalAuditReport",
    "TwoGaussiansTask",
    "ValidationError",
    "assert_dp",
    "audit_mechanism",
    "catoni_bound",
    "channel_capacity",
    "entropy",
    "evaluate_all_bounds",
    "kl_divergence",
    "mcallester_bound",
    "minimize_tradeoff",
    "mutual_information_from_joint",
    "rate_distortion",
    "seeger_bound",
    "tradeoff_curve",
    "__version__",
]
