"""Probability-distribution substrate.

Exact finite computations in the paper (Gibbs channels, mutual information,
privacy ratios) run on :class:`DiscreteDistribution`; continuous noise laws
back the Laplace/Gaussian/vector mechanisms; the samplers make the Gibbs
posterior usable over continuous parameter spaces.
"""

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.continuous import (
    CauchyNoise,
    GammaNormVector,
    GaussianNoise,
    GumbelNoise,
    LaplaceNoise,
    NoiseDistribution,
)
from repro.distributions.sampling import (
    BatchedLangevinSampler,
    LangevinResult,
    MetropolisHastingsSampler,
    inverse_cdf_sample,
    log_acceptance_ratio,
)

__all__ = [
    "BatchedLangevinSampler",
    "CauchyNoise",
    "DiscreteDistribution",
    "GammaNormVector",
    "GaussianNoise",
    "GumbelNoise",
    "LangevinResult",
    "LaplaceNoise",
    "NoiseDistribution",
    "MetropolisHastingsSampler",
    "inverse_cdf_sample",
    "log_acceptance_ratio",
]
