"""Generic samplers.

The Gibbs posterior over a *continuous* parameter space has an intractable
normalizer, but its unnormalized log-density ``log π(θ) - ε R̂(θ)`` is cheap
to evaluate — exactly the setting Metropolis–Hastings handles. The discrete
inverse-CDF sampler backs the exponential mechanism on finite ranges, and
the batched Langevin (MALA) sampler opens the ``d ≫ 1`` regime: many
chains advanced in lock-step as one set of numpy array operations, under a
single stream-disciplined :class:`numpy.random.Generator`.

All Metropolis acceptance arithmetic stays in log-space
(:func:`log_acceptance_ratio`): at Gibbs temperatures of order ``ε·n`` the
density *ratio* overflows ``float64`` long before the log-ratio leaves
``[-10⁹, 10⁹]``, and a non-finite proposal density must reject rather
than wedge the chain in a state it can never leave.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_random_state


def log_acceptance_ratio(
    proposal_log_density, current_log_density, log_correction=0.0
):
    """Metropolis–Hastings log-acceptance ratio, hardened for extremes.

    Returns ``log π(θ') - log π(θ) + c`` (``c`` is the proposal-density
    correction, zero for symmetric random walks) without ever forming the
    ratio itself, so temperatures of order ``ε·n`` cannot overflow
    ``exp``. Non-finite proposal densities — ``+inf`` spikes, ``-inf``
    barriers, ``nan`` from domain errors — yield ``-inf``: the proposal
    is rejected instead of being accepted into a state whose subsequent
    ratios would all be ``inf - inf = nan`` (a silently wedged chain).

    Parameters
    ----------
    proposal_log_density:
        Scalar or array of unnormalized log-densities at the proposals.
    current_log_density:
        Matching log-densities at the current states (finite by chain
        invariant: only finite states are ever accepted).
    log_correction:
        Optional asymmetric-proposal correction
        ``log q(θ|θ') - log q(θ'|θ)``, broadcast against the densities.
    """
    proposal = np.asarray(proposal_log_density, dtype=float)
    current = np.asarray(current_log_density, dtype=float)
    with np.errstate(invalid="ignore"):
        raw = proposal - current + log_correction
        ratio = np.where(
            np.isfinite(proposal) & ~np.isnan(raw), raw, -np.inf
        )
    if ratio.ndim == 0:
        return float(ratio)
    return ratio


def _log_uniform(rng: np.random.Generator, size=None):
    """``log U`` for the acceptance test, warning-free at ``U == 0``."""
    with np.errstate(divide="ignore"):
        return np.log(rng.uniform(size=size))


def inverse_cdf_sample(probabilities, uniforms) -> np.ndarray:
    """Map uniform variates to indices by inverting the discrete CDF.

    Deterministic given ``uniforms``, which makes mechanism tests
    reproducible down to the draw.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or np.any(probs < 0):
        raise ValidationError("probabilities must be a nonnegative vector")
    cdf = np.cumsum(probs)
    if not np.isclose(cdf[-1], 1.0, atol=1e-8):
        raise ValidationError("probabilities must sum to one")
    cdf[-1] = 1.0
    uniforms = np.asarray(uniforms, dtype=float)
    return np.searchsorted(cdf, uniforms, side="right").clip(0, probs.size - 1)


@dataclass
class MetropolisHastingsResult:
    """Samples and diagnostics from an MH run."""

    samples: np.ndarray
    acceptance_rate: float
    log_densities: np.ndarray


class MetropolisHastingsSampler:
    """Random-walk Metropolis–Hastings over ``R^d``.

    Parameters
    ----------
    log_density:
        Unnormalized log-density, callable on a length-``d`` array.
    dimension:
        Dimension ``d`` of the state space.
    step_size:
        Standard deviation of the Gaussian proposal.
    """

    def __init__(
        self,
        log_density: Callable[[np.ndarray], float],
        dimension: int,
        step_size: float = 0.5,
    ) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be >= 1")
        self.log_density = log_density
        self.dimension = int(dimension)
        self.step_size = check_positive(step_size, name="step_size")

    def run(
        self,
        n_samples: int,
        *,
        initial=None,
        burn_in: int = 500,
        thin: int = 1,
        random_state=None,
    ) -> MetropolisHastingsResult:
        """Run the chain and return ``n_samples`` (post burn-in, thinned).

        Parameters
        ----------
        initial:
            Starting state; defaults to the origin.
        burn_in:
            Number of initial iterations discarded.
        thin:
            Keep one state out of every ``thin`` post-burn-in iterations —
            reduces autocorrelation in downstream risk estimates.
        """
        if n_samples < 1:
            raise ValidationError("n_samples must be >= 1")
        if burn_in < 0 or thin < 1:
            raise ValidationError("burn_in must be >= 0 and thin >= 1")
        rng = check_random_state(random_state)

        state = (
            np.zeros(self.dimension)
            if initial is None
            else np.asarray(initial, dtype=float).copy()
        )
        if state.shape != (self.dimension,):
            raise ValidationError(
                f"initial state must have shape ({self.dimension},)"
            )
        current_log_density = float(self.log_density(state))
        if not np.isfinite(current_log_density):
            raise ValidationError(
                "log_density must be finite at the initial state"
            )

        total_iterations = burn_in + n_samples * thin
        samples = np.empty((n_samples, self.dimension))
        log_densities = np.empty(n_samples)
        accepted = 0
        kept = 0

        for iteration in range(total_iterations):
            proposal = state + rng.normal(scale=self.step_size, size=self.dimension)
            proposal_log_density = float(self.log_density(proposal))
            log_ratio = log_acceptance_ratio(
                proposal_log_density, current_log_density
            )
            if _log_uniform(rng) < log_ratio:
                state = proposal
                current_log_density = proposal_log_density
                accepted += 1
            if iteration >= burn_in and (iteration - burn_in) % thin == 0:
                samples[kept] = state
                log_densities[kept] = current_log_density
                kept += 1

        return MetropolisHastingsResult(
            samples=samples,
            acceptance_rate=accepted / total_iterations,
            log_densities=log_densities,
        )


@dataclass
class LangevinResult:
    """Final chain states and diagnostics from a batched MALA run.

    Attributes
    ----------
    samples:
        ``(n_chains, dimension)`` array — each row is one chain's state
        after all steps (one independent draw per chain).
    acceptance_rate:
        Mean acceptance probability over all chains and steps.
    log_densities:
        ``(n_chains,)`` unnormalized log-densities at the final states.
    """

    samples: np.ndarray
    acceptance_rate: float
    log_densities: np.ndarray


class BatchedLangevinSampler:
    """Metropolis-adjusted Langevin (MALA) over ``R^d``, many chains at once.

    Each chain proposes ``θ' = θ + (h²/2)·∇log π(θ) + h·ξ`` with
    ``ξ ~ N(0, I_d)`` and accepts with the exact MH correction for the
    asymmetric proposal, so every chain targets ``π`` exactly. The batch
    advances ``m`` chains in lock-step: one step is a handful of numpy
    operations on ``(m, d)`` arrays instead of ``m`` Python-level
    iterations, which is where the batched speedup comes from.

    **Stream discipline.** All randomness comes from one injected
    :class:`numpy.random.Generator`, consumed in per-chain blocks — chain
    ``i`` draws its ``(steps, d)`` Gaussian block and then its
    ``(steps,)`` uniform block before chain ``i+1`` draws anything. A
    batch of ``m`` chains is therefore bit-identical to ``m`` sequential
    single-chain runs sharing the generator, which is what lets
    ``Mechanism.release_many`` keep its stream-equivalence contract on
    top of this sampler. The step arithmetic is elementwise/`einsum`-free
    per row (callables permitting), so row ``i`` of a batch equals the
    lone row of a one-chain run bit for bit.

    Parameters
    ----------
    log_density:
        Vectorized unnormalized log-density: maps ``(m, d)`` states to
        ``(m,)`` values. Row ``i`` of the result must depend only on row
        ``i`` of the input (no cross-chain reductions), or batched and
        sequential runs will diverge.
    grad_log_density:
        Vectorized gradient: maps ``(m, d)`` states to ``(m, d)``
        gradients, same row-independence requirement.
    dimension:
        Dimension ``d`` of the state space.
    step_size:
        The Langevin step ``h`` (target ~0.5–0.6 acceptance; shrink it if
        acceptance collapses, grow it if acceptance nears 1).
    """

    def __init__(
        self,
        log_density: Callable[[np.ndarray], np.ndarray],
        grad_log_density: Callable[[np.ndarray], np.ndarray],
        dimension: int,
        step_size: float = 0.1,
    ) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be >= 1")
        self.log_density = log_density
        self.grad_log_density = grad_log_density
        self.dimension = int(dimension)
        self.step_size = check_positive(step_size, name="step_size")

    def _draw_blocks(
        self, n_chains: int, steps: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-chain RNG blocks in sequential-run order.

        The loop exists *only* to pin the stream layout; the O(steps·d)
        work per chain is a bulk generator fill, so this is cheap even
        for thousands of chains.
        """
        noise = np.empty((n_chains, steps, self.dimension))
        log_uniforms = np.empty((n_chains, steps))
        for chain in range(n_chains):
            noise[chain] = rng.standard_normal((steps, self.dimension))
            log_uniforms[chain] = _log_uniform(rng, size=steps)
        return noise, log_uniforms

    def run(
        self,
        n_chains: int,
        *,
        steps: int = 100,
        initial=None,
        random_state=None,
    ) -> LangevinResult:
        """Advance ``n_chains`` independent chains ``steps`` steps each.

        Parameters
        ----------
        n_chains:
            Number of chains (= independent draws returned).
        steps:
            MALA steps per chain; doubles as burn-in since only final
            states are returned.
        initial:
            Shared starting state, shape ``(dimension,)``; defaults to
            the origin. Must have finite log-density.
        random_state:
            Seed or :class:`numpy.random.Generator`.
        """
        if n_chains < 1:
            raise ValidationError("n_chains must be >= 1")
        if steps < 1:
            raise ValidationError("steps must be >= 1")
        rng = check_random_state(random_state)
        start = (
            np.zeros(self.dimension)
            if initial is None
            else np.asarray(initial, dtype=float)
        )
        if start.shape != (self.dimension,):
            raise ValidationError(
                f"initial state must have shape ({self.dimension},)"
            )

        state = np.repeat(start[None, :], n_chains, axis=0)
        state_log_density = np.asarray(self.log_density(state), dtype=float)
        if state_log_density.shape != (n_chains,):
            raise ValidationError(
                "log_density must map (m, d) states to (m,) values"
            )
        if not np.all(np.isfinite(state_log_density)):
            raise ValidationError(
                "log_density must be finite at the initial state"
            )
        state_grad = np.asarray(self.grad_log_density(state), dtype=float)
        if state_grad.shape != state.shape:
            raise ValidationError(
                "grad_log_density must map (m, d) states to (m, d) gradients"
            )

        noise, log_uniforms = self._draw_blocks(n_chains, steps, rng)
        h = self.step_size
        half_h2 = 0.5 * h * h
        inv_2h2 = 1.0 / (2.0 * h * h)
        accepted = 0

        for step in range(steps):
            drift = state + half_h2 * state_grad
            proposal = drift + h * noise[:, step, :]
            proposal_log_density = np.asarray(
                self.log_density(proposal), dtype=float
            )
            proposal_grad = np.asarray(
                self.grad_log_density(proposal), dtype=float
            )
            reverse_drift = proposal + half_h2 * proposal_grad
            with np.errstate(invalid="ignore"):
                log_forward = -inv_2h2 * ((proposal - drift) ** 2).sum(axis=1)
                log_backward = -inv_2h2 * ((state - reverse_drift) ** 2).sum(
                    axis=1
                )
                log_ratio = log_acceptance_ratio(
                    proposal_log_density,
                    state_log_density,
                    log_correction=log_backward - log_forward,
                )
            accept = log_uniforms[:, step] < log_ratio
            state = np.where(accept[:, None], proposal, state)
            state_log_density = np.where(
                accept, proposal_log_density, state_log_density
            )
            state_grad = np.where(accept[:, None], proposal_grad, state_grad)
            accepted += int(accept.sum())

        return LangevinResult(
            samples=state,
            acceptance_rate=accepted / (n_chains * steps),
            log_densities=state_log_density,
        )
