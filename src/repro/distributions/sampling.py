"""Generic samplers.

The Gibbs posterior over a *continuous* parameter space has an intractable
normalizer, but its unnormalized log-density ``log π(θ) - ε R̂(θ)`` is cheap
to evaluate — exactly the setting Metropolis–Hastings handles. The discrete
inverse-CDF sampler backs the exponential mechanism on finite ranges.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_random_state


def inverse_cdf_sample(probabilities, uniforms) -> np.ndarray:
    """Map uniform variates to indices by inverting the discrete CDF.

    Deterministic given ``uniforms``, which makes mechanism tests
    reproducible down to the draw.
    """
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or np.any(probs < 0):
        raise ValidationError("probabilities must be a nonnegative vector")
    cdf = np.cumsum(probs)
    if not np.isclose(cdf[-1], 1.0, atol=1e-8):
        raise ValidationError("probabilities must sum to one")
    cdf[-1] = 1.0
    uniforms = np.asarray(uniforms, dtype=float)
    return np.searchsorted(cdf, uniforms, side="right").clip(0, probs.size - 1)


@dataclass
class MetropolisHastingsResult:
    """Samples and diagnostics from an MH run."""

    samples: np.ndarray
    acceptance_rate: float
    log_densities: np.ndarray


class MetropolisHastingsSampler:
    """Random-walk Metropolis–Hastings over ``R^d``.

    Parameters
    ----------
    log_density:
        Unnormalized log-density, callable on a length-``d`` array.
    dimension:
        Dimension ``d`` of the state space.
    step_size:
        Standard deviation of the Gaussian proposal.
    """

    def __init__(
        self,
        log_density: Callable[[np.ndarray], float],
        dimension: int,
        step_size: float = 0.5,
    ) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be >= 1")
        self.log_density = log_density
        self.dimension = int(dimension)
        self.step_size = check_positive(step_size, name="step_size")

    def run(
        self,
        n_samples: int,
        *,
        initial=None,
        burn_in: int = 500,
        thin: int = 1,
        random_state=None,
    ) -> MetropolisHastingsResult:
        """Run the chain and return ``n_samples`` (post burn-in, thinned).

        Parameters
        ----------
        initial:
            Starting state; defaults to the origin.
        burn_in:
            Number of initial iterations discarded.
        thin:
            Keep one state out of every ``thin`` post-burn-in iterations —
            reduces autocorrelation in downstream risk estimates.
        """
        if n_samples < 1:
            raise ValidationError("n_samples must be >= 1")
        if burn_in < 0 or thin < 1:
            raise ValidationError("burn_in must be >= 0 and thin >= 1")
        rng = check_random_state(random_state)

        state = (
            np.zeros(self.dimension)
            if initial is None
            else np.asarray(initial, dtype=float).copy()
        )
        if state.shape != (self.dimension,):
            raise ValidationError(
                f"initial state must have shape ({self.dimension},)"
            )
        current_log_density = float(self.log_density(state))
        if not np.isfinite(current_log_density):
            raise ValidationError(
                "log_density must be finite at the initial state"
            )

        total_iterations = burn_in + n_samples * thin
        samples = np.empty((n_samples, self.dimension))
        log_densities = np.empty(n_samples)
        accepted = 0
        kept = 0

        for iteration in range(total_iterations):
            proposal = state + rng.normal(scale=self.step_size, size=self.dimension)
            proposal_log_density = float(self.log_density(proposal))
            log_ratio = proposal_log_density - current_log_density
            if np.log(rng.uniform()) < log_ratio:
                state = proposal
                current_log_density = proposal_log_density
                accepted += 1
            if iteration >= burn_in and (iteration - burn_in) % thin == 0:
                samples[kept] = state
                log_densities[kept] = current_log_density
                kept += 1

        return MetropolisHastingsResult(
            samples=samples,
            acceptance_rate=accepted / total_iterations,
            log_densities=log_densities,
        )
