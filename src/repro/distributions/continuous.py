"""Continuous noise laws used by the differentially-private mechanisms.

Each law exposes sampling plus log-density, so the privacy auditors can form
exact likelihood ratios for the additive-noise mechanisms instead of relying
purely on sampled histograms.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_random_state


class NoiseDistribution(abc.ABC):
    """Interface for a zero-centred noise law on ``R`` or ``R^d``."""

    @abc.abstractmethod
    def sample(self, size=None, random_state=None):
        """Draw noise of the requested shape."""

    @abc.abstractmethod
    def log_density(self, value):
        """Log of the density evaluated elementwise at ``value``."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of a single coordinate."""


class LaplaceNoise(NoiseDistribution):
    """Centred Laplace law ``Lap(scale)`` with density ``e^{-|x|/b}/(2b)``.

    Theorem 2.3 of the paper: adding ``Lap(Δf/ε)`` to a query of global
    sensitivity ``Δf`` yields ε-differential privacy.
    """

    def __init__(self, scale: float) -> None:
        self.scale = check_positive(scale, name="scale")

    def sample(self, size=None, random_state=None):
        rng = check_random_state(random_state)
        return rng.laplace(loc=0.0, scale=self.scale, size=size)

    def log_density(self, value):
        value = np.asarray(value, dtype=float)
        return -np.abs(value) / self.scale - np.log(2.0 * self.scale)

    def variance(self) -> float:
        return 2.0 * self.scale**2

    def cdf(self, value):
        """Cumulative distribution function (used for exact error quantiles)."""
        value = np.asarray(value, dtype=float)
        return np.where(
            value < 0,
            0.5 * np.exp(value / self.scale),
            1.0 - 0.5 * np.exp(-value / self.scale),
        )

    def __repr__(self) -> str:
        return f"LaplaceNoise(scale={self.scale:.6g})"


class GaussianNoise(NoiseDistribution):
    """Centred Gaussian law ``N(0, sigma^2)`` for (ε, δ)-DP mechanisms."""

    def __init__(self, sigma: float) -> None:
        self.sigma = check_positive(sigma, name="sigma")

    def sample(self, size=None, random_state=None):
        rng = check_random_state(random_state)
        return rng.normal(loc=0.0, scale=self.sigma, size=size)

    def log_density(self, value):
        value = np.asarray(value, dtype=float)
        return -0.5 * (value / self.sigma) ** 2 - 0.5 * np.log(
            2.0 * np.pi * self.sigma**2
        )

    def variance(self) -> float:
        return self.sigma**2

    def __repr__(self) -> str:
        return f"GaussianNoise(sigma={self.sigma:.6g})"


class GumbelNoise(NoiseDistribution):
    """Centred Gumbel law with the given scale (location 0).

    Backs report-noisy-max: adding Gumbel(2Δq/ε) noise to quality scores
    and releasing the argmax reproduces the exponential mechanism's output
    law exactly (the Gumbel-max trick).
    """

    def __init__(self, scale: float) -> None:
        self.scale = check_positive(scale, name="scale")

    def sample(self, size=None, random_state=None):
        rng = check_random_state(random_state)
        return rng.gumbel(loc=0.0, scale=self.scale, size=size)

    def log_density(self, value):
        value = np.asarray(value, dtype=float)
        z = value / self.scale
        return -(z + np.exp(-z)) - np.log(self.scale)

    def variance(self) -> float:
        return (np.pi**2 / 6.0) * self.scale**2

    def __repr__(self) -> str:
        return f"GumbelNoise(scale={self.scale:.6g})"


class CauchyNoise(NoiseDistribution):
    """Centred Cauchy law with the given scale.

    The smooth-sensitivity framework of Nissim, Raskhodnikova & Smith adds
    ``(6·S(x)/ε)``-scaled Cauchy noise for pure ε-DP: the Cauchy density's
    polynomial tails make the ratio of shifted densities bounded, which is
    what admits a *data-dependent* noise magnitude.
    """

    def __init__(self, scale: float) -> None:
        self.scale = check_positive(scale, name="scale")

    def sample(self, size=None, random_state=None):
        rng = check_random_state(random_state)
        return self.scale * rng.standard_cauchy(size=size)

    def log_density(self, value):
        value = np.asarray(value, dtype=float)
        return -np.log(np.pi * self.scale * (1.0 + (value / self.scale) ** 2))

    def variance(self) -> float:
        """Cauchy has no finite variance; returned as +inf."""
        return float("inf")

    def __repr__(self) -> str:
        return f"CauchyNoise(scale={self.scale:.6g})"


class GammaNormVector(NoiseDistribution):
    """Spherically-symmetric vector noise with density ``∝ exp(-‖b‖₂ / scale)``.

    This is the noise law of Chaudhuri & Monteleoni's output- and
    objective-perturbation algorithms for private ERM: the norm ``‖b‖`` is
    Gamma(d, scale)-distributed and the direction is uniform on the sphere.
    """

    def __init__(self, dimension: int, scale: float) -> None:
        if dimension < 1:
            raise ValidationError("dimension must be >= 1")
        self.dimension = int(dimension)
        self.scale = check_positive(scale, name="scale")

    def sample(self, size=None, random_state=None):
        rng = check_random_state(random_state)
        count = 1 if size is None else int(size)
        norms = rng.gamma(shape=self.dimension, scale=self.scale, size=count)
        directions = rng.normal(size=(count, self.dimension))
        lengths = np.linalg.norm(directions, axis=1, keepdims=True)
        # A standard-normal vector is zero with probability zero; guard anyway.
        lengths[lengths == 0] = 1.0
        vectors = directions / lengths * norms[:, None]
        if size is None:
            return vectors[0]
        return vectors

    def log_density(self, value):
        value = np.atleast_2d(np.asarray(value, dtype=float))
        if value.shape[-1] != self.dimension:
            raise ValidationError(
                f"expected vectors of dimension {self.dimension}, "
                f"got shape {value.shape}"
            )
        # Density on R^d: f(b) = C * exp(-||b||/scale); the normalizer C
        # only matters for ratios at different radii, which cancel it.
        from scipy.special import gammaln

        norms = np.linalg.norm(value, axis=-1)
        log_sphere_area = (
            np.log(2.0)
            + (self.dimension / 2.0) * np.log(np.pi)
            - gammaln(self.dimension / 2.0)
        )
        log_normalizer = (
            gammaln(self.dimension)
            + self.dimension * np.log(self.scale)
            + log_sphere_area
        )
        out = -norms / self.scale - log_normalizer
        return out[0] if out.shape == (1,) else out

    def variance(self) -> float:
        # E||b||^2 = scale^2 * d * (d + 1); per-coordinate variance by symmetry.
        return self.scale**2 * self.dimension * (self.dimension + 1) / self.dimension

    def __repr__(self) -> str:
        return f"GammaNormVector(dimension={self.dimension}, scale={self.scale:.6g})"
