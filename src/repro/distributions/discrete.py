"""A validated discrete probability distribution over an explicit support.

The paper's central objects — the Gibbs posterior over a finite parameter
grid, the prior it tilts, and the marginal ``E_Z π̂`` that makes the KL term
collapse to mutual information — are all finite distributions. Keeping the
support alongside the probability vector lets expectations, pushforwards and
products stay exact.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import SupportMismatchError, ValidationError
from repro.utils.numerics import normalize_log_weights, stable_log, xlogx
from repro.utils.validation import check_probability_vector, check_random_state


class DiscreteDistribution:
    """An immutable distribution over a finite ordered support.

    Parameters
    ----------
    support:
        Sequence of hashable outcomes. Order is preserved and significant:
        two distributions are comparable only if their supports are equal
        elementwise.
    probabilities:
        Nonnegative weights summing to one (within tolerance; they are
        renormalized exactly on construction).
    """

    __slots__ = ("_support", "_probabilities", "_index")

    def __init__(self, support: Sequence, probabilities) -> None:
        support = list(support)
        if not support:
            raise ValidationError("support must not be empty")
        probs = check_probability_vector(probabilities)
        if len(support) != probs.shape[0]:
            raise ValidationError(
                f"support has {len(support)} outcomes but probabilities has "
                f"{probs.shape[0]} entries"
            )
        self._support = tuple(support)
        self._probabilities = probs
        self._probabilities.setflags(write=False)
        self._index = {outcome: i for i, outcome in enumerate(self._support)}
        if len(self._index) != len(self._support):
            raise ValidationError("support contains duplicate outcomes")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, support: Sequence) -> "DiscreteDistribution":
        """Uniform distribution over ``support``."""
        support = list(support)
        if not support:
            raise ValidationError("support must not be empty")
        return cls(support, np.full(len(support), 1.0 / len(support)))

    @classmethod
    def point_mass(cls, support: Sequence, outcome) -> "DiscreteDistribution":
        """Degenerate distribution putting all mass on ``outcome``."""
        support = list(support)
        probs = np.zeros(len(support))
        try:
            probs[support.index(outcome)] = 1.0
        except ValueError:
            raise ValidationError(f"{outcome!r} is not in the support") from None
        return cls(support, probs)

    @classmethod
    def from_log_weights(cls, support: Sequence, log_weights) -> "DiscreteDistribution":
        """Normalize unnormalized log-weights into a distribution.

        This is the numerically-safe constructor used by the Gibbs posterior:
        ``exp(-ε R̂(θ))`` can underflow for large ε, but its log never does.
        """
        return cls(support, normalize_log_weights(log_weights))

    @classmethod
    def from_counts(cls, support: Sequence, counts) -> "DiscreteDistribution":
        """Empirical distribution from nonnegative counts."""
        arr = np.asarray(counts, dtype=float)
        if np.any(arr < 0):
            raise ValidationError("counts must be nonnegative")
        total = arr.sum()
        if total <= 0:
            raise ValidationError("counts must not all be zero")
        return cls(support, arr / total)

    @classmethod
    def from_samples(cls, samples: Iterable) -> "DiscreteDistribution":
        """Empirical distribution of an iterable of hashable samples."""
        counts: dict = {}
        for sample in samples:
            counts[sample] = counts.get(sample, 0) + 1
        if not counts:
            raise ValidationError("samples must not be empty")
        support = list(counts)
        return cls.from_counts(support, [counts[s] for s in support])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple:
        """The ordered outcomes."""
        return self._support

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only probability vector aligned with :attr:`support`."""
        return self._probabilities

    @property
    def log_probabilities(self) -> np.ndarray:
        """Elementwise log-probabilities (``-inf`` on zero-mass atoms)."""
        return stable_log(self._probabilities)

    def __len__(self) -> int:
        return len(self._support)

    def __iter__(self):
        return zip(self._support, self._probabilities)

    def probability_of(self, outcome) -> float:
        """Probability of a single outcome (0.0 if outside the support)."""
        idx = self._index.get(outcome)
        if idx is None:
            return 0.0
        return float(self._probabilities[idx])

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{o!r}: {p:.4g}" for o, p in list(self)[:6]
        )
        suffix = ", ..." if len(self) > 6 else ""
        return f"DiscreteDistribution({{{pairs}{suffix}}})"

    def same_support(self, other: "DiscreteDistribution") -> bool:
        """Whether ``other`` has an identical (ordered) support."""
        return isinstance(other, DiscreteDistribution) and self._support == other._support

    def require_same_support(self, other: "DiscreteDistribution") -> None:
        """Raise :class:`SupportMismatchError` unless supports match."""
        if not self.same_support(other):
            raise SupportMismatchError(
                "operation requires distributions on the same ordered support"
            )

    # ------------------------------------------------------------------
    # Probability operations
    # ------------------------------------------------------------------
    def expectation(self, fn: Callable | None = None) -> float:
        """Expectation of ``fn(outcome)`` (identity if ``fn`` is None)."""
        if fn is None:
            values = np.asarray(self._support, dtype=float)
        else:
            values = np.asarray([fn(o) for o in self._support], dtype=float)
        return float(values @ self._probabilities)

    def variance(self, fn: Callable | None = None) -> float:
        """Variance of ``fn(outcome)`` under this distribution."""
        if fn is None:
            values = np.asarray(self._support, dtype=float)
        else:
            values = np.asarray([fn(o) for o in self._support], dtype=float)
        mean = float(values @ self._probabilities)
        return float(((values - mean) ** 2) @ self._probabilities)

    def entropy(self) -> float:
        """Shannon entropy in nats."""
        return float(-xlogx(self._probabilities).sum())

    def mode(self):
        """An outcome of maximal probability (ties broken by support order)."""
        return self._support[int(np.argmax(self._probabilities))]

    def map(self, fn: Callable) -> "DiscreteDistribution":
        """Pushforward of this distribution under ``fn`` (merging collisions)."""
        masses: dict = {}
        order: list = []
        for outcome, prob in self:
            image = fn(outcome)
            if image not in masses:
                masses[image] = 0.0
                order.append(image)
            masses[image] += prob
        return DiscreteDistribution(order, [masses[o] for o in order])

    def condition(self, predicate: Callable) -> "DiscreteDistribution":
        """Conditional distribution given ``predicate(outcome)`` is true."""
        kept = [(o, p) for o, p in self if predicate(o)]
        if not kept:
            raise ValidationError("conditioning event has probability zero")
        total = sum(p for _, p in kept)
        if total <= 0:
            raise ValidationError("conditioning event has probability zero")
        return DiscreteDistribution(
            [o for o, _ in kept], [p / total for _, p in kept]
        )

    def product(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Independent product; outcomes become ``(a, b)`` pairs."""
        support = [(a, b) for a in self._support for b in other._support]
        probs = np.outer(self._probabilities, other._probabilities).ravel()
        return DiscreteDistribution(support, probs)

    def power(self, n: int) -> "DiscreteDistribution":
        """``n``-fold independent product; outcomes are length-``n`` tuples.

        This is the distribution of an i.i.d. sample ``Ẑ = (Z₁,…,Zₙ)``, the
        channel input of the paper's Figure 1.
        """
        if n < 1:
            raise ValidationError("power requires n >= 1")
        dist = DiscreteDistribution([(o,) for o in self._support], self._probabilities)
        for _ in range(n - 1):
            pairs = dist.product(self)
            dist = pairs.map(lambda pair: pair[0] + (pair[1],))
        return dist

    def mix(self, other: "DiscreteDistribution", weight: float) -> "DiscreteDistribution":
        """Convex mixture ``weight*self + (1-weight)*other`` (same support)."""
        self.require_same_support(other)
        if not 0.0 <= weight <= 1.0:
            raise ValidationError("mixture weight must lie in [0, 1]")
        return DiscreteDistribution(
            self._support,
            weight * self._probabilities + (1.0 - weight) * other._probabilities,
        )

    def tilt(self, log_factors) -> "DiscreteDistribution":
        """Exponential tilting: reweight atom ``i`` by ``exp(log_factors[i])``.

        The Gibbs posterior is exactly ``prior.tilt(-ε * empirical_risks)``.
        """
        log_factors = np.asarray(log_factors, dtype=float)
        if log_factors.shape != self._probabilities.shape:
            raise ValidationError("log_factors must match the support size")
        return DiscreteDistribution.from_log_weights(
            self._support, self.log_probabilities + log_factors
        )

    def total_variation_distance(self, other: "DiscreteDistribution") -> float:
        """Total variation distance to ``other`` on the same support."""
        self.require_same_support(other)
        return float(0.5 * np.abs(self._probabilities - other._probabilities).sum())

    def sample(self, size: int | None = None, random_state=None):
        """Draw outcomes i.i.d. from this distribution."""
        rng = check_random_state(random_state)
        indices = rng.choice(len(self._support), size=size, p=self._probabilities)
        if size is None:
            return self._support[int(indices)]
        return [self._support[int(i)] for i in np.atleast_1d(indices)]
