"""Loss functions with the metadata private learning needs.

Every loss carries, beyond its value, the analytic facts the privacy and
PAC-Bayes machinery consumes:

* ``lipschitz_constant`` — drives the sensitivity of regularized ERM
  (Chaudhuri et al.'s output/objective perturbation);
* ``bounds()`` — a loss bounded in ``[lo, hi]`` gives the empirical risk a
  global sensitivity of ``(hi - lo)/n``, which is the ``Δ(R̂)`` of
  Theorem 4.1;
* ``derivative`` / ``second_derivative`` — consumed by the optimizers.

Binary-classification losses use the *margin* form ``l(u)`` with
``u = y · ⟨θ, x⟩`` and labels in {-1, +1}; regression losses use the
residual form ``l(r)`` with ``r = ⟨θ, x⟩ - y``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive


class MarginLoss(abc.ABC):
    """A margin loss ``l(u)`` for binary classification, u = y·score."""

    @abc.abstractmethod
    def value(self, margins) -> np.ndarray:
        """Loss at each margin."""

    @abc.abstractmethod
    def derivative(self, margins) -> np.ndarray:
        """dl/du at each margin (a subgradient where nondifferentiable)."""

    def second_derivative(self, margins) -> np.ndarray:
        """d²l/du²; zero by default (piecewise-linear losses)."""
        return np.zeros_like(np.asarray(margins, dtype=float))

    @property
    @abc.abstractmethod
    def lipschitz_constant(self) -> float:
        """A global Lipschitz constant of ``l`` in its margin argument."""

    def bounds(self) -> tuple[float, float] | None:
        """``(lo, hi)`` if the loss is globally bounded, else None."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ZeroOneLoss(MarginLoss):
    """The 0-1 loss ``1[u <= 0]`` — bounded in [0, 1] but not Lipschitz.

    This is the loss of the paper's generalization-bound experiments: with
    range 1 the empirical risk has sensitivity exactly ``1/n``.
    """

    def value(self, margins) -> np.ndarray:
        return (np.asarray(margins, dtype=float) <= 0).astype(float)

    def derivative(self, margins) -> np.ndarray:
        return np.zeros_like(np.asarray(margins, dtype=float))

    @property
    def lipschitz_constant(self) -> float:
        return float("inf")

    def bounds(self) -> tuple[float, float]:
        return (0.0, 1.0)


class LogisticLoss(MarginLoss):
    """Logistic loss ``log(1 + e^{-u})`` — 1-Lipschitz, smooth, unbounded."""

    def value(self, margins) -> np.ndarray:
        u = np.asarray(margins, dtype=float)
        # log(1 + e^{-u}) computed stably for both signs of u.
        return np.where(u > 0, np.log1p(np.exp(-np.abs(u))), -u + np.log1p(np.exp(-np.abs(u))))

    def derivative(self, margins) -> np.ndarray:
        u = np.asarray(margins, dtype=float)
        # -sigmoid(-u), computed stably.
        return -1.0 / (1.0 + np.exp(u))

    def second_derivative(self, margins) -> np.ndarray:
        u = np.asarray(margins, dtype=float)
        sig = 1.0 / (1.0 + np.exp(-np.abs(u)))
        return sig * (1.0 - sig)

    @property
    def lipschitz_constant(self) -> float:
        return 1.0


class HingeLoss(MarginLoss):
    """Hinge loss ``max(0, 1 - u)`` — 1-Lipschitz, nonsmooth at u = 1."""

    def value(self, margins) -> np.ndarray:
        return np.clip(1.0 - np.asarray(margins, dtype=float), 0.0, None)

    def derivative(self, margins) -> np.ndarray:
        return np.where(np.asarray(margins, dtype=float) < 1.0, -1.0, 0.0)

    @property
    def lipschitz_constant(self) -> float:
        return 1.0


class HuberHingeLoss(MarginLoss):
    """Chaudhuri et al.'s Huber-smoothed hinge, differentiable everywhere.

    ``l(u) = 0`` for u > 1+h, quadratic on ``[1-h, 1+h]``, linear below —
    the smoothing objective perturbation requires (it needs a twice-
    differentiable loss).
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        self.smoothing = check_positive(smoothing, name="smoothing")

    def value(self, margins) -> np.ndarray:
        u = np.asarray(margins, dtype=float)
        h = self.smoothing
        out = np.zeros_like(u)
        quad = (np.abs(1.0 - u) <= h)
        out[quad] = (1.0 + h - u[quad]) ** 2 / (4.0 * h)
        lin = u < 1.0 - h
        out[lin] = 1.0 - u[lin]
        return out

    def derivative(self, margins) -> np.ndarray:
        u = np.asarray(margins, dtype=float)
        h = self.smoothing
        out = np.zeros_like(u)
        quad = (np.abs(1.0 - u) <= h)
        out[quad] = -(1.0 + h - u[quad]) / (2.0 * h)
        out[u < 1.0 - h] = -1.0
        return out

    def second_derivative(self, margins) -> np.ndarray:
        u = np.asarray(margins, dtype=float)
        h = self.smoothing
        return np.where(np.abs(1.0 - u) <= h, 1.0 / (2.0 * h), 0.0)

    @property
    def lipschitz_constant(self) -> float:
        return 1.0

    def __repr__(self) -> str:
        return f"HuberHingeLoss(smoothing={self.smoothing:.4g})"


class RegressionLoss(abc.ABC):
    """A residual loss ``l(r)`` with r = prediction - target."""

    @abc.abstractmethod
    def value(self, residuals) -> np.ndarray:
        """Loss at each residual."""

    @abc.abstractmethod
    def derivative(self, residuals) -> np.ndarray:
        """dl/dr at each residual."""

    @property
    @abc.abstractmethod
    def lipschitz_constant(self) -> float:
        """Global Lipschitz constant in r (may be inf)."""

    def bounds(self) -> tuple[float, float] | None:
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SquaredLoss(RegressionLoss):
    """Squared loss ``r²`` (½-free convention)."""

    def value(self, residuals) -> np.ndarray:
        r = np.asarray(residuals, dtype=float)
        return r * r

    def derivative(self, residuals) -> np.ndarray:
        return 2.0 * np.asarray(residuals, dtype=float)

    @property
    def lipschitz_constant(self) -> float:
        return float("inf")


class AbsoluteLoss(RegressionLoss):
    """Absolute loss ``|r|`` — 1-Lipschitz."""

    def value(self, residuals) -> np.ndarray:
        return np.abs(np.asarray(residuals, dtype=float))

    def derivative(self, residuals) -> np.ndarray:
        return np.sign(np.asarray(residuals, dtype=float))

    @property
    def lipschitz_constant(self) -> float:
        return 1.0


class TruncatedLoss(MarginLoss):
    """Clip any margin loss into ``[0, ceiling]`` to make it bounded.

    PAC-Bayes bounds (and the risk sensitivity of Theorem 4.1) need bounded
    losses; truncation is the standard device. The derivative is zeroed in
    the clipped region.
    """

    def __init__(self, base: MarginLoss, ceiling: float = 1.0) -> None:
        if not isinstance(base, MarginLoss):
            raise ValidationError("base must be a MarginLoss")
        self.base = base
        self.ceiling = check_positive(ceiling, name="ceiling")

    def value(self, margins) -> np.ndarray:
        return np.clip(self.base.value(margins), 0.0, self.ceiling)

    def derivative(self, margins) -> np.ndarray:
        raw = self.base.value(margins)
        grad = self.base.derivative(margins)
        return np.where(raw >= self.ceiling, 0.0, grad)

    @property
    def lipschitz_constant(self) -> float:
        return self.base.lipschitz_constant

    def bounds(self) -> tuple[float, float]:
        return (0.0, self.ceiling)

    def __repr__(self) -> str:
        return f"TruncatedLoss({self.base!r}, ceiling={self.ceiling:.4g})"
