"""Synthetic prediction tasks with *known* data-generating laws.

The paper's quantities — true risk ``R(θ) = E_Z l_θ(Z)``, the expectation
``E_Ẑ`` over samples, the mutual information ``I(Ẑ; θ)`` — are all defined
against the unknown distribution Q. Using synthetic tasks where Q is chosen
by us makes every one of them computable, either in closed form or by
controlled Monte Carlo, so bound-validity and tradeoff experiments can
compare against ground truth instead of proxies.

Each task exposes ``sample(n, random_state)`` and task-specific exact risk
functions.
"""

from __future__ import annotations

import abc

import numpy as np
from scipy.stats import norm

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_random_state,
)


class SyntheticTask(abc.ABC):
    """A data-generating distribution Q with exactly computable risks."""

    @abc.abstractmethod
    def sample(self, n: int, random_state=None):
        """Draw an i.i.d. sample Ẑ of size n."""

    def _check_n(self, n: int) -> int:
        if n < 1:
            raise ValidationError("n must be >= 1")
        return int(n)


class BernoulliTask(SyntheticTask):
    """Z ~ Bernoulli(p); predictors θ ∈ [0, 1] guess the next outcome.

    Loss is the absolute loss ``l_θ(z) = |θ - z|``, bounded in [0, 1], with
    closed-form true risk ``R(θ) = p(1-θ) + (1-p)θ = p + θ(1 - 2p)``. The
    simplest task on which every theorem of the paper can be checked
    end-to-end with no estimation error anywhere.
    """

    def __init__(self, p: float) -> None:
        self.p = check_in_range(p, name="p", low=0.0, high=1.0)

    def sample(self, n: int, random_state=None) -> np.ndarray:
        """n i.i.d. Bernoulli(p) outcomes as a 0/1 integer array."""
        n = self._check_n(n)
        rng = check_random_state(random_state)
        return (rng.uniform(size=n) < self.p).astype(int)

    def loss(self, theta: float, z) -> np.ndarray:
        """Absolute loss of predictor θ on outcomes z."""
        return np.abs(float(theta) - np.asarray(z, dtype=float))

    def empirical_risk(self, theta: float, sample) -> float:
        """``R̂(θ)`` on a sample."""
        return float(self.loss(theta, sample).mean())

    def true_risk(self, theta: float) -> float:
        """Exact ``R(θ) = p + θ(1 - 2p)``."""
        theta = check_in_range(theta, name="theta", low=0.0, high=1.0)
        return self.p + theta * (1.0 - 2.0 * self.p)

    def bayes_risk(self) -> float:
        """Risk of the best predictor: ``min(p, 1-p)``."""
        return min(self.p, 1.0 - self.p)


class GaussianThresholdTask(SyntheticTask):
    """1-D two-class Gaussians; predictors are decision thresholds.

    ``y`` uniform on {-1, +1}, ``X | y ~ N(y·mu, sigma²)``. A threshold
    predictor t classifies ``sign(x - t)`` and its 0-1 risk has the closed
    form ``½ Φ((t-μ)/σ) + ½ Φ(-(t+μ)/σ)``.
    """

    def __init__(self, mu: float = 1.0, sigma: float = 1.0) -> None:
        self.mu = check_positive(mu, name="mu")
        self.sigma = check_positive(sigma, name="sigma")

    def sample(self, n: int, random_state=None) -> tuple[np.ndarray, np.ndarray]:
        """n labelled points: y uniform on {-1,+1}, x ~ N(y·mu, sigma²)."""
        n = self._check_n(n)
        rng = check_random_state(random_state)
        y = rng.choice([-1, 1], size=n)
        x = rng.normal(loc=y * self.mu, scale=self.sigma, size=n)
        return x, y

    def zero_one_loss(self, threshold: float, x, y) -> np.ndarray:
        """0-1 loss of the threshold predictor on points (x, y)."""
        margins = np.asarray(y, dtype=float) * (
            np.asarray(x, dtype=float) - float(threshold)
        )
        return (margins <= 0).astype(float)

    def empirical_risk(self, threshold: float, x, y) -> float:
        """``R̂(t)`` on a sample."""
        return float(self.zero_one_loss(threshold, x, y).mean())

    def true_risk(self, threshold: float) -> float:
        """Exact 0-1 risk of the threshold predictor."""
        t = float(threshold)
        return float(
            0.5 * norm.cdf((t - self.mu) / self.sigma)
            + 0.5 * norm.cdf(-(t + self.mu) / self.sigma)
        )

    def bayes_risk(self) -> float:
        """Risk of the optimal threshold t = 0: ``Φ(-μ/σ)``."""
        return float(norm.cdf(-self.mu / self.sigma))


class TwoGaussiansTask(SyntheticTask):
    """d-dimensional two-class Gaussians for linear classification.

    ``y`` uniform on {-1, +1}, ``X | y ~ N(y·mean, I_d)``. Any linear
    predictor θ has exact 0-1 risk ``Φ(-⟨θ, mean⟩ / ‖θ‖)`` by rotational
    symmetry. Features can optionally be clipped to the unit ball, which
    the Chaudhuri-style private ERM algorithms require.
    """

    def __init__(self, mean, *, clip_features: bool = False) -> None:
        self.mean = np.asarray(mean, dtype=float)
        if self.mean.ndim != 1 or self.mean.size == 0:
            raise ValidationError("mean must be a nonempty 1-D vector")
        if not np.any(self.mean != 0):
            raise ValidationError("mean must be nonzero (classes must differ)")
        self.clip_features = bool(clip_features)

    @property
    def dimension(self) -> int:
        return self.mean.shape[0]

    def sample(self, n: int, random_state=None) -> tuple[np.ndarray, np.ndarray]:
        """n labelled rows: y uniform on {-1,+1}, x ~ N(y·mean, I_d)."""
        n = self._check_n(n)
        rng = check_random_state(random_state)
        y = rng.choice([-1, 1], size=n)
        x = rng.normal(size=(n, self.dimension)) + y[:, None] * self.mean[None, :]
        if self.clip_features:
            norms = np.linalg.norm(x, axis=1, keepdims=True)
            x = x / np.maximum(norms, 1.0)
        return x, y

    def true_risk(self, theta) -> float:
        """Exact 0-1 risk of the linear predictor ``sign(⟨θ, x⟩)``.

        Only exact when features are *not* clipped; with clipping it is an
        excellent approximation for well-separated classes.
        """
        theta = np.asarray(theta, dtype=float)
        if theta.shape != self.mean.shape:
            raise ValidationError("theta has the wrong dimension")
        norm_theta = float(np.linalg.norm(theta))
        if norm_theta == 0:
            return 0.5
        return float(norm.cdf(-float(theta @ self.mean) / norm_theta))

    def bayes_risk(self) -> float:
        """Risk of the optimal direction θ ∝ mean: ``Φ(-‖mean‖)``."""
        return float(norm.cdf(-np.linalg.norm(self.mean)))


class LogisticTask(SyntheticTask):
    """Well-specified logistic model over the unit ball.

    ``X`` uniform on the unit ball in R^d (so ‖x‖ ≤ 1 as private ERM
    requires), ``P(y = +1 | x) = sigmoid(⟨θ*, x⟩)``. True risks are
    computed by Monte Carlo against a large fixed-seed evaluation sample.
    """

    def __init__(self, theta_star, *, eval_size: int = 200_000, eval_seed: int = 7) -> None:
        self.theta_star = np.asarray(theta_star, dtype=float)
        if self.theta_star.ndim != 1 or self.theta_star.size == 0:
            raise ValidationError("theta_star must be a nonempty 1-D vector")
        if eval_size < 1_000:
            raise ValidationError("eval_size must be >= 1000")
        self._eval_size = int(eval_size)
        self._eval_seed = int(eval_seed)
        self._eval_cache: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def dimension(self) -> int:
        return self.theta_star.shape[0]

    def _sample_ball(self, n: int, rng: np.random.Generator) -> np.ndarray:
        directions = rng.normal(size=(n, self.dimension))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = rng.uniform(size=(n, 1)) ** (1.0 / self.dimension)
        return directions * radii

    def sample(self, n: int, random_state=None) -> tuple[np.ndarray, np.ndarray]:
        """n rows: x uniform on the unit ball, y ~ logistic(⟨θ*, x⟩)."""
        n = self._check_n(n)
        rng = check_random_state(random_state)
        x = self._sample_ball(n, rng)
        probabilities = 1.0 / (1.0 + np.exp(-(x @ self.theta_star)))
        y = np.where(rng.uniform(size=n) < probabilities, 1, -1)
        return x, y

    def _evaluation_sample(self) -> tuple[np.ndarray, np.ndarray]:
        if self._eval_cache is None:
            self._eval_cache = self.sample(
                self._eval_size, random_state=self._eval_seed
            )
        return self._eval_cache

    def true_zero_one_risk(self, theta) -> float:
        """Monte-Carlo 0-1 risk of the linear predictor against Q."""
        theta = np.asarray(theta, dtype=float)
        x, y = self._evaluation_sample()
        margins = y * (x @ theta)
        return float((margins <= 0).mean())

    def bayes_zero_one_risk(self) -> float:
        """Risk of the true parameter θ* (the Bayes-optimal direction)."""
        return self.true_zero_one_risk(self.theta_star)


class LinearRegressionTask(SyntheticTask):
    """Linear-Gaussian regression over the unit ball.

    ``X`` uniform on the unit ball, ``y = ⟨θ*, x⟩ + N(0, noise²)``. The
    true squared risk of any θ has the closed form
    ``E[(⟨θ-θ*, X⟩)²] + noise² = ‖θ-θ*‖² · E[X₁²] + noise²`` with
    ``E[X₁²] = 1/(d+2)`` for the unit ball.
    """

    def __init__(self, theta_star, noise: float = 0.1) -> None:
        self.theta_star = np.asarray(theta_star, dtype=float)
        if self.theta_star.ndim != 1 or self.theta_star.size == 0:
            raise ValidationError("theta_star must be a nonempty 1-D vector")
        self.noise = check_positive(noise, name="noise")

    @property
    def dimension(self) -> int:
        return self.theta_star.shape[0]

    def sample(self, n: int, random_state=None) -> tuple[np.ndarray, np.ndarray]:
        """n rows: x uniform on the unit ball, y = ⟨θ*, x⟩ + noise."""
        n = self._check_n(n)
        rng = check_random_state(random_state)
        directions = rng.normal(size=(n, self.dimension))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        radii = rng.uniform(size=(n, 1)) ** (1.0 / self.dimension)
        x = directions * radii
        y = x @ self.theta_star + rng.normal(scale=self.noise, size=n)
        return x, y

    def true_squared_risk(self, theta) -> float:
        """Exact squared-loss risk of θ."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != self.theta_star.shape:
            raise ValidationError("theta has the wrong dimension")
        gap = theta - self.theta_star
        second_moment = 1.0 / (self.dimension + 2.0)
        return float(gap @ gap) * second_moment + self.noise**2

    def bayes_squared_risk(self) -> float:
        """Irreducible risk ``noise²``."""
        return self.noise**2
