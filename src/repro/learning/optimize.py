"""Deterministic smooth optimizers for the ERM objectives.

Private ERM needs the *exact* minimizer of a strongly-convex objective (its
sensitivity analysis assumes one), so both solvers run to small gradient
norms: gradient descent with backtracking line search as the workhorse, and
a damped Newton method for the twice-differentiable losses.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.utils.validation import check_positive


@dataclass
class OptimizeResult:
    """Solution and diagnostics of an optimization run."""

    x: np.ndarray
    value: float
    gradient_norm: float
    iterations: int
    converged: bool


def gradient_descent(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    x0,
    *,
    tol: float = 1e-8,
    max_iterations: int = 5_000,
    initial_step: float = 1.0,
    backtrack: float = 0.5,
    armijo: float = 1e-4,
    raise_on_failure: bool = False,
) -> OptimizeResult:
    """Minimize a smooth convex function by backtracking gradient descent.

    Stops when ``‖∇f‖ ≤ tol``. The Armijo backtracking line search makes
    the iteration monotone without a known Lipschitz constant.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValidationError("x0 must be a 1-D vector")
    tol = check_positive(tol, name="tol")

    value = float(objective(x))
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = np.asarray(gradient(x), dtype=float)
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm <= tol:
            converged = True
            break
        step = initial_step
        descent = grad @ grad
        while step > 1e-16:
            candidate = x - step * grad
            candidate_value = float(objective(candidate))
            if candidate_value <= value - armijo * step * descent:
                break
            step *= backtrack
        else:
            # Line search exhausted: we are at numerical stationarity.
            converged = grad_norm <= 10 * tol
            break
        x = candidate
        value = candidate_value

    grad_norm = float(np.linalg.norm(np.asarray(gradient(x), dtype=float)))
    if not converged and grad_norm <= tol:
        converged = True
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"gradient descent stalled at ‖∇f‖={grad_norm:.3g} "
            f"after {iterations} iterations"
        )
    return OptimizeResult(
        x=x,
        value=float(objective(x)),
        gradient_norm=grad_norm,
        iterations=iterations,
        converged=converged,
    )


def newton_method(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    hessian: Callable[[np.ndarray], np.ndarray],
    x0,
    *,
    tol: float = 1e-10,
    max_iterations: int = 100,
    raise_on_failure: bool = False,
) -> OptimizeResult:
    """Damped Newton's method for strongly-convex twice-smooth objectives.

    Backtracks the Newton step until the objective decreases; quadratic
    local convergence makes a 100-iteration budget generous.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValidationError("x0 must be a 1-D vector")
    tol = check_positive(tol, name="tol")

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        grad = np.asarray(gradient(x), dtype=float)
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm <= tol:
            converged = True
            break
        hess = np.asarray(hessian(x), dtype=float)
        try:
            direction = np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError:
            direction = grad  # fall back to a gradient step
        step = 1.0
        value = float(objective(x))
        while step > 1e-16:
            candidate = x - step * direction
            if float(objective(candidate)) < value:
                break
            step *= 0.5
        else:
            break
        x = candidate

    grad_norm = float(np.linalg.norm(np.asarray(gradient(x), dtype=float)))
    if not converged and grad_norm <= tol:
        converged = True
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"Newton's method stalled at ‖∇f‖={grad_norm:.3g} "
            f"after {iterations} iterations"
        )
    return OptimizeResult(
        x=x,
        value=float(objective(x)),
        gradient_norm=grad_norm,
        iterations=iterations,
        converged=converged,
    )
