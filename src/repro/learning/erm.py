"""Empirical risk machinery over finite predictor grids.

The paper's Gibbs estimator lives on a measure over Θ. On a finite grid Θ
everything becomes exact: the empirical-risk *matrix* ``R̂[i, j]`` (risk of
predictor j on dataset i) is simultaneously the PAC-Bayes bound input, the
exponential-mechanism quality table, and the distortion matrix of the
rate–distortion formulation of Theorem 4.2. :class:`PredictorGrid` packages
a grid with its per-sample loss function.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError


def empirical_risk(
    loss: Callable[[object, object], float], theta, sample: Sequence
) -> float:
    """``R̂_sample(θ) = (1/n) Σ loss(θ, zᵢ)``."""
    sample = list(sample)
    if not sample:
        raise ValidationError("sample must not be empty")
    return float(np.mean([float(loss(theta, z)) for z in sample]))


def empirical_risk_matrix(
    loss: Callable[[object, object], float],
    thetas: Sequence,
    datasets: Sequence[Sequence],
) -> np.ndarray:
    """Risk matrix ``R̂[i, j]`` of predictor ``thetas[j]`` on ``datasets[i]``.

    This is the distortion matrix ``d(Ẑ, θ)`` of Theorem 4.2's
    rate–distortion view, computed exactly.
    """
    thetas = list(thetas)
    datasets = [list(ds) for ds in datasets]
    if not thetas or not datasets:
        raise ValidationError("thetas and datasets must be nonempty")
    matrix = np.empty((len(datasets), len(thetas)))
    for i, dataset in enumerate(datasets):
        for j, theta in enumerate(thetas):
            matrix[i, j] = empirical_risk(loss, theta, dataset)
    return matrix


def erm_minimizer(
    loss: Callable[[object, object], float], thetas: Sequence, sample: Sequence
):
    """The grid predictor with the smallest empirical risk (first wins ties)."""
    thetas = list(thetas)
    if not thetas:
        raise ValidationError("thetas must not be empty")
    risks = [empirical_risk(loss, theta, sample) for theta in thetas]
    return thetas[int(np.argmin(risks))]


class PredictorGrid:
    """A finite predictor space Θ with its per-sample loss.

    Parameters
    ----------
    thetas:
        The grid of candidate predictors.
    loss:
        ``loss(theta, z) -> float``; must take values in ``loss_bounds``.
    loss_bounds:
        ``(lo, hi)`` bound on the loss — gives the empirical risk its
        ``(hi-lo)/n`` sensitivity.
    """

    def __init__(
        self,
        thetas: Sequence,
        loss: Callable[[object, object], float],
        *,
        loss_bounds: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        self.thetas = tuple(thetas)
        if not self.thetas:
            raise ValidationError("thetas must not be empty")
        lo, hi = float(loss_bounds[0]), float(loss_bounds[1])
        if not lo < hi:
            raise ValidationError("loss_bounds must satisfy lo < hi")
        self.loss = loss
        self.loss_bounds = (lo, hi)

    def __len__(self) -> int:
        return len(self.thetas)

    @property
    def loss_range(self) -> float:
        """Width ``hi - lo`` of the loss bounds."""
        return self.loss_bounds[1] - self.loss_bounds[0]

    def risk_sensitivity(self, n: int) -> float:
        """Sensitivity of ``R̂`` on size-n samples: ``loss_range / n``."""
        if n < 1:
            raise ValidationError("n must be >= 1")
        return self.loss_range / float(n)

    def losses_on(self, z) -> np.ndarray:
        """Vector of ``loss(θ, z)`` over the grid, validated against bounds."""
        values = np.asarray(
            [float(self.loss(theta, z)) for theta in self.thetas], dtype=float
        )
        lo, hi = self.loss_bounds
        if np.any(values < lo - 1e-12) or np.any(values > hi + 1e-12):
            raise ValidationError(
                "loss left its declared bounds; sensitivity math would be wrong"
            )
        return values

    def empirical_risks(self, sample: Sequence) -> np.ndarray:
        """Vector ``R̂(θ)`` over the grid for one sample."""
        sample = list(sample)
        if not sample:
            raise ValidationError("sample must not be empty")
        total = np.zeros(len(self.thetas))
        for z in sample:
            total += self.losses_on(z)
        return total / len(sample)

    def erm(self, sample: Sequence):
        """Grid ERM: the θ minimizing the empirical risk."""
        risks = self.empirical_risks(sample)
        return self.thetas[int(np.argmin(risks))]

    @classmethod
    def linspace(
        cls,
        loss: Callable[[float, object], float],
        low: float,
        high: float,
        size: int,
        *,
        loss_bounds: tuple[float, float] = (0.0, 1.0),
    ) -> "PredictorGrid":
        """Uniform 1-D grid of ``size`` predictors on ``[low, high]``."""
        if size < 2:
            raise ValidationError("size must be >= 2")
        if not low < high:
            raise ValidationError("low must be < high")
        return cls(np.linspace(low, high, size), loss, loss_bounds=loss_bounds)
