"""Statistical prediction substrate (Section 2.2 of the paper).

Input space X, optional output space Y, predictor space Θ, loss
``l_θ(Z)``, true risk ``R(θ) = E_Z l_θ(Z)`` and empirical risk
``R̂(θ) = (1/n) Σ l_θ(Zᵢ)`` — plus the concrete models, optimizers and
synthetic data sources the experiments learn on.
"""

from repro.learning.losses import (
    AbsoluteLoss,
    HingeLoss,
    HuberHingeLoss,
    LogisticLoss,
    MarginLoss,
    RegressionLoss,
    SquaredLoss,
    TruncatedLoss,
    ZeroOneLoss,
)
from repro.learning.datasets import (
    BernoulliTask,
    GaussianThresholdTask,
    LinearRegressionTask,
    LogisticTask,
    SyntheticTask,
    TwoGaussiansTask,
)
from repro.learning.optimize import (
    OptimizeResult,
    gradient_descent,
    newton_method,
)
from repro.learning.models import (
    LinearSVM,
    LogisticRegressionModel,
    RidgeRegressionModel,
)
from repro.learning.evaluation import (
    ConfusionMatrix,
    CrossValidationResult,
    auc,
    cross_validate,
    k_fold_indices,
    roc_points,
    train_test_split,
)
from repro.learning.preprocessing import (
    PublicScaler,
    clip_to_unit_ball,
    clip_values,
    symmetrize_labels,
)
from repro.learning.erm import (
    PredictorGrid,
    empirical_risk,
    empirical_risk_matrix,
    erm_minimizer,
)

__all__ = [
    "AbsoluteLoss",
    "BernoulliTask",
    "ConfusionMatrix",
    "CrossValidationResult",
    "GaussianThresholdTask",
    "HingeLoss",
    "HuberHingeLoss",
    "LinearRegressionTask",
    "LinearSVM",
    "LogisticLoss",
    "LogisticRegressionModel",
    "LogisticTask",
    "MarginLoss",
    "OptimizeResult",
    "PredictorGrid",
    "PublicScaler",
    "RegressionLoss",
    "RidgeRegressionModel",
    "SquaredLoss",
    "SyntheticTask",
    "TruncatedLoss",
    "TwoGaussiansTask",
    "ZeroOneLoss",
    "auc",
    "clip_to_unit_ball",
    "clip_values",
    "cross_validate",
    "empirical_risk",
    "empirical_risk_matrix",
    "erm_minimizer",
    "gradient_descent",
    "k_fold_indices",
    "newton_method",
    "roc_points",
    "symmetrize_labels",
    "train_test_split",
]
