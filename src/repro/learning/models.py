"""Concrete learners: regularized logistic regression, linear SVM, ridge.

These are the non-private reference learners; their private counterparts
live in :mod:`repro.private_learning`. All linear classifiers use labels in
{-1, +1} and minimize

    J(θ) = (1/n) Σ l(yᵢ ⟨θ, xᵢ⟩) + (Λ/2) ‖θ‖²,

the regularized ERM objective whose minimizer has the bounded sensitivity
Chaudhuri et al.'s analysis requires.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.learning.losses import HuberHingeLoss, LogisticLoss, MarginLoss
from repro.learning.optimize import gradient_descent, newton_method
from repro.utils.validation import check_array, check_positive


def _check_classification_data(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = check_array(x, name="x", ndim=2)
    y = np.asarray(y)
    if y.shape != (x.shape[0],):
        raise ValidationError("y must be a vector with one label per row of x")
    if not np.isin(y, (-1, 1)).all():
        raise ValidationError("labels must be in {-1, +1}")
    return x, y.astype(float)


class _LinearClassifier:
    """Shared machinery for L2-regularized linear margin classifiers."""

    def __init__(self, loss: MarginLoss, regularization: float) -> None:
        if not isinstance(loss, MarginLoss):
            raise ValidationError("loss must be a MarginLoss")
        self.loss = loss
        self.regularization = check_positive(regularization, name="regularization")
        self.coefficients: np.ndarray | None = None

    # -- objective pieces ------------------------------------------------
    def objective(self, theta: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        margins = y * (x @ theta)
        data_term = float(self.loss.value(margins).mean())
        return data_term + 0.5 * self.regularization * float(theta @ theta)

    def gradient(self, theta: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        margins = y * (x @ theta)
        weights = self.loss.derivative(margins) * y
        return (x.T @ weights) / x.shape[0] + self.regularization * theta

    def hessian(self, theta: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        margins = y * (x @ theta)
        curvatures = self.loss.second_derivative(margins)
        weighted = x * curvatures[:, None]
        return (x.T @ weighted) / x.shape[0] + self.regularization * np.eye(
            x.shape[1]
        )

    # -- fit / predict ---------------------------------------------------
    def fit(self, x, y, *, use_newton: bool = True) -> "_LinearClassifier":
        """Fit by Newton (smooth losses) or gradient descent."""
        x, y = _check_classification_data(x, y)
        x0 = np.zeros(x.shape[1])
        if use_newton:
            result = newton_method(
                lambda t: self.objective(t, x, y),
                lambda t: self.gradient(t, x, y),
                lambda t: self.hessian(t, x, y),
                x0,
            )
        else:
            result = gradient_descent(
                lambda t: self.objective(t, x, y),
                lambda t: self.gradient(t, x, y),
                x0,
            )
        self.coefficients = result.x
        return self

    def _require_fitted(self) -> np.ndarray:
        if self.coefficients is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
        return self.coefficients

    def decision_function(self, x) -> np.ndarray:
        """Raw scores ``⟨θ, x⟩``."""
        theta = self._require_fitted()
        x = check_array(x, name="x", ndim=2)
        return x @ theta

    def predict(self, x) -> np.ndarray:
        """Predicted labels in {-1, +1} (ties resolved to +1)."""
        scores = self.decision_function(x)
        return np.where(scores >= 0, 1, -1)

    def accuracy(self, x, y) -> float:
        """Fraction of correct predictions."""
        x, y = _check_classification_data(x, y)
        return float((self.predict(x) == y).mean())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(loss={self.loss!r}, "
            f"regularization={self.regularization:.4g})"
        )


class LogisticRegressionModel(_LinearClassifier):
    """L2-regularized logistic regression fitted by Newton's method."""

    def __init__(self, regularization: float = 1e-2) -> None:
        super().__init__(LogisticLoss(), regularization)

    def predict_probability(self, x) -> np.ndarray:
        """``P(y = +1 | x)`` under the fitted model."""
        scores = self.decision_function(x)
        return 1.0 / (1.0 + np.exp(-scores))


class LinearSVM(_LinearClassifier):
    """L2-regularized linear SVM with the Huber-smoothed hinge loss.

    The smoothing keeps the objective twice differentiable, which both the
    Newton solver and the objective-perturbation privacy analysis require.
    """

    def __init__(
        self, regularization: float = 1e-2, smoothing: float = 0.5
    ) -> None:
        super().__init__(HuberHingeLoss(smoothing=smoothing), regularization)


class RidgeRegressionModel:
    """L2-regularized least squares with a closed-form solution.

    Minimizes ``(1/n)‖Xθ - y‖² + Λ‖θ‖²`` via the normal equations.
    """

    def __init__(self, regularization: float = 1e-2) -> None:
        self.regularization = check_positive(regularization, name="regularization")
        self.coefficients: np.ndarray | None = None

    def fit(self, x, y) -> "RidgeRegressionModel":
        x = check_array(x, name="x", ndim=2)
        y = check_array(y, name="y", ndim=1)
        if y.shape[0] != x.shape[0]:
            raise ValidationError("x and y must have the same number of rows")
        n, d = x.shape
        gram = (x.T @ x) / n + self.regularization * np.eye(d)
        self.coefficients = np.linalg.solve(gram, (x.T @ y) / n)
        return self

    def predict(self, x) -> np.ndarray:
        if self.coefficients is None:
            raise NotFittedError("RidgeRegressionModel has not been fitted")
        x = check_array(x, name="x", ndim=2)
        return x @ self.coefficients

    def mean_squared_error(self, x, y) -> float:
        """Mean squared prediction error on (x, y)."""
        y = check_array(y, name="y", ndim=1)
        residuals = self.predict(x) - y
        return float((residuals**2).mean())

    def __repr__(self) -> str:
        return f"RidgeRegressionModel(regularization={self.regularization:.4g})"
