"""Model evaluation utilities: splits, cross-validation, metrics.

The glue a downstream user needs around the learners: deterministic
train/test splits, k-fold cross-validation that works with any estimator
exposing ``fit(x, y)`` + ``predict(x)``, and the standard binary
classification metrics for {-1, +1} labels.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_random_state


def train_test_split(
    x, y, *, test_fraction: float = 0.25, random_state=None
):
    """Shuffle and split into ``(x_train, y_train, x_test, y_test)``."""
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0] or x.shape[0] < 2:
        raise ValidationError("x and y must share >= 2 rows")
    if not 0.0 < test_fraction < 1.0:
        raise ValidationError("test_fraction must lie strictly in (0, 1)")
    rng = check_random_state(random_state)
    order = rng.permutation(x.shape[0])
    n_test = max(1, int(round(test_fraction * x.shape[0])))
    n_test = min(n_test, x.shape[0] - 1)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def k_fold_indices(n: int, k: int, *, random_state=None):
    """Yield ``(train_indices, test_indices)`` for k shuffled folds."""
    if k < 2 or k > n:
        raise ValidationError("need 2 <= k <= n")
    rng = check_random_state(random_state)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train, test


@dataclass
class CrossValidationResult:
    """Per-fold scores of one estimator."""

    scores: list[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} over {len(self.scores)} folds"


def cross_validate(
    make_estimator: Callable[[], object],
    x,
    y,
    *,
    k: int = 5,
    score: Callable | None = None,
    random_state=None,
) -> CrossValidationResult:
    """k-fold cross-validation of any fit/predict estimator.

    Parameters
    ----------
    make_estimator:
        Zero-argument factory returning a fresh estimator per fold (so
        folds never share state).
    score:
        ``score(estimator, x_test, y_test) -> float``; defaults to
        accuracy via the estimator's own ``accuracy`` method.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if score is None:
        def score(est, xt, yt):
            return float(est.accuracy(xt, yt))
    scores = []
    for train_idx, test_idx in k_fold_indices(
        x.shape[0], k, random_state=random_state
    ):
        estimator = make_estimator()
        estimator.fit(x[train_idx], y[train_idx])
        scores.append(float(score(estimator, x[test_idx], y[test_idx])))
    return CrossValidationResult(scores=scores)


@dataclass
class ConfusionMatrix:
    """Binary confusion counts for {-1, +1} labels (+1 is positive)."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @classmethod
    def from_predictions(cls, y_true, y_pred) -> "ConfusionMatrix":
        y_true = np.asarray(y_true)
        y_pred = np.asarray(y_pred)
        if y_true.shape != y_pred.shape or y_true.size == 0:
            raise ValidationError("labels must be equal-length and nonempty")
        valid = np.isin(y_true, (-1, 1)).all() and np.isin(y_pred, (-1, 1)).all()
        if not valid:
            raise ValidationError("labels must be in {-1, +1}")
        return cls(
            true_positive=int(((y_true == 1) & (y_pred == 1)).sum()),
            false_positive=int(((y_true == -1) & (y_pred == 1)).sum()),
            true_negative=int(((y_true == -1) & (y_pred == -1)).sum()),
            false_negative=int(((y_true == 1) & (y_pred == -1)).sum()),
        )

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
        )

    @property
    def accuracy(self) -> float:
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def roc_points(y_true, scores) -> tuple[np.ndarray, np.ndarray]:
    """ROC curve (FPR, TPR arrays) by sweeping a threshold over scores."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape or y_true.size == 0:
        raise ValidationError("y_true and scores must be equal-length")
    if not np.isin(y_true, (-1, 1)).all():
        raise ValidationError("labels must be in {-1, +1}")
    order = np.argsort(-scores, kind="stable")
    positives = float((y_true == 1).sum())
    negatives = float((y_true == -1).sum())
    if positives == 0 or negatives == 0:
        raise ValidationError("need both classes present")
    tpr = [0.0]
    fpr = [0.0]
    tp = fp = 0
    for index in order:
        if y_true[index] == 1:
            tp += 1
        else:
            fp += 1
        tpr.append(tp / positives)
        fpr.append(fp / negatives)
    return np.asarray(fpr), np.asarray(tpr)


def auc(y_true, scores) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr = roc_points(y_true, scores)
    return float(np.trapezoid(tpr, fpr))
