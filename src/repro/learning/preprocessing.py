"""Feature preprocessing for private learning.

The Chaudhuri-style private ERM algorithms and the regression mechanisms
assume ``‖x‖₂ ≤ 1`` and bounded targets. These helpers make arbitrary
data satisfy those contracts — with the caveat, enforced by design, that
any data-dependent scaling must itself be computed privately or on public
information. The transformers here are *fit on public parameters only*
(explicit bounds), so applying them costs no privacy.

Example
-------
>>> import numpy as np
>>> from repro.learning.preprocessing import clip_to_unit_ball
>>> x = np.array([[3.0, 4.0], [0.3, 0.4]])
>>> clipped = clip_to_unit_ball(x)
>>> np.round(np.linalg.norm(clipped, axis=1), 6).tolist()
[1.0, 0.5]
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array, check_positive


def clip_to_unit_ball(x, *, radius: float = 1.0) -> np.ndarray:
    """Scale rows with ``‖x‖ > radius`` down onto the radius sphere.

    Rows already inside the ball are untouched; the transform is
    record-wise (each row depends only on itself), so it composes with
    any DP mechanism downstream without affecting the privacy analysis.
    """
    radius = check_positive(radius, name="radius")
    x = check_array(x, name="x", ndim=2)
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    scale = np.minimum(1.0, radius / np.maximum(norms, 1e-300))
    return x * scale


def clip_values(values, lower: float, upper: float) -> np.ndarray:
    """Clip scalars into a public interval (record-wise, privacy-free)."""
    if not lower < upper:
        raise ValidationError("need lower < upper")
    arr = np.asarray(values, dtype=float)
    return np.clip(arr, lower, upper)


class PublicScaler:
    """Affine feature scaling from *public* per-column bounds.

    Maps column j from ``[lower_j, upper_j]`` to ``[-1, 1]`` (values
    outside the declared bounds are clipped first). Because the bounds are
    public constants rather than data statistics, the transform is
    privacy-free; to then guarantee ``‖x‖ ≤ 1`` over d columns, follow
    with :func:`clip_to_unit_ball` or divide by √d.

    Example
    -------
    >>> scaler = PublicScaler(lower=[0.0, 10.0], upper=[1.0, 20.0])
    >>> scaler.transform([[0.5, 15.0]]).tolist()
    [[0.0, 0.0]]
    """

    def __init__(self, lower, upper) -> None:
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ValidationError("lower and upper must be matching 1-D vectors")
        if np.any(self.lower >= self.upper):
            raise ValidationError("need lower < upper per column")

    @property
    def dimension(self) -> int:
        """Number of columns the scaler expects."""
        return self.lower.shape[0]

    def transform(self, x) -> np.ndarray:
        """Clip to the public bounds, then map affinely onto [-1, 1]^d."""
        x = check_array(x, name="x", ndim=2)
        if x.shape[1] != self.dimension:
            raise ValidationError(
                f"expected {self.dimension} columns, got {x.shape[1]}"
            )
        clipped = np.clip(x, self.lower[None, :], self.upper[None, :])
        halfspan = (self.upper - self.lower) / 2.0
        center = (self.upper + self.lower) / 2.0
        return (clipped - center[None, :]) / halfspan[None, :]

    def transform_to_unit_ball(self, x) -> np.ndarray:
        """Scale into [-1,1]^d then divide by √d, guaranteeing ‖x‖₂ ≤ 1."""
        return self.transform(x) / np.sqrt(self.dimension)


def symmetrize_labels(y) -> np.ndarray:
    """Map {0, 1} (or already {-1, +1}) labels onto {-1, +1}.

    The linear classifiers in :mod:`repro.learning.models` and the private
    learners all use the symmetric convention.
    """
    arr = np.asarray(y)
    if np.isin(arr, (-1, 1)).all():
        return arr.astype(int)
    if np.isin(arr, (0, 1)).all():
        return np.where(arr == 1, 1, -1)
    raise ValidationError("labels must be in {0, 1} or {-1, +1}")
