"""Privacy definitions, neighbouring relations, and empirical auditing.

Definition 2.1 of the paper as executable predicates, plus two auditors:
an *exact* one that computes the worst-case privacy loss of a mechanism
whose output law is available in closed form on finite universes, and a
*Monte-Carlo* one that lower-bounds ε from sampled outputs with a
Clopper–Pearson-style confidence statement.
"""

from repro.privacy.definitions import (
    all_neighbour_pairs,
    is_neighbour,
    satisfies_approximate_dp,
    satisfies_pure_dp,
)
from repro.privacy.audit import (
    AuditReport,
    ExactPrivacyAuditor,
    SampledPrivacyAuditor,
)
from repro.privacy.hypothesis_testing import (
    AttackRoc,
    dp_advantage_bound,
    dp_tradeoff_curve,
    membership_advantage,
    optimal_attack_roc,
    verify_tradeoff_dominance,
)
from repro.privacy.local import (
    KRandomizedResponse,
    LocalMechanism,
    UnaryEncoding,
    clip_and_renormalize,
)
from repro.privacy.renyi import (
    RenyiSpec,
    compose_rdp,
    measure_rdp,
    optimal_rdp_to_dp,
    rdp_of_gaussian,
    rdp_of_laplace,
    rdp_of_pure_dp,
)

__all__ = [
    "AttackRoc",
    "AuditReport",
    "ExactPrivacyAuditor",
    "KRandomizedResponse",
    "LocalMechanism",
    "RenyiSpec",
    "SampledPrivacyAuditor",
    "UnaryEncoding",
    "all_neighbour_pairs",
    "clip_and_renormalize",
    "compose_rdp",
    "dp_advantage_bound",
    "dp_tradeoff_curve",
    "is_neighbour",
    "measure_rdp",
    "membership_advantage",
    "optimal_attack_roc",
    "optimal_rdp_to_dp",
    "rdp_of_gaussian",
    "rdp_of_laplace",
    "rdp_of_pure_dp",
    "satisfies_approximate_dp",
    "satisfies_pure_dp",
    "verify_tradeoff_dominance",
]
