"""The hypothesis-testing semantics of differential privacy.

Definition 2.1 has an operational reading (Wasserman–Zhou, Kairouz et
al.): an adversary who must decide between neighbouring datasets D and D'
from one mechanism output is running a binary hypothesis test, and ε-DP
lower-bounds its error tradeoff:

    β(α)  ≥  max( 0,  1 - e^ε·α,  e^{-ε}·(1 - α) )

for every type-I level α. Equivalently, the advantage of *any* attacker —
membership inference included — is at most ``(e^ε - 1)/(e^ε + 1)``.

This module computes both sides exactly for discrete mechanisms: the
DP-implied tradeoff curve, and the *actual* optimal (Neyman–Pearson)
attack ROC from the two output distributions — so the gap between the
worst case the guarantee allows and what the mechanism actually leaks is
measurable (Experiment E12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive


def dp_tradeoff_curve(epsilon: float, alphas) -> np.ndarray:
    """Lower bound on the type-II error β(α) implied by pure ε-DP.

    Parameters
    ----------
    epsilon:
        Privacy parameter of the claimed guarantee.
    alphas:
        Type-I error levels (array-like in [0, 1]) to evaluate the bound at.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    alphas = np.asarray(alphas, dtype=float)
    if np.any((alphas < 0) | (alphas > 1)):
        raise ValidationError("alphas must lie in [0, 1]")
    return np.maximum.reduce(
        [
            np.zeros_like(alphas),
            1.0 - np.exp(epsilon) * alphas,
            np.exp(-epsilon) * (1.0 - alphas),
        ]
    )


def dp_advantage_bound(epsilon: float) -> float:
    """Max attacker advantage (TPR - FPR) under ε-DP:
    ``(e^ε - 1)/(e^ε + 1)``."""
    epsilon = check_positive(epsilon, name="epsilon")
    return float((np.exp(epsilon) - 1.0) / (np.exp(epsilon) + 1.0))


@dataclass
class AttackRoc:
    """Optimal-attacker ROC for distinguishing two output laws.

    ``alphas[i]`` is a false-positive rate, ``betas[i]`` the corresponding
    minimal false-negative rate (Neyman–Pearson). ``advantage`` is the
    best achievable TPR - FPR, which equals the total variation distance.
    """

    alphas: np.ndarray
    betas: np.ndarray
    advantage: float

    def beta_at(self, alpha: float) -> float:
        """Minimal β at a given α (piecewise-linear interpolation of the
        lower convex envelope)."""
        if not 0.0 <= alpha <= 1.0:
            raise ValidationError("alpha must lie in [0, 1]")
        return float(np.interp(alpha, self.alphas, self.betas))


def optimal_attack_roc(
    p: DiscreteDistribution, q: DiscreteDistribution
) -> AttackRoc:
    """Exact Neyman–Pearson ROC for testing H0: output ~ q vs H1: ~ p.

    Sorting outcomes by likelihood ratio ``p/q`` descending and sweeping
    the rejection set gives every vertex of the optimal tradeoff; the
    returned curve is the lower convex envelope through those vertices
    (randomized tests interpolate between them).

    Parameters
    ----------
    p, q:
        Output laws on a neighbouring pair, with identical support.
    """
    p.require_same_support(q)
    p_probs = p.probabilities
    q_probs = q.probabilities
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(q_probs > 0, p_probs / q_probs, np.inf)
        ratios = np.where((q_probs == 0) & (p_probs == 0), 1.0, ratios)
    order = np.argsort(-ratios, kind="stable")

    # Vertex k: reject H0 on the k highest-ratio outcomes.
    alphas = [0.0]
    tprs = [0.0]
    for index in order:
        alphas.append(alphas[-1] + q_probs[index])
        tprs.append(tprs[-1] + p_probs[index])
    alphas_arr = np.asarray(alphas)
    betas_arr = 1.0 - np.asarray(tprs)
    advantage = float(np.max(np.asarray(tprs) - alphas_arr))
    return AttackRoc(alphas=alphas_arr, betas=betas_arr, advantage=advantage)


def membership_advantage(
    p: DiscreteDistribution, q: DiscreteDistribution
) -> float:
    """Best attacker advantage distinguishing two neighbours' outputs.

    Equals the total variation distance between the output laws — the
    exact "membership-inference" risk of the release on that pair.

    Parameters
    ----------
    p, q:
        Output laws on a neighbouring pair, with identical support.
    """
    return optimal_attack_roc(p, q).advantage


def verify_tradeoff_dominance(
    p: DiscreteDistribution,
    q: DiscreteDistribution,
    epsilon: float,
    *,
    grid: int = 201,
    tolerance: float = 1e-9,
) -> bool:
    """Whether the actual attack ROC respects the ε-DP tradeoff bound.

    Returns True iff ``β_actual(α) ≥ β_DP(α) - tolerance`` for every α on
    a uniform grid — i.e. the mechanism leaks no more than ε-DP permits on
    this pair. A False return is a *proof* of a privacy violation.

    Parameters
    ----------
    p, q:
        Output laws on a neighbouring pair, with identical support.
    epsilon:
        Claimed privacy parameter.
    grid:
        Number of uniformly-spaced α values checked.
    tolerance:
        Numerical slack allowed below the bound.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    roc = optimal_attack_roc(p, q)
    alphas = np.linspace(0.0, 1.0, grid)
    bound = dp_tradeoff_curve(epsilon, alphas)
    actual = np.asarray([roc.beta_at(a) for a in alphas])
    return bool(np.all(actual >= bound - tolerance))
