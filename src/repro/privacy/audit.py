"""Privacy auditors: measure the ε a mechanism actually provides.

Two complementary strategies:

* :class:`ExactPrivacyAuditor` — for mechanisms exposing their exact output
  distribution on finite ranges (the exponential mechanism, the Gibbs
  estimator, randomized response, the geometric mechanism): enumerate every
  neighbouring dataset pair on a finite universe and take the worst max
  divergence. This *proves* Theorem 4.1's guarantee rather than sampling it.
* :class:`SampledPrivacyAuditor` — for black-box mechanisms: draw many
  outputs on a fixed neighbour pair, build empirical histograms, and report
  a lower confidence bound on ε. A sampled audit can only ever *refute* a
  claimed guarantee; the report says so explicitly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.divergences import max_divergence
from repro.privacy.definitions import all_neighbour_pairs
from repro.utils.validation import check_random_state


@dataclass
class AuditReport:
    """Result of a privacy audit.

    Attributes
    ----------
    measured_epsilon:
        The measured worst-case privacy loss (exact, or an estimate for
        sampled audits).
    claimed_epsilon:
        The mechanism's nominal guarantee, if one was supplied.
    satisfied:
        ``measured <= claimed`` (None when no claim was supplied).
    worst_pair:
        The neighbouring dataset pair achieving the measured loss.
    worst_output:
        The output atom achieving it.
    pairs_checked:
        Number of ordered neighbour pairs examined.
    exact:
        True for enumeration-based audits, False for sampled estimates.
    details:
        Auditor-specific extras (e.g. per-pair losses, sample counts).
    """

    measured_epsilon: float
    claimed_epsilon: float | None
    satisfied: bool | None
    worst_pair: tuple | None
    worst_output: object | None
    pairs_checked: int
    exact: bool
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        kind = "exact" if self.exact else "sampled"
        claim = (
            f" (claimed {self.claimed_epsilon:.6g}: "
            f"{'OK' if self.satisfied else 'VIOLATED'})"
            if self.claimed_epsilon is not None
            else ""
        )
        return (
            f"AuditReport[{kind}]: measured ε = "
            f"{self.measured_epsilon:.6g}{claim} over {self.pairs_checked} pairs"
        )


class ExactPrivacyAuditor:
    """Enumerate neighbour pairs and compute the exact worst privacy loss.

    Parameters
    ----------
    output_distribution:
        ``dataset -> DiscreteDistribution`` giving the mechanism's exact
        output law (all laws must share one support).
    """

    def __init__(
        self, output_distribution: Callable[[Sequence], DiscreteDistribution]
    ) -> None:
        self.output_distribution = output_distribution

    def audit(
        self,
        universe: Sequence,
        n: int,
        *,
        claimed_epsilon: float | None = None,
        tolerance: float = 1e-9,
    ) -> AuditReport:
        """Exact worst-case ε over all neighbouring size-``n`` datasets."""
        worst = 0.0
        worst_pair = None
        worst_output = None
        pairs = 0
        cache: dict[tuple, DiscreteDistribution] = {}

        def law(dataset: tuple) -> DiscreteDistribution:
            if dataset not in cache:
                cache[dataset] = self.output_distribution(list(dataset))
            return cache[dataset]

        reference_support = None
        for dataset, neighbour in all_neighbour_pairs(universe, n):
            pairs += 1
            p = law(dataset)
            q = law(neighbour)
            if reference_support is None:
                reference_support = p.support
            if p.support != reference_support or q.support != reference_support:
                raise ValidationError(
                    "all output distributions must share one support"
                )
            loss = max_divergence(p, q)
            if loss > worst:
                worst = loss
                worst_pair = (dataset, neighbour)
                ratios = p.log_probabilities - q.log_probabilities
                finite = np.where(p.probabilities > 0, ratios, -np.inf)
                worst_output = p.support[int(np.argmax(finite))]

        satisfied = None
        if claimed_epsilon is not None:
            satisfied = worst <= claimed_epsilon + tolerance
        return AuditReport(
            measured_epsilon=float(worst),
            claimed_epsilon=claimed_epsilon,
            satisfied=satisfied,
            worst_pair=worst_pair,
            worst_output=worst_output,
            pairs_checked=pairs,
            exact=True,
        )


class SampledPrivacyAuditor:
    """Estimate the privacy loss of a black-box mechanism on one pair.

    Draws ``n_samples`` outputs on each of two neighbouring datasets, forms
    smoothed empirical histograms over the union of observed outputs, and
    reports the max log-ratio. Laplace (add-one) smoothing keeps the
    estimate finite; the smoothing makes the estimator conservative
    (biased *downward*) for rare events, so the report is best read as a
    lower bound on the true ε.

    Parameters
    ----------
    release:
        Black-box ``release(dataset, random_state=...)`` callable.
    n_samples:
        Outputs drawn per dataset.
    smoothing:
        Add-``smoothing`` pseudo-count per observed output.
    """

    def __init__(
        self,
        release: Callable,
        *,
        n_samples: int = 20_000,
        smoothing: float = 1.0,
    ) -> None:
        if n_samples < 1:
            raise ValidationError("n_samples must be >= 1")
        if smoothing <= 0:
            raise ValidationError("smoothing must be > 0")
        self.release = release
        self.n_samples = int(n_samples)
        self.smoothing = float(smoothing)

    def audit_pair(
        self,
        dataset_a: Sequence,
        dataset_b: Sequence,
        *,
        claimed_epsilon: float | None = None,
        random_state=None,
    ) -> AuditReport:
        """Sampled privacy-loss estimate for one neighbouring pair."""
        rng = check_random_state(random_state)
        outputs_a = [self.release(dataset_a, random_state=rng) for _ in range(self.n_samples)]
        outputs_b = [self.release(dataset_b, random_state=rng) for _ in range(self.n_samples)]

        support = sorted(set(outputs_a) | set(outputs_b), key=repr)
        index = {o: i for i, o in enumerate(support)}
        counts_a = np.full(len(support), self.smoothing)
        counts_b = np.full(len(support), self.smoothing)
        for o in outputs_a:
            counts_a[index[o]] += 1
        for o in outputs_b:
            counts_b[index[o]] += 1
        p = counts_a / counts_a.sum()
        q = counts_b / counts_b.sum()

        log_ratios = np.log(p) - np.log(q)
        worst_idx = int(np.argmax(np.abs(log_ratios)))
        measured = float(np.abs(log_ratios).max())

        satisfied = None
        if claimed_epsilon is not None:
            satisfied = measured <= claimed_epsilon
        return AuditReport(
            measured_epsilon=measured,
            claimed_epsilon=claimed_epsilon,
            satisfied=satisfied,
            worst_pair=(tuple(dataset_a), tuple(dataset_b)),
            worst_output=support[worst_idx],
            pairs_checked=1,
            exact=False,
            details={
                "n_samples": self.n_samples,
                "support_size": len(support),
                "smoothing": self.smoothing,
            },
        )
