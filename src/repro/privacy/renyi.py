"""Rényi differential privacy (Mironov 2017) — the modern refinement.

The paper's max-divergence view of DP sits at the α=∞ end of the Rényi
divergence family; tracking the whole curve α ↦ D_α gives tighter
composition than (ε, δ) bookkeeping. Included as the natural extension of
the paper's information-theoretic framing: RDP *is* privacy measured in
Rényi information units.

A mechanism is (α, ρ)-RDP if ``D_α(M(D) ‖ M(D')) ≤ ρ`` for all neighbour
pairs. Facts implemented:

* pure ε-DP ⇒ (α, min(ε, 2αε²... )) — we use the simple ``(α, ε)`` and the
  tighter small-ε bound;
* Gaussian mechanism: (α, α·Δ²/(2σ²))-RDP, exactly;
* RDP composes additively in ρ at fixed α;
* (α, ρ)-RDP ⇒ (ρ + log(1/δ)/(α-1), δ)-DP for any δ.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.divergences import renyi_divergence
from repro.mechanisms.base import PrivacySpec
from repro.privacy.definitions import all_neighbour_pairs
from repro.utils.validation import check_in_range, check_positive


def _check_alpha(alpha: float) -> float:
    alpha = float(alpha)
    if not alpha > 1.0:
        raise ValidationError("RDP order alpha must be > 1")
    return alpha


@dataclass(frozen=True)
class RenyiSpec:
    """An (α, ρ) Rényi-DP guarantee."""

    alpha: float
    rho: float

    def __post_init__(self) -> None:
        _check_alpha(self.alpha)
        check_positive(self.rho, name="rho", strict=False)

    def compose(self, other: "RenyiSpec") -> "RenyiSpec":
        """Adaptive composition at a shared order: ρ values add."""
        if not np.isclose(self.alpha, other.alpha):
            raise ValidationError(
                "RDP composition requires a common order alpha"
            )
        return RenyiSpec(self.alpha, self.rho + other.rho)

    def to_approximate_dp(self, delta: float) -> PrivacySpec:
        """Convert to (ε, δ)-DP: ``ε = ρ + log(1/δ)/(α-1)``."""
        delta = check_in_range(
            delta, name="delta", low=0.0, high=1.0, inclusive=False
        )
        epsilon = self.rho + np.log(1.0 / delta) / (self.alpha - 1.0)
        return PrivacySpec(epsilon=float(epsilon), delta=delta)

    def __str__(self) -> str:
        return f"({self.alpha:.3g}, {self.rho:.6g})-RDP"


def rdp_of_pure_dp(epsilon: float, alpha: float) -> RenyiSpec:
    """The *exact* RDP curve implied by pure ε-DP.

    The worst case over all pairs of distributions with pointwise ratio
    in ``[e^{-ε}, e^{ε}]`` is the randomized-response pair
    ``(p, 1-p)`` vs ``(1-p, p)`` with ``p = e^ε/(1+e^ε)``, whose Rényi
    divergence has the closed form

        ``D_α = (1/(α-1)) · log( p^α (1-p)^{1-α} + (1-p)^α p^{1-α} )``,

    capped at ε (= D_∞). For small ε this behaves like ``α·ε²/2``, which
    is what makes RDP composition beat both basic and advanced
    composition in the many-queries regime.

    Parameters
    ----------
    epsilon:
        Pure-DP parameter being converted.
    alpha:
        Rényi order (> 1).
    """
    epsilon = check_positive(epsilon, name="epsilon")
    alpha = _check_alpha(alpha)
    from repro.utils.numerics import logsumexp

    log_p = -np.log1p(np.exp(-epsilon))  # log(e^ε/(1+e^ε))
    log_q = -np.log1p(np.exp(epsilon))  # log(1/(1+e^ε))
    log_value = logsumexp(
        [
            alpha * log_p + (1.0 - alpha) * log_q,
            alpha * log_q + (1.0 - alpha) * log_p,
        ]
    )
    rho = float(log_value / (alpha - 1.0))
    return RenyiSpec(alpha, min(epsilon, rho))


def rdp_of_gaussian(sensitivity: float, sigma: float, alpha: float) -> RenyiSpec:
    """Exact RDP of the Gaussian mechanism: ``ρ = α·Δ² / (2σ²)``.

    Parameters
    ----------
    sensitivity:
        L2 sensitivity Δ of the query.
    sigma:
        Noise standard deviation.
    alpha:
        Rényi order (> 1).
    """
    sensitivity = check_positive(sensitivity, name="sensitivity")
    sigma = check_positive(sigma, name="sigma")
    alpha = _check_alpha(alpha)
    return RenyiSpec(alpha, alpha * sensitivity**2 / (2.0 * sigma**2))


def rdp_of_laplace(sensitivity: float, scale: float, alpha: float) -> RenyiSpec:
    """Exact RDP of the Laplace mechanism (Mironov 2017, Prop. 6).

    With ε = Δ/b,  D_α = (1/(α-1)) · log[ (α/(2α-1))·e^{(α-1)ε}
                                          + ((α-1)/(2α-1))·e^{-αε} ].

    Parameters
    ----------
    sensitivity:
        L1 sensitivity Δ of the query.
    scale:
        Laplace scale b.
    alpha:
        Rényi order (> 1).
    """
    sensitivity = check_positive(sensitivity, name="sensitivity")
    scale = check_positive(scale, name="scale")
    alpha = _check_alpha(alpha)
    eps = sensitivity / scale
    value = (
        alpha / (2 * alpha - 1) * np.exp((alpha - 1) * eps)
        + (alpha - 1) / (2 * alpha - 1) * np.exp(-alpha * eps)
    )
    return RenyiSpec(alpha, float(np.log(value) / (alpha - 1)))


def compose_rdp(specs: Sequence[RenyiSpec]) -> RenyiSpec:
    """Compose many mechanisms at a shared order."""
    specs = list(specs)
    if not specs:
        raise ValidationError("need at least one RenyiSpec")
    total = specs[0]
    for spec in specs[1:]:
        total = total.compose(spec)
    return total


def optimal_rdp_to_dp(
    curve: Callable[[float], RenyiSpec],
    delta: float,
    *,
    alphas: Sequence[float] | None = None,
) -> PrivacySpec:
    """Minimize the converted ε over a grid of Rényi orders.

    ``curve(alpha)`` supplies the (α, ρ(α)) guarantee — e.g. the composed
    RDP of k Gaussian queries — and the best conversion order is selected
    numerically (the standard accountant move).

    Parameters
    ----------
    curve:
        Callable mapping a Rényi order α to its :class:`RenyiSpec`.
    delta:
        Target failure probability of the converted guarantee.
    alphas:
        Candidate orders (default: a 0.1-spaced grid over (1, 64)).
    """
    delta = check_in_range(
        delta, name="delta", low=0.0, high=1.0, inclusive=False
    )
    if alphas is None:
        alphas = list(np.arange(1.1, 64.0, 0.1))
    best: PrivacySpec | None = None
    for alpha in alphas:
        spec = curve(float(alpha)).to_approximate_dp(delta)
        if best is None or spec.epsilon < best.epsilon:
            best = spec
    assert best is not None
    return best


def measure_rdp(
    output_distribution: Callable[[Sequence], DiscreteDistribution],
    universe: Sequence,
    n: int,
    alpha: float,
) -> float:
    """Exact worst-case Rényi divergence of order α over neighbour pairs.

    The RDP analogue of :class:`repro.privacy.ExactPrivacyAuditor`: for
    discrete mechanisms this *measures* the (α, ρ) guarantee instead of
    assuming it.

    Parameters
    ----------
    output_distribution:
        Callable mapping a dataset to the mechanism's output law.
    universe:
        Record domain to enumerate datasets over.
    n:
        Dataset size.
    alpha:
        Rényi order (> 1).
    """
    alpha = _check_alpha(alpha)
    worst = 0.0
    cache: dict[tuple, DiscreteDistribution] = {}

    def law(dataset: tuple) -> DiscreteDistribution:
        if dataset not in cache:
            cache[dataset] = output_distribution(list(dataset))
        return cache[dataset]

    for a, b in all_neighbour_pairs(universe, n):
        worst = max(worst, renyi_divergence(law(a), law(b), alpha))
    return worst
