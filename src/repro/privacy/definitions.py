"""Neighbouring relations and DP predicates (Definition 2.1 of the paper).

Two datasets are neighbours when they differ in exactly one record
(substitution relation — the one the paper uses for learning: samples
``Ẑ, Ẑ'`` with ``(Xᵢ,Yᵢ) ≠ (Xᵢ',Yᵢ')`` for one i and equal elsewhere).
A mechanism with output distributions ``P, P'`` on a neighbouring pair is
ε-DP on that pair iff ``D_∞(P‖P') ≤ ε`` and ``D_∞(P'‖P) ≤ ε``.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.divergences import hockey_stick_divergence, max_divergence
from repro.utils.validation import check_in_range, check_positive


def is_neighbour(dataset_a: Sequence, dataset_b: Sequence) -> bool:
    """Whether two equal-length datasets differ in exactly one position.

    Parameters
    ----------
    dataset_a, dataset_b:
        Record sequences compared under the substitution relation.
    """
    a = list(dataset_a)
    b = list(dataset_b)
    if len(a) != len(b):
        return False
    differences = sum(1 for x, y in zip(a, b) if x != y)
    return differences == 1


def all_neighbour_pairs(
    universe: Sequence, n: int
) -> Iterator[tuple[tuple, tuple]]:
    """Yield every ordered neighbouring pair of size-``n`` datasets.

    Enumerates ``universe^n`` and all single-record substitutions —
    exponential in ``n``, intended for the exactly-checkable universes of
    the experiments. Pairs are yielded once per direction because the DP
    inequality must hold in both.

    Parameters
    ----------
    universe:
        The record domain.
    n:
        Dataset size.
    """
    universe = list(universe)
    if not universe:
        raise ValidationError("universe must not be empty")
    if n < 1:
        raise ValidationError("n must be >= 1")
    for dataset in itertools.product(universe, repeat=n):
        for position in range(n):
            for replacement in universe:
                if replacement == dataset[position]:
                    continue
                neighbour = list(dataset)
                neighbour[position] = replacement
                yield dataset, tuple(neighbour)


def satisfies_pure_dp(
    p: DiscreteDistribution,
    q: DiscreteDistribution,
    epsilon: float,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Whether output laws ``p, q`` on a neighbour pair satisfy ε-DP.

    Checks the max divergence in both directions against ε (with a small
    numerical tolerance, since the laws are floating point).

    Parameters
    ----------
    p, q:
        Output distributions of the mechanism on a neighbouring pair.
    epsilon:
        Claimed privacy parameter (ε >= 0; ε = 0 demands identical laws).
    tolerance:
        Numerical slack on the divergence comparison.
    """
    epsilon = check_positive(epsilon, name="epsilon", strict=False)
    return (
        max_divergence(p, q) <= epsilon + tolerance
        and max_divergence(q, p) <= epsilon + tolerance
    )


def satisfies_approximate_dp(
    p: DiscreteDistribution,
    q: DiscreteDistribution,
    epsilon: float,
    delta: float,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Whether output laws satisfy (ε, δ)-DP via the hockey-stick test.

    Parameters
    ----------
    p, q:
        Output distributions of the mechanism on a neighbouring pair.
    epsilon:
        Claimed privacy parameter (ε >= 0).
    delta:
        Claimed failure probability in [0, 1].
    tolerance:
        Numerical slack on the divergence comparison.
    """
    epsilon = check_positive(epsilon, name="epsilon", strict=False)
    delta = check_in_range(delta, name="delta", low=0.0, high=1.0)
    return (
        hockey_stick_divergence(p, q, epsilon) <= delta + tolerance
        and hockey_stick_divergence(q, p, epsilon) <= delta + tolerance
    )
