"""Local differential privacy: randomization at the data source.

The paper's model is central DP (a trusted curator runs the Gibbs
estimator). The local model removes the curator: each individual
randomizes their own record before sending it. Implemented here for
categorical frequency estimation:

* :class:`KRandomizedResponse` — generalized randomized response over k
  categories (report the truth w.p. ``e^ε/(e^ε+k-1)``, else uniform over
  the other categories);
* :class:`UnaryEncoding` — symmetric unary encoding (RAPPOR-style): each
  user perturbs a k-bit one-hot vector bitwise; better than k-RR for
  large k.

Both come with unbiased frequency estimators and closed-form variances,
so the local-vs-central accuracy gap (the price of removing trust) is
measurable (Experiment E15).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_random_state


def _check_categories(categories) -> tuple:
    categories = tuple(categories)
    if len(categories) < 2:
        raise ValidationError("need at least two categories")
    if len(set(categories)) != len(categories):
        raise ValidationError("categories must be distinct")
    return categories


class KRandomizedResponse(Mechanism):
    """Generalized randomized response over k categories, ε-LDP per record.

    Truth probability ``p = e^ε / (e^ε + k - 1)``; any specific lie has
    probability ``q = 1 / (e^ε + k - 1)``; the ratio p/q = e^ε makes each
    report exactly ε-DP in its own record.

    Parameters
    ----------
    categories:
        The fixed, data-independent category list.
    epsilon:
        Per-record local privacy parameter.
    """

    def __init__(self, categories, epsilon: float) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.categories = _check_categories(categories)
        k = len(self.categories)
        self.truth_probability = float(np.exp(epsilon) / (np.exp(epsilon) + k - 1))
        self.lie_probability = float(1.0 / (np.exp(epsilon) + k - 1))
        self._index = {c: i for i, c in enumerate(self.categories)}

    def randomize(self, value, random_state=None):
        """Randomize one record."""
        if value not in self._index:
            raise ValidationError(f"{value!r} is not a known category")
        rng = check_random_state(random_state)
        if rng.uniform() < self.truth_probability:
            return value
        others = [c for c in self.categories if c != value]
        return others[int(rng.integers(len(others)))]

    def release(self, records, random_state=None) -> list:
        """Randomize every record independently."""
        rng = check_random_state(random_state)
        return [self.randomize(record, random_state=rng) for record in records]

    def estimate_frequencies(self, reports) -> np.ndarray:
        """Unbiased frequency estimates from the randomized reports.

        If ȳ_c is the observed report fraction of category c, the debiased
        estimate is ``(ȳ_c - q) / (p - q)``.
        """
        reports = list(reports)
        if not reports:
            raise ValidationError("reports must not be empty")
        counts = np.zeros(len(self.categories))
        for report in reports:
            index = self._index.get(report)
            if index is None:
                raise ValidationError(f"{report!r} is not a known category")
            counts[index] += 1
        observed = counts / len(reports)
        p, q = self.truth_probability, self.lie_probability
        return (observed - q) / (p - q)

    def estimator_variance(self, n: int) -> float:
        """Worst-case per-category variance of the frequency estimator."""
        if n < 1:
            raise ValidationError("n must be >= 1")
        p, q = self.truth_probability, self.lie_probability
        # Var(ȳ)/ (p-q)^2 with Var(ȳ) <= 1/(4n).
        return 1.0 / (4.0 * n * (p - q) ** 2)


class UnaryEncoding(Mechanism):
    """Symmetric unary encoding (RAPPOR-style), ε-LDP per record.

    Each record becomes a k-bit one-hot vector; the true bit is kept with
    probability ``p = e^{ε/2}/(e^{ε/2}+1)``, every other bit is set with
    probability ``q = 1 - p``. Each bit flip contributes ε/2, the pair
    (true bit, any other bit) bounds the total at ε.

    Parameters
    ----------
    categories:
        The fixed, data-independent category list.
    epsilon:
        Per-record local privacy parameter.
    """

    def __init__(self, categories, epsilon: float) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.categories = _check_categories(categories)
        half = np.exp(epsilon / 2.0)
        self.keep_probability = float(half / (half + 1.0))
        self.flip_probability = 1.0 - self.keep_probability
        self._index = {c: i for i, c in enumerate(self.categories)}

    def randomize(self, value, random_state=None) -> np.ndarray:
        """Perturbed one-hot vector for one record."""
        if value not in self._index:
            raise ValidationError(f"{value!r} is not a known category")
        rng = check_random_state(random_state)
        k = len(self.categories)
        bits = np.zeros(k, dtype=int)
        bits[self._index[value]] = 1
        keep = rng.uniform(size=k) < self.keep_probability
        return np.where(keep, bits, 1 - bits)

    def release(self, records, random_state=None) -> np.ndarray:
        """Stack of perturbed one-hot vectors, one row per record."""
        rng = check_random_state(random_state)
        return np.stack(
            [self.randomize(record, random_state=rng) for record in records]
        )

    def estimate_frequencies(self, report_matrix) -> np.ndarray:
        """Unbiased frequency estimates from the stacked reports.

        Each bit has expectation ``q + (p - q)·f_c``; invert per column.
        """
        matrix = np.asarray(report_matrix)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.categories):
            raise ValidationError(
                "report_matrix must have one column per category"
            )
        observed = matrix.mean(axis=0)
        p = self.keep_probability
        q = self.flip_probability
        return (observed - q) / (p - q)

    def estimator_variance(self, n: int) -> float:
        """Per-category variance of the frequency estimator (dominant
        ``q(1-q)`` term)."""
        if n < 1:
            raise ValidationError("n must be >= 1")
        p = self.keep_probability
        q = self.flip_probability
        return q * (1.0 - q) / (n * (p - q) ** 2)
