"""Local differential privacy: randomization at the data source.

The paper's model is central DP (a trusted curator runs the Gibbs
estimator). The local model removes the curator: each individual
randomizes their own record before sending it. This module defines the
shared :class:`LocalMechanism` interface — per-record :meth:`privatize`
plus a vectorized, stream-equivalent :meth:`privatize_many` batch kernel
following the ``release_many`` discipline — and implements it for
categorical frequency estimation:

* :class:`KRandomizedResponse` — generalized randomized response over k
  categories (report the truth w.p. ``e^ε/(e^ε+k-1)``, else uniform over
  the other categories);
* :class:`UnaryEncoding` — symmetric unary encoding (RAPPOR-style): each
  user perturbs a k-bit one-hot vector bitwise; better than k-RR for
  large k.

Both come with unbiased frequency estimators and closed-form variances,
so the local-vs-central accuracy gap (the price of removing trust) is
measurable (Experiments E15 and E18). The continuous-domain DJW sampling
mechanisms for mean/median estimation build on the same interface in
:mod:`repro.local_privacy`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.observability import tracer as _trace
from repro.observability.events import MechanismReleaseEvent
from repro.utils.validation import check_positive, check_random_state


def _check_categories(categories) -> tuple:
    categories = tuple(categories)
    if len(categories) < 2:
        raise ValidationError("need at least two categories")
    if len(set(categories)) != len(categories):
        raise ValidationError("categories must be distinct")
    return categories


def clip_and_renormalize(estimates) -> np.ndarray:
    """Project debiased frequency estimates back onto the simplex.

    The unbiased inversion ``(ȳ - q)/(p - q)`` can leave individual
    coordinates negative (small n) or the total away from one. Clipping
    at zero and renormalizing is pure post-processing of the privatized
    reports, so it costs no privacy and never increases the worst-case
    ℓ∞ error of a coordinate that was already in ``[0, 1]``.

    Parameters
    ----------
    estimates:
        One-dimensional array of debiased frequency estimates (may
        contain negative coordinates).

    Returns
    -------
    numpy.ndarray
        Non-negative vector of the same length summing to one. If every
        coordinate clips to zero the uniform distribution is returned.
    """
    arr = np.asarray(estimates, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("estimates must be a non-empty 1-d array")
    if not np.isfinite(arr).all():
        raise ValidationError("estimates must be finite")
    clipped = np.clip(arr, 0.0, None)
    total = float(clipped.sum())
    if total <= 0.0:
        return np.full(arr.size, 1.0 / arr.size)
    return clipped / total


class LocalMechanism(Mechanism):
    """A per-record ε-LDP randomizer behind the central-DP interface.

    Local mechanisms privatize one record at a time — the guarantee
    holds between any two *records*, not datasets — so the natural unit
    of work is :meth:`privatize`. The batch entry point
    :meth:`privatize_many` follows the ``release_many`` discipline: its
    outputs are bit-identical to sequential :meth:`privatize` calls
    sharing one :class:`numpy.random.Generator`, subclasses vectorize
    via :meth:`_privatize_many`, and observability records one
    aggregated :class:`~repro.observability.events.MechanismReleaseEvent`
    with ``count == len(records)`` (each record spends the per-record ε).

    :meth:`release` treats a sequence of records as the dataset and
    privatizes every one, which keeps local mechanisms drop-in
    compatible with auditors and accountants built for the central
    :class:`~repro.mechanisms.base.Mechanism` interface.
    """

    @abc.abstractmethod
    def privatize(self, record, random_state=None):
        """Privatize one record under the per-record ε guarantee.

        Parameters
        ----------
        record:
            One raw client record in the mechanism's input domain.
        random_state:
            Seed or :class:`numpy.random.Generator` for the draw.
        """

    def privatize_many(self, records, random_state=None):
        """Privatize a batch of records with one shared generator.

        Stream equivalence contract: the outputs are bit-identical to
        ``[self.privatize(r, rng) for r in records]`` with the same
        ``rng``. Families with a vectorized kernel override
        :meth:`_privatize_many`; the base fallback loops
        :meth:`privatize`.

        Parameters
        ----------
        records:
            Non-empty sequence of records.
        random_state:
            Seed or :class:`numpy.random.Generator` shared by the batch.

        Returns
        -------
        numpy.ndarray or list
            One privatized output per record, leading axis of length
            ``len(records)``.
        """
        records = self._check_records(records)
        rng = check_random_state(random_state)
        tracer = _trace.current()
        if tracer is None:
            return self._privatize_many(records, rng)
        mechanism = type(self).__name__
        count = len(records)
        with tracer.span(
            f"privatize_many:{mechanism}", mechanism=mechanism, count=count
        ):
            outputs = self._privatize_many(records, rng)
        spec = self.privacy
        tracer.record(
            MechanismReleaseEvent(
                label=mechanism,
                epsilon=spec.epsilon,
                delta=spec.delta,
                mechanism=mechanism,
                count=count,
            )
        )
        tracer.count("mechanism.releases", count)
        return outputs

    def _check_records(self, records):
        """Materialize and validate the batch before any RNG is consumed.

        Parameters
        ----------
        records:
            Candidate batch of records.

        Returns
        -------
        list
            The records as a list of length ≥ 1.
        """
        records = list(records)
        if not records:
            raise ValidationError("records must not be empty")
        return records

    def _privatize_many(self, records, rng):
        """Batch kernel fallback: loop :meth:`privatize` on a shared rng.

        Mirrors ``Mechanism._release_many``: if a record raises
        mid-batch, the records already privatized consumed their budget,
        so the partial aggregated event is emitted before re-raising and
        the ledger never under-counts.

        Parameters
        ----------
        records:
            Validated list of records (length ≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        outputs = []
        try:
            for record in records:
                outputs.append(self.privatize(record, random_state=rng))
        except BaseException:
            tracer = _trace.current()
            if tracer is not None and outputs:
                spec = self.privacy
                mechanism = type(self).__name__
                tracer.record(
                    MechanismReleaseEvent(
                        label=mechanism,
                        epsilon=spec.epsilon,
                        delta=spec.delta,
                        mechanism=mechanism,
                        count=len(outputs),
                    )
                )
                tracer.count("mechanism.releases", len(outputs))
            raise
        return outputs

    def release(self, dataset, random_state=None):
        """Privatize every record of ``dataset`` independently.

        Parameters
        ----------
        dataset:
            Sequence of records; each is privatized under the per-record
            ε so the whole release is ε-DP in any single record.
        random_state:
            Seed or :class:`numpy.random.Generator` for the batch.
        """
        rng = check_random_state(random_state)
        records = self._check_records(dataset)
        return self._privatize_many(records, rng)


class _CategoricalLocalMechanism(LocalMechanism):
    """Shared category bookkeeping for the frequency-oracle mechanisms."""

    def __init__(self, categories, epsilon: float) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.categories = _check_categories(categories)
        self._index = {c: i for i, c in enumerate(self.categories)}
        arr = np.empty(len(self.categories), dtype=object)
        arr[:] = self.categories
        self._category_array = arr

    def _encode(self, records) -> np.ndarray:
        """Map records to category indices, rejecting unknown values.

        Parameters
        ----------
        records:
            List of records, each expected in the category set.

        Returns
        -------
        numpy.ndarray
            Integer index array of shape ``(len(records),)``.
        """
        out = np.empty(len(records), dtype=np.intp)
        for i, record in enumerate(records):
            try:
                index = self._index.get(record)
            except TypeError:
                index = None
            if index is None:
                raise ValidationError(
                    "records contain a value outside the category set"
                )
            out[i] = index
        return out

    def randomize(self, value, random_state=None):
        """Backward-compatible alias for :meth:`privatize`.

        Parameters
        ----------
        value:
            One record in the category set.
        random_state:
            Seed or :class:`numpy.random.Generator` for the draw.
        """
        return self.privatize(value, random_state=random_state)


class KRandomizedResponse(_CategoricalLocalMechanism):
    """Generalized randomized response over k categories, ε-LDP per record.

    Truth probability ``p = e^ε / (e^ε + k - 1)``; any specific lie has
    probability ``q = 1 / (e^ε + k - 1)``; the ratio p/q = e^ε makes each
    report exactly ε-DP in its own record.

    Each :meth:`privatize` call consumes exactly one uniform double: the
    single draw both decides truth-vs-lie and, via the inverse CDF of
    the uniform lie distribution, selects which lie. One draw per record
    is what lets :meth:`privatize_many` consume the generator in a
    single ``uniform(size=n)`` block while staying bit-identical to the
    sequential loop.

    Parameters
    ----------
    categories:
        The fixed, data-independent category list.
    epsilon:
        Per-record local privacy parameter.
    """

    def __init__(self, categories, epsilon: float) -> None:
        epsilon = check_positive(epsilon, name="epsilon")
        super().__init__(categories, epsilon)
        k = len(self.categories)
        self.truth_probability = float(np.exp(epsilon) / (np.exp(epsilon) + k - 1))
        self.lie_probability = float(1.0 / (np.exp(epsilon) + k - 1))

    def _lie_index(self, true_index, offsets):
        """Map uniform lie offsets in ``[0, k-2]`` to category indices.

        Parameters
        ----------
        true_index:
            Index (or index array) of the true category being skipped.
        offsets:
            Integer offsets into the "all categories but the truth" list.
        """
        return offsets + (offsets >= true_index)

    def privatize(self, record, random_state=None):
        """Randomize one record with a single uniform draw.

        Parameters
        ----------
        record:
            One record; must be a known category.
        random_state:
            Seed or :class:`numpy.random.Generator` for the draw.
        """
        index = self._encode([record])[0]
        rng = check_random_state(random_state)
        u = rng.uniform()
        p, q = self.truth_probability, self.lie_probability
        if u < p:
            return self.categories[int(index)]
        k = len(self.categories)
        offset = min(int((u - p) / q), k - 2)
        return self.categories[int(self._lie_index(index, offset))]

    def _privatize_many(self, records, rng):
        """Vectorized kernel: one ``uniform(size=n)`` block for the batch.

        Parameters
        ----------
        records:
            Validated list of records.
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        indices = self._encode(records)
        n = indices.size
        u = rng.uniform(size=n)
        p, q = self.truth_probability, self.lie_probability
        k = len(self.categories)
        offsets = np.minimum(((u - p) / q).astype(np.intp), k - 2)
        lie_indices = self._lie_index(indices, np.maximum(offsets, 0))
        out = np.where(u < p, indices, lie_indices)
        return list(self._category_array[out])

    def channel_matrix(self) -> np.ndarray:
        """The k×k row-stochastic matrix of this local channel.

        ``K[i, j] = p`` on the diagonal and ``q`` off it; rows are the
        conditional report laws, so the matrix feeds directly into the
        :mod:`repro.information` divergence toolkit for numerical
        data-processing-inequality checks.
        """
        k = len(self.categories)
        p, q = self.truth_probability, self.lie_probability
        matrix = np.full((k, k), q)
        np.fill_diagonal(matrix, p)
        return matrix / matrix.sum(axis=1, keepdims=True)

    def as_channel(self):
        """This mechanism as a :class:`~repro.information.DiscreteChannel`."""
        from repro.information.channel import DiscreteChannel

        return DiscreteChannel(
            self.categories, self.categories, self.channel_matrix()
        )

    def estimate_frequencies(self, reports, *, clip: bool = False) -> np.ndarray:
        """Frequency estimates from the randomized reports.

        If ȳ_c is the observed report fraction of category c, the debiased
        estimate is ``(ȳ_c - q) / (p - q)`` — unbiased but possibly
        negative at small n; ``clip=True`` applies
        :func:`clip_and_renormalize` (pure post-processing).

        Parameters
        ----------
        reports:
            Randomized category reports from :meth:`privatize_many`.
        clip:
            Project the debiased estimates back onto the simplex.
        """
        reports = list(reports)
        if not reports:
            raise ValidationError("reports must not be empty")
        counts = np.zeros(len(self.categories))
        indices = self._encode(reports)
        np.add.at(counts, indices, 1.0)
        observed = counts / len(reports)
        p, q = self.truth_probability, self.lie_probability
        estimates = (observed - q) / (p - q)
        if clip:
            return clip_and_renormalize(estimates)
        return estimates

    def estimator_variance(self, n: int) -> float:
        """Worst-case per-category variance of the frequency estimator.

        Parameters
        ----------
        n:
            Number of privatized reports averaged by the estimator.
        """
        if n < 1:
            raise ValidationError("n must be >= 1")
        p, q = self.truth_probability, self.lie_probability
        # Var(ȳ)/ (p-q)^2 with Var(ȳ) <= 1/(4n).
        return 1.0 / (4.0 * n * (p - q) ** 2)


class UnaryEncoding(_CategoricalLocalMechanism):
    """Symmetric unary encoding (RAPPOR-style), ε-LDP per record.

    Each record becomes a k-bit one-hot vector; the true bit is kept with
    probability ``p = e^{ε/2}/(e^{ε/2}+1)``, every other bit is set with
    probability ``q = 1 - p``. Each bit flip contributes ε/2, the pair
    (true bit, any other bit) bounds the total at ε.

    Parameters
    ----------
    categories:
        The fixed, data-independent category list.
    epsilon:
        Per-record local privacy parameter.
    """

    def __init__(self, categories, epsilon: float) -> None:
        epsilon = check_positive(epsilon, name="epsilon")
        super().__init__(categories, epsilon)
        half = np.exp(epsilon / 2.0)
        self.keep_probability = float(half / (half + 1.0))
        self.flip_probability = 1.0 - self.keep_probability

    def privatize(self, record, random_state=None) -> np.ndarray:
        """Perturbed one-hot vector for one record.

        Parameters
        ----------
        record:
            One record; must be a known category.
        random_state:
            Seed or :class:`numpy.random.Generator` for the k bit flips.
        """
        index = self._encode([record])[0]
        rng = check_random_state(random_state)
        k = len(self.categories)
        bits = np.zeros(k, dtype=int)
        bits[index] = 1
        keep = rng.uniform(size=k) < self.keep_probability
        return np.where(keep, bits, 1 - bits)

    def _privatize_many(self, records, rng):
        """Vectorized kernel: one ``uniform(size=(n, k))`` block.

        Bit-identical to the sequential loop because ``n`` consecutive
        ``uniform(size=k)`` calls and one ``uniform(size=(n, k))`` call
        consume the generator's stream identically.

        Parameters
        ----------
        records:
            Validated list of records.
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        indices = self._encode(records)
        n = indices.size
        k = len(self.categories)
        bits = np.zeros((n, k), dtype=int)
        bits[np.arange(n), indices] = 1
        keep = rng.uniform(size=(n, k)) < self.keep_probability
        return np.where(keep, bits, 1 - bits)

    def estimate_frequencies(
        self, report_matrix, *, clip: bool = False
    ) -> np.ndarray:
        """Frequency estimates from the stacked reports.

        Each bit has expectation ``q + (p - q)·f_c``; invert per column.
        The unbiased inversion can go negative at small n; ``clip=True``
        applies :func:`clip_and_renormalize` (pure post-processing).

        Parameters
        ----------
        report_matrix:
            Stacked perturbed one-hot rows from :meth:`privatize_many`.
        clip:
            Project the debiased estimates back onto the simplex.
        """
        matrix = np.asarray(report_matrix)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.categories):
            raise ValidationError(
                "report_matrix must have one column per category"
            )
        observed = matrix.mean(axis=0)
        p = self.keep_probability
        q = self.flip_probability
        estimates = (observed - q) / (p - q)
        if clip:
            return clip_and_renormalize(estimates)
        return estimates

    def estimator_variance(self, n: int) -> float:
        """Per-category variance of the frequency estimator (dominant
        ``q(1-q)`` term).

        Parameters
        ----------
        n:
            Number of privatized reports averaged by the estimator.
        """
        if n < 1:
            raise ValidationError("n must be >= 1")
        p = self.keep_probability
        q = self.flip_probability
        return q * (1.0 - q) / (n * (p - q) ** 2)
