"""Smooth sensitivity (Nissim–Raskhodnikova–Smith 2007) for the median.

Global sensitivity is worst-case over *all* datasets; for queries like
the median it is enormous (the whole data range) even when the actual
dataset is benign. Smooth sensitivity interpolates: it upper-bounds the
local sensitivity by a function that changes slowly between neighbours,

    S_β(x) = max_k  e^{-βk} · A_k(x),
    A_k(x) = max local sensitivity over datasets within distance k,

and calibrating noise to S instead of the global constant preserves
privacy with far less noise on typical data. Implemented for the median
of bounded scalars with two noise laws:

* Cauchy noise — pure ε-DP with β = ε/6 and scale ``6·S/ε``;
* Laplace noise — (ε, δ)-DP with β = ε/(2·ln(2/δ)) and scale ``2·S/ε``.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.continuous import CauchyNoise, LaplaceNoise
from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_in_range, check_positive, check_random_state


def median_local_sensitivity_at_distance(
    sorted_values: np.ndarray, k: int, lower: float, upper: float
) -> float:
    """``A_k``: the largest local sensitivity of the median over datasets
    at Hamming distance ≤ k from the given (sorted, bounded) one.

    With n values and median index m, an adversary moving k records can
    shift the relevant order statistics; the classical formula is
    ``max_{t=0..k+1} ( x_{m+t} - x_{m+t-k-1} )`` with out-of-range indices
    clipped to the data bounds.

    Parameters
    ----------
    sorted_values:
        Dataset values, already sorted ascending.
    k:
        Hamming radius the adversary may move within.
    lower, upper:
        Known bounds of the data domain.
    """
    n = sorted_values.shape[0]
    if n == 0:
        raise ValidationError("need at least one value")
    m = (n - 1) // 2  # 0-based median index (lower median for even n)

    def value_at(index: int) -> float:
        if index < 0:
            return lower
        if index >= n:
            return upper
        return float(sorted_values[index])

    worst = 0.0
    for t in range(k + 2):
        gap = value_at(m + t) - value_at(m + t - k - 1)
        worst = max(worst, gap)
    return worst


def median_smooth_sensitivity(
    values, beta: float, *, lower: float, upper: float
) -> float:
    """``S_β = max_k e^{-βk}·A_k`` for the median of bounded scalars.

    Exact by scanning every k from 0 to n (A_k saturates at the full range
    for k ≥ n, and the exponential damping makes larger k irrelevant).

    Parameters
    ----------
    values:
        Dataset of scalars.
    beta:
        Smoothing parameter (ε/6 for Cauchy noise, ε/(2·ln(2/δ)) for
        Laplace noise).
    lower, upper:
        Known bounds of the data domain.
    """
    beta = check_positive(beta, name="beta")
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValidationError("values must not be empty")
    if not lower < upper:
        raise ValidationError("need lower < upper")
    if arr[0] < lower - 1e-12 or arr[-1] > upper + 1e-12:
        raise ValidationError("values must lie within [lower, upper]")

    n = arr.size
    m = (n - 1) // 2
    # Pad so every index m+t / m+t-k-1 for k <= n resolves by plain lookup:
    # below-range indices clip to `lower`, above-range to `upper`.
    pad = n + 2
    padded = np.concatenate(
        [np.full(pad, lower), arr, np.full(pad, upper)]
    )
    center = m + pad  # position of the median in `padded`

    best = 0.0
    full_range = upper - lower
    for k in range(n + 1):
        # A_k = max_{t=0..k+1} padded[center+t] - padded[center+t-k-1],
        # evaluated as one vectorized lag-(k+1) difference.
        upper_slice = padded[center : center + k + 2]
        lower_slice = padded[center - k - 1 : center + 1]
        local = float((upper_slice - lower_slice).max())
        best = max(best, np.exp(-beta * k) * local)
        if local >= full_range:
            break  # A_k has saturated; further k only decay
    return float(best)


class SmoothSensitivityMedian(Mechanism):
    """Private median of bounded scalars via smooth sensitivity.

    Parameters
    ----------
    lower, upper:
        Public data bounds.
    epsilon:
        Privacy parameter.
    delta:
        0 for the pure-DP Cauchy variant; > 0 selects the Laplace variant.
    """

    def __init__(
        self, lower: float, upper: float, epsilon: float, *, delta: float = 0.0
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon, delta=delta))
        if not lower < upper:
            raise ValidationError("need lower < upper")
        self.lower = float(lower)
        self.upper = float(upper)
        if delta == 0.0:
            self.beta = epsilon / 6.0
            self.noise_kind = "cauchy"
        else:
            check_in_range(delta, name="delta", low=0.0, high=1.0, inclusive=False)
            self.beta = epsilon / (2.0 * np.log(2.0 / delta))
            self.noise_kind = "laplace"

    def smooth_sensitivity(self, values) -> float:
        """The dataset's smooth sensitivity at this mechanism's β."""
        return median_smooth_sensitivity(
            values, self.beta, lower=self.lower, upper=self.upper
        )

    def release(self, values, random_state=None) -> float:
        """Private median, clipped back into the public bounds."""
        rng = check_random_state(random_state)
        arr = np.asarray(values, dtype=float)
        median = float(np.median(arr))
        sensitivity = self.smooth_sensitivity(arr)
        # The noise scale is data-dependent (that is the point of smooth
        # sensitivity), so the sanctioned noise law is built per release.
        if self.noise_kind == "cauchy":
            law = CauchyNoise(scale=6.0 * sensitivity / self.epsilon)
        else:
            law = LaplaceNoise(scale=2.0 * sensitivity / self.epsilon)
        noise = float(law.sample(random_state=rng))
        return float(np.clip(median + noise, self.lower, self.upper))

    def global_sensitivity_noise_scale(self) -> float:
        """Scale a *global*-sensitivity Laplace mechanism would need.

        The median's global sensitivity is the full range (move half the
        points): ``(upper - lower)``, so the comparator adds
        ``Lap(range/ε)`` — the quantity smooth sensitivity beats on
        concentrated data.
        """
        return (self.upper - self.lower) / self.epsilon
