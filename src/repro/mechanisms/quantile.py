"""Private quantiles via the exponential mechanism over a continuous range.

Smith's classic construction: for data in a public interval [lo, hi] and
target quantile q, score every candidate value t by how far its rank is
from the target rank,

    quality(x, t) = −| #{xᵢ < t} − q·n |,

which has sensitivity 1 under substitution. Between consecutive sorted
data points the quality is constant, so the exponential mechanism over
the *continuous* range reduces to: pick interval k with probability
∝ length(k)·exp(ε·quality_k / 2), then a uniform point inside it — an
exact sampler, no discretization. Together with the smooth-sensitivity
median this gives two independent private-quantile routes to cross-check.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.numerics import normalize_log_weights
from repro.utils.validation import check_in_range, check_random_state


class ExponentialQuantile(Mechanism):
    """ε-DP release of the q-th quantile of bounded scalars.

    Parameters
    ----------
    lower, upper:
        Public data bounds.
    quantile:
        Target quantile q in (0, 1) (0.5 = median).
    epsilon:
        Privacy parameter (the mechanism is exactly ε-DP).
    """

    def __init__(
        self, lower: float, upper: float, quantile: float, epsilon: float
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if not lower < upper:
            raise ValidationError("need lower < upper")
        self.lower = float(lower)
        self.upper = float(upper)
        self.quantile = check_in_range(
            quantile, name="quantile", low=0.0, high=1.0, inclusive=False
        )

    def _intervals(self, values: np.ndarray):
        """Sorted breakpoints and per-interval (length, quality)."""
        arr = np.sort(np.asarray(values, dtype=float))
        if arr.size == 0:
            raise ValidationError("values must not be empty")
        if arr[0] < self.lower - 1e-12 or arr[-1] > self.upper + 1e-12:
            raise ValidationError("values must lie within [lower, upper]")
        breakpoints = np.concatenate([[self.lower], arr, [self.upper]])
        lengths = np.diff(breakpoints)
        target_rank = self.quantile * arr.size
        # A point in interval k has exactly k data points strictly below.
        ranks = np.arange(arr.size + 1, dtype=float)
        qualities = -np.abs(ranks - target_rank)
        return breakpoints, lengths, qualities

    def interval_distribution(self, values) -> np.ndarray:
        """Exact probability of landing in each inter-datapoint interval."""
        _, lengths, qualities = self._intervals(np.asarray(values))
        with np.errstate(divide="ignore"):
            log_weights = np.log(lengths) + self.epsilon * qualities / 2.0
        # Zero-length intervals get probability exactly zero.
        log_weights = np.where(lengths > 0, log_weights, -np.inf)
        return normalize_log_weights(log_weights)

    def release(self, values, random_state=None) -> float:
        """One ε-DP quantile estimate."""
        rng = check_random_state(random_state)
        breakpoints, lengths, _ = self._intervals(np.asarray(values))
        probabilities = self.interval_distribution(values)
        index = int(rng.choice(probabilities.size, p=probabilities))
        return float(
            breakpoints[index] + rng.uniform() * lengths[index]
        )

    def _release_many(self, values, n, rng):
        """Vectorized kernel: one ``(n, 2)`` uniform block for the batch.

        Per release the serial path consumes two uniforms — one inside
        ``Generator.choice`` (which inverts the interval CDF) and one for
        the point within the chosen interval. ``rng.random((n, 2))``
        reproduces that interleave in C order, the CDF inversion is done
        with ``searchsorted`` exactly as ``choice`` does internally, so
        outputs are bit-identical to ``n`` sequential :meth:`release`
        calls.

        Parameters
        ----------
        values:
            The bounded scalars to take the quantile of.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        breakpoints, lengths, _ = self._intervals(np.asarray(values))
        probabilities = self.interval_distribution(values)
        draws = rng.random((n, 2))
        cdf = probabilities.cumsum()
        cdf /= cdf[-1]
        indices = cdf.searchsorted(draws[:, 0], side="right")
        return breakpoints[indices] + draws[:, 1] * lengths[indices]

    def expected_rank_error(self, values) -> float:
        """Mean |rank − target rank| of the released point (exact)."""
        _, _, qualities = self._intervals(np.asarray(values))
        probabilities = self.interval_distribution(values)
        return float(-(qualities @ probabilities))
