"""The geometric mechanism — the discrete analogue of Laplace noise.

For integer-valued queries (counts), adding two-sided geometric noise with
parameter ``α = exp(-ε/Δf)`` gives ε-DP, and being discrete its output law
can be computed *exactly*, which lets the privacy auditor verify the ε
guarantee with equality rather than sampling error (Experiment E8).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class GeometricMechanism(Mechanism):
    """ε-DP release of an integer query via two-sided geometric noise.

    The noise N has PMF ``P(N = k) = (1-α)/(1+α) * α^{|k|}`` with
    ``α = exp(-ε / Δf)``.

    Parameters
    ----------
    query:
        Function mapping a dataset to an integer.
    sensitivity:
        Global sensitivity Δf of ``query``.
    epsilon:
        Privacy parameter.
    """

    def __init__(
        self,
        query: Callable,
        sensitivity: float,
        epsilon: float,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.query = query
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.alpha = float(np.exp(-self.epsilon / self.sensitivity))

    def sample_noise(self, random_state=None) -> int:
        """Draw one two-sided geometric variate.

        Difference of two i.i.d. geometric(1-α) variables has exactly the
        two-sided geometric law.
        """
        rng = check_random_state(random_state)
        g1 = rng.geometric(1.0 - self.alpha) - 1
        g2 = rng.geometric(1.0 - self.alpha) - 1
        return int(g1 - g2)

    def release(self, dataset, random_state=None) -> int:
        """Return ``query(dataset) + noise`` as an integer."""
        true_value = self.query(dataset)
        if not float(true_value).is_integer():
            raise ValidationError(
                "GeometricMechanism requires an integer-valued query"
            )
        return int(true_value) + self.sample_noise(random_state)

    def _release_many(self, dataset, n, rng):
        """Vectorized kernel: an ``(n, 2)`` block of geometric variates.

        Row ``i`` holds the pair ``(g1, g2)`` the serial path would draw
        for release ``i``; C-order filling means the block consumes the
        generator stream exactly like ``n`` sequential :meth:`release`
        calls, so outputs are bit-identical to the serial loop.

        Parameters
        ----------
        dataset:
            The dataset to query.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        true_value = self.query(dataset)
        if not float(true_value).is_integer():
            raise ValidationError(
                "GeometricMechanism requires an integer-valued query"
            )
        pairs = rng.geometric(1.0 - self.alpha, size=(n, 2))
        return int(true_value) + (pairs[:, 0] - pairs[:, 1])

    def noise_log_pmf(self, k: int) -> float:
        """Exact log-PMF of the noise at integer ``k``."""
        return float(
            np.log((1.0 - self.alpha) / (1.0 + self.alpha))
            + abs(int(k)) * np.log(self.alpha)
        )

    def output_log_pmf(self, dataset, value: int) -> float:
        """Exact log-probability of releasing ``value`` on ``dataset``."""
        true_value = int(self.query(dataset))
        return self.noise_log_pmf(int(value) - true_value)

    def noise_variance(self) -> float:
        """Variance of the two-sided geometric noise: ``2α / (1-α)²``."""
        return 2.0 * self.alpha / (1.0 - self.alpha) ** 2
