"""Report-noisy-max — the exponential mechanism's additive-noise sibling.

Add independent noise to every candidate's quality score and release the
argmax. With Gumbel(2Δq/ε) noise the output distribution is *exactly* the
exponential mechanism's (the Gumbel-max trick); with Laplace(2Δq/ε) noise
it is the textbook ε-DP report-noisy-max with a slightly different law.
Both are implemented; the Gumbel equivalence is exercised in the tests,
tying the paper's central object to the mechanism practitioners deploy.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.distributions.continuous import GumbelNoise, LaplaceNoise
from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class ReportNoisyMax(Mechanism):
    """ε-DP selection by adding noise to scores and taking the argmax.

    Parameters
    ----------
    quality:
        ``quality(dataset, output) -> float``, higher is better.
    outputs:
        Finite candidate range.
    sensitivity:
        Global sensitivity Δq of the quality function.
    epsilon:
        Privacy parameter.
    noise:
        ``"gumbel"`` (exactly reproduces the exponential mechanism's
        output law) or ``"laplace"`` (the textbook variant).
    """

    def __init__(
        self,
        quality: Callable,
        outputs: Sequence,
        sensitivity: float,
        epsilon: float,
        *,
        noise: str = "gumbel",
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if noise not in ("gumbel", "laplace"):
            raise ValidationError("noise must be 'gumbel' or 'laplace'")
        self.quality = quality
        self.outputs = tuple(outputs)
        if not self.outputs:
            raise ValidationError("outputs must not be empty")
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.noise_kind = noise
        self.noise_scale = 2.0 * self.sensitivity / self.epsilon
        noise_law = GumbelNoise if noise == "gumbel" else LaplaceNoise
        self.noise = noise_law(scale=self.noise_scale)

    def _noisy_scores(self, dataset, rng: np.random.Generator) -> np.ndarray:
        scores = np.asarray(
            [float(self.quality(dataset, u)) for u in self.outputs]
        )
        # Gumbel-max trick: argmax(score + Gumbel(β)) follows the
        # softmax(score/β) law — the exponential mechanism exactly.
        return scores + self.noise.sample(size=scores.shape, random_state=rng)

    def release(self, dataset, random_state=None):
        """The argmax candidate after noising every score once."""
        rng = check_random_state(random_state)
        return self.outputs[int(np.argmax(self._noisy_scores(dataset, rng)))]

    def _release_many(self, dataset, n, rng):
        """Vectorized kernel: one ``(n, k)`` noise block, argmax per row.

        Scores every candidate once, adds an ``(n, k)`` Gumbel/Laplace
        block (row ``i`` = the noise release ``i`` would have drawn; the
        Gumbel-trick argmax over each row *is* the exponential mechanism),
        and gathers the per-row argmax candidates. C-order filling keeps
        outputs bit-identical to ``n`` sequential :meth:`release` calls.

        Parameters
        ----------
        dataset:
            The dataset to query.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        scores = np.asarray(
            [float(self.quality(dataset, u)) for u in self.outputs]
        )
        noisy = scores + self.noise.sample(
            size=(n, scores.shape[0]), random_state=rng
        )
        winners = np.argmax(noisy, axis=1)
        return [self.outputs[int(i)] for i in winners]

    def release_with_score(self, dataset, random_state=None):
        """Release the winner together with its *noisy* score.

        Releasing the noisy winning score is still ε-DP (it is a
        post-processing of the same noise draw); releasing the *true*
        score would not be.
        """
        rng = check_random_state(random_state)
        noisy = self._noisy_scores(dataset, rng)
        index = int(np.argmax(noisy))
        return self.outputs[index], float(noisy[index])
