"""Differentially-private mechanisms (Section 2 of the paper).

All the standard building blocks implemented from scratch: Laplace and
geometric noise for numeric queries, the Gaussian mechanism for (ε, δ)-DP,
randomized response, vector (Gamma-norm) noise for private ERM, and — most
importantly for the paper — the exponential mechanism of McSherry & Talwar,
of which the Gibbs estimator is the learning-theoretic instance.
"""

from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.geometric import GeometricMechanism
from repro.mechanisms.gaussian import GaussianMechanism
from repro.mechanisms.exponential import ExponentialMechanism
from repro.mechanisms.randomized_response import RandomizedResponse
from repro.mechanisms.vector import VectorLaplaceMechanism
from repro.mechanisms.noisy_max import ReportNoisyMax
from repro.mechanisms.sparse_vector import SparseVector, above_threshold
from repro.mechanisms.smooth_sensitivity import SmoothSensitivityMedian
from repro.mechanisms.histogram import LinearQueryWorkload, PrivateHistogram
from repro.mechanisms.continual import NaivePrefixRelease, TreeAggregator
from repro.mechanisms.quantile import ExponentialQuantile
from repro.mechanisms.sensitivity import (
    global_sensitivity,
    empirical_risk_sensitivity,
)
from repro.mechanisms.composition import (
    advanced_composition,
    parallel_composition,
    sequential_composition,
)
from repro.mechanisms.accountant import PrivacyAccountant

__all__ = [
    "ExponentialMechanism",
    "ExponentialQuantile",
    "GaussianMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "PrivacyAccountant",
    "PrivacySpec",
    "RandomizedResponse",
    "ReportNoisyMax",
    "LinearQueryWorkload",
    "NaivePrefixRelease",
    "TreeAggregator",
    "PrivateHistogram",
    "SmoothSensitivityMedian",
    "SparseVector",
    "above_threshold",
    "VectorLaplaceMechanism",
    "advanced_composition",
    "empirical_risk_sensitivity",
    "global_sensitivity",
    "parallel_composition",
    "sequential_composition",
]
