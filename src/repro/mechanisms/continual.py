"""Continual release: the binary-tree mechanism (Chan–Shi–Song 2011).

Releasing a running count at every time step under ε-DP: the naive
approach re-noises each prefix independently (error grows like T under a
fixed budget), while the binary-tree mechanism noises each node of a
dyadic decomposition once and answers every prefix as a sum of at most
``log₂ T`` nodes — per-step error ``O(log^{1.5} T / ε)``. The classic
demonstration that *structure* in the release buys accuracy at equal
privacy (Experiment E15).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.continuous import LaplaceNoise
from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_random_state


class TreeAggregator(Mechanism):
    """ε-DP continual counting over a fixed horizon via dyadic trees.

    Parameters
    ----------
    horizon:
        Number of time steps T (padded internally to a power of two).
    epsilon:
        Total privacy budget for the whole stream. Every stream element
        appears in exactly ``levels = log₂ T`` tree nodes, so each node is
        noised with ``Lap(levels / ε)``.
    value_sensitivity:
        Bound on each stream element's magnitude (default 1 for counts).
    """

    def __init__(
        self, horizon: int, epsilon: float, *, value_sensitivity: float = 1.0
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if horizon < 1:
            raise ValidationError("horizon must be >= 1")
        if value_sensitivity <= 0:
            raise ValidationError("value_sensitivity must be > 0")
        self.horizon = int(horizon)
        self.size = 1
        while self.size < self.horizon:
            self.size *= 2
        self.levels = int(np.log2(self.size)) + 1
        self.value_sensitivity = float(value_sensitivity)
        self.noise = LaplaceNoise(
            scale=self.levels * self.value_sensitivity / self.epsilon
        )

    def _noisy_tree(self, values: np.ndarray, rng) -> list[np.ndarray]:
        """Per-level noisy partial sums; level 0 = leaves."""
        padded = np.zeros(self.size)
        padded[: values.shape[0]] = values
        tree = []
        level = padded
        for _ in range(self.levels):
            tree.append(
                level + self.noise.sample(size=level.shape[0], random_state=rng)
            )
            if level.shape[0] > 1:
                level = level.reshape(-1, 2).sum(axis=1)
            else:
                break
        return tree

    def release(self, stream, random_state=None) -> np.ndarray:
        """All T prefix sums, each assembled from ≤ log₂ T noisy nodes."""
        values = np.asarray(stream, dtype=float)
        if values.ndim != 1 or values.shape[0] == 0:
            raise ValidationError("stream must be a nonempty 1-D array")
        if values.shape[0] > self.horizon:
            raise ValidationError(
                f"stream longer than the horizon ({self.horizon})"
            )
        if np.any(np.abs(values) > self.value_sensitivity + 1e-12):
            raise ValidationError(
                "stream values exceed the declared sensitivity"
            )
        rng = check_random_state(random_state)
        tree = self._noisy_tree(values, rng)

        prefixes = np.empty(values.shape[0])
        for t in range(1, values.shape[0] + 1):
            # Decompose [0, t) into dyadic nodes via the binary expansion.
            total = 0.0
            position = 0
            remaining = t
            level = len(tree) - 1
            while remaining > 0 and level >= 0:
                block = 1 << level
                if remaining >= block:
                    total += tree[level][position // block]
                    position += block
                    remaining -= block
                level -= 1
            prefixes[t - 1] = total
        return prefixes

    def per_step_noise_std(self) -> float:
        """Worst-case standard deviation of one released prefix.

        A prefix uses at most ``levels`` nodes, each with Laplace variance
        ``2·scale²``.
        """
        return float(np.sqrt(2.0 * self.levels) * self.noise.scale)


class NaivePrefixRelease(Mechanism):
    """Baseline: re-noise every prefix independently under one budget.

    Each stream element affects all T prefixes, so the L1 sensitivity of
    the prefix vector is ``T·value_sensitivity`` and each prefix needs
    ``Lap(T/ε)`` — the per-step error grows linearly in T. Exists to make
    the tree mechanism's advantage measurable.

    Parameters
    ----------
    horizon:
        Maximum stream length T the budget is calibrated for.
    epsilon:
        Total privacy budget for the whole stream.
    value_sensitivity:
        Largest possible change of one stream element.
    """

    def __init__(
        self, horizon: int, epsilon: float, *, value_sensitivity: float = 1.0
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if horizon < 1:
            raise ValidationError("horizon must be >= 1")
        self.horizon = int(horizon)
        self.value_sensitivity = float(value_sensitivity)
        self.noise = LaplaceNoise(
            scale=self.horizon * self.value_sensitivity / self.epsilon
        )

    def release(self, stream, random_state=None) -> np.ndarray:
        """All noisy prefix sums of ``stream`` in one ε-DP release."""
        values = np.asarray(stream, dtype=float)
        if values.ndim != 1 or values.shape[0] == 0:
            raise ValidationError("stream must be a nonempty 1-D array")
        if values.shape[0] > self.horizon:
            raise ValidationError(
                f"stream longer than the horizon ({self.horizon})"
            )
        rng = check_random_state(random_state)
        prefixes = np.cumsum(values)
        return prefixes + self.noise.sample(
            size=prefixes.shape[0], random_state=rng
        )

    def per_step_noise_std(self) -> float:
        """Standard deviation of one released prefix: ``√2·T/ε``."""
        return float(np.sqrt(2.0) * self.noise.scale)
