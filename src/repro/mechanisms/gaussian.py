"""The Gaussian mechanism — (ε, δ)-DP via Gaussian noise.

Not used by the paper directly (the paper works with pure ε-DP), but
included because it is the standard approximate-DP comparator; the privacy
auditor uses it as a *negative control*: it must fail a pure-ε audit while
passing the (ε, δ) hockey-stick test.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.distributions.continuous import GaussianNoise
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_in_range, check_positive, check_random_state


def gaussian_sigma(sensitivity: float, epsilon: float, delta: float) -> float:
    """Classical calibration ``σ = Δf · sqrt(2 ln(1.25/δ)) / ε``.

    Valid for ε ≤ 1 (Dwork & Roth, Theorem A.1); we allow larger ε but the
    guarantee is then conservative only in the auditor's measured sense.

    Parameters
    ----------
    sensitivity:
        L2 sensitivity Δf of the query.
    epsilon:
        Privacy parameter.
    delta:
        Failure probability in (0, 1).
    """
    sensitivity = check_positive(sensitivity, name="sensitivity")
    epsilon = check_positive(epsilon, name="epsilon")
    delta = check_in_range(delta, name="delta", low=0.0, high=1.0, inclusive=False)
    return sensitivity * float(np.sqrt(2.0 * np.log(1.25 / delta))) / epsilon


class GaussianMechanism(Mechanism):
    """(ε, δ)-DP release of a real query via Gaussian noise.

    Parameters
    ----------
    query:
        Dataset → float (or fixed-length vector; sensitivity bounds the L2
        displacement in that case).
    sensitivity:
        Global L2 sensitivity of the query.
    epsilon, delta:
        Approximate-DP parameters; noise scale follows the classical
        calibration.
    """

    def __init__(
        self,
        query: Callable,
        sensitivity: float,
        epsilon: float,
        delta: float,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon, delta=delta))
        if delta <= 0:
            raise ValueError("GaussianMechanism requires delta > 0")
        self.query = query
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.noise = GaussianNoise(sigma=gaussian_sigma(sensitivity, epsilon, delta))

    def release(self, dataset, random_state=None):
        """Return ``query(dataset) + N(0, σ²)`` (elementwise for vectors)."""
        rng = check_random_state(random_state)
        true_value = np.asarray(self.query(dataset), dtype=float)
        noise = self.noise.sample(size=true_value.shape or None, random_state=rng)
        released = true_value + noise
        if released.shape == ():
            return float(released)
        return released

    def _release_many(self, dataset, n, rng):
        """Vectorized kernel: one ``(n, *shape)`` Gaussian noise block.

        C-order block filling makes the batch consume the generator stream
        exactly like ``n`` sequential :meth:`release` calls, so outputs
        are bit-identical to the serial loop.

        Parameters
        ----------
        dataset:
            The dataset to query.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        true_value = np.asarray(self.query(dataset), dtype=float)
        noise = self.noise.sample(size=(n, *true_value.shape), random_state=rng)
        return true_value + noise

    def output_log_density(self, dataset, value) -> float:
        """Log-density of releasing ``value`` on ``dataset`` (scalar query)."""
        true_value = float(np.asarray(self.query(dataset), dtype=float))
        return float(self.noise.log_density(float(value) - true_value))
