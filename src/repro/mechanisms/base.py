"""Mechanism interface and privacy specifications.

Definition 2.1 of the paper: a randomized function ``f`` is ε-DP if for all
neighbouring datasets ``D, D'`` and all output events ``Y``,
``Pr[f(D) ∈ Y] ≤ e^ε · Pr[f(D') ∈ Y]``. Every mechanism in this package
carries its claimed :class:`PrivacySpec` so accountants and auditors can
read guarantees off the object rather than trusting call sites.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class PrivacySpec:
    """An (ε, δ) differential-privacy guarantee.

    ``delta == 0`` is pure ε-DP — the only flavour the paper uses — while
    ``delta > 0`` covers the Gaussian mechanism extension.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.epsilon, name="epsilon")
        check_in_range(self.delta, name="delta", low=0.0, high=1.0)

    @property
    def is_pure(self) -> bool:
        """True when the guarantee is pure ε-DP (δ = 0)."""
        return self.delta == 0.0

    def compose(self, other: "PrivacySpec") -> "PrivacySpec":
        """Sequential (basic) composition: parameters add."""
        return PrivacySpec(self.epsilon + other.epsilon, self.delta + other.delta)

    def __str__(self) -> str:
        if self.is_pure:
            return f"{self.epsilon:.6g}-DP"
        return f"({self.epsilon:.6g}, {self.delta:.3g})-DP"


class Mechanism(abc.ABC):
    """A randomized function of a dataset with a declared privacy guarantee.

    Subclasses implement :meth:`release` (one randomized output for one
    dataset). The base class stores the nominal :class:`PrivacySpec`;
    auditors in :mod:`repro.privacy` measure whether the implementation
    actually honours it.
    """

    def __init__(self, privacy: PrivacySpec) -> None:
        if not isinstance(privacy, PrivacySpec):
            raise ValidationError("privacy must be a PrivacySpec")
        self._privacy = privacy

    @property
    def privacy(self) -> PrivacySpec:
        """The nominal differential-privacy guarantee of this mechanism."""
        return self._privacy

    @property
    def epsilon(self) -> float:
        """Shorthand for ``privacy.epsilon``."""
        return self._privacy.epsilon

    @property
    def delta(self) -> float:
        """Shorthand for ``privacy.delta``."""
        return self._privacy.delta

    @abc.abstractmethod
    def release(self, dataset, random_state=None):
        """Produce one randomized, privacy-preserving output for ``dataset``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._privacy})"
