"""Mechanism interface and privacy specifications.

Definition 2.1 of the paper: a randomized function ``f`` is ε-DP if for all
neighbouring datasets ``D, D'`` and all output events ``Y``,
``Pr[f(D) ∈ Y] ≤ e^ε · Pr[f(D') ∈ Y]``. Every mechanism in this package
carries its claimed :class:`PrivacySpec` so accountants and auditors can
read guarantees off the object rather than trusting call sites.
"""

from __future__ import annotations

import abc
import functools
import numbers
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.observability import tracer as _trace
from repro.observability.events import MechanismReleaseEvent
from repro.utils.validation import check_in_range, check_positive, check_random_state


@dataclass(frozen=True)
class PrivacySpec:
    """An (ε, δ) differential-privacy guarantee.

    ``delta == 0`` is pure ε-DP — the only flavour the paper uses — while
    ``delta > 0`` covers the Gaussian mechanism extension.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.epsilon, name="epsilon")
        check_in_range(self.delta, name="delta", low=0.0, high=1.0)

    @property
    def is_pure(self) -> bool:
        """True when the guarantee is pure ε-DP (δ = 0)."""
        return self.delta == 0.0

    def compose(self, other: "PrivacySpec") -> "PrivacySpec":
        """Sequential (basic) composition: parameters add."""
        return PrivacySpec(self.epsilon + other.epsilon, self.delta + other.delta)

    def __str__(self) -> str:
        if self.is_pure:
            return f"{self.epsilon:.6g}-DP"
        return f"({self.epsilon:.6g}, {self.delta:.3g})-DP"


def _traced_release(release):
    """Wrap a subclass ``release`` with the observability hook.

    The wrapper is transparent when tracing is disabled (one module-level
    read and a ``None`` check before delegating, and the caller-provided
    ``random_state`` flows through untouched, so RNG streams — and hence
    outputs — are bit-identical with tracing on or off). When a tracer is
    active it times the release in a span, appends a
    :class:`~repro.observability.events.MechanismReleaseEvent` carrying
    the mechanism's :class:`PrivacySpec`, and bumps the
    ``mechanism.releases`` counter.
    """

    @functools.wraps(release)
    def traced(self, *args, **kwargs):
        tracer = _trace.current()
        if tracer is None:
            return release(self, *args, **kwargs)
        mechanism = type(self).__name__
        with tracer.span(f"release:{mechanism}", mechanism=mechanism):
            result = release(self, *args, **kwargs)
        spec = self.privacy
        tracer.record(
            MechanismReleaseEvent(
                label=mechanism,
                epsilon=spec.epsilon,
                delta=spec.delta,
                mechanism=mechanism,
            )
        )
        tracer.count("mechanism.releases")
        return result

    traced._dp_traced = True
    return traced


class Mechanism(abc.ABC):
    """A randomized function of a dataset with a declared privacy guarantee.

    Subclasses implement :meth:`release` (one randomized output for one
    dataset). The base class stores the nominal :class:`PrivacySpec`;
    auditors in :mod:`repro.privacy` measure whether the implementation
    actually honours it.

    Every concrete ``release`` is wrapped at class-creation time with the
    observability hook (see :mod:`repro.observability`): all mechanism
    families emit release spans, ledger events, and counters without any
    per-subclass instrumentation, and without touching their math or RNG
    streams. With no active tracer the hook is a near-free no-op.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        """Install the tracing wrapper around a subclass's ``release``."""
        super().__init_subclass__(**kwargs)
        release = cls.__dict__.get("release")
        if (
            release is not None
            and callable(release)
            and not getattr(release, "__isabstractmethod__", False)
            and not getattr(release, "_dp_traced", False)
        ):
            cls.release = _traced_release(release)

    def __init__(self, privacy: PrivacySpec) -> None:
        if not isinstance(privacy, PrivacySpec):
            raise ValidationError("privacy must be a PrivacySpec")
        self._privacy = privacy

    @property
    def privacy(self) -> PrivacySpec:
        """The nominal differential-privacy guarantee of this mechanism."""
        return self._privacy

    @property
    def epsilon(self) -> float:
        """Shorthand for ``privacy.epsilon``."""
        return self._privacy.epsilon

    @property
    def delta(self) -> float:
        """Shorthand for ``privacy.delta``."""
        return self._privacy.delta

    @abc.abstractmethod
    def release(self, dataset, random_state=None):
        """Produce one randomized, privacy-preserving output for ``dataset``."""

    def release_many(self, dataset, n, random_state=None):
        """Draw ``n`` independent releases of ``dataset`` in one call.

        The batch contract is *stream equivalence*: the outputs are
        bit-identical to ``n`` sequential :meth:`release` calls sharing
        the same :class:`numpy.random.Generator` (in particular,
        ``release_many(d, 1, rng)[0] == release(d, rng)`` under equal
        seeds). Families with a vectorized kernel override
        :meth:`_release_many`; the base fallback loops ``release``.

        Observability records the whole batch as *one* aggregated ledger
        event with ``count == n`` (and bumps ``mechanism.releases`` by
        ``n``), so traced ε totals match ``n`` individual releases while
        traces stay O(1) per batch.

        Parameters
        ----------
        dataset:
            The dataset to query, exactly as :meth:`release` expects it.
        n:
            Number of releases to draw (integer ≥ 1).
        random_state:
            Seed or :class:`numpy.random.Generator` shared by the whole
            batch.

        Returns
        -------
        numpy.ndarray or list
            ``n`` outputs, leading axis of length ``n`` — an array for
            numeric mechanisms, a list for structured outputs.
        """
        if not isinstance(n, numbers.Integral) or isinstance(n, bool):
            raise ValidationError(f"n must be an integer, got {n!r}")
        n = int(n)
        if n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        rng = check_random_state(random_state)
        tracer = _trace.current()
        if tracer is None:
            return self._release_many(dataset, n, rng)
        mechanism = type(self).__name__
        with tracer.span(
            f"release_many:{mechanism}", mechanism=mechanism, count=n
        ):
            outputs = self._release_many(dataset, n, rng)
        spec = self.privacy
        tracer.record(
            MechanismReleaseEvent(
                label=mechanism,
                epsilon=spec.epsilon,
                delta=spec.delta,
                mechanism=mechanism,
                count=n,
            )
        )
        tracer.count("mechanism.releases", n)
        return outputs

    def _release_many(self, dataset, n, rng):
        """Batch kernel: ``n`` draws from one shared generator.

        The fallback loops the *untraced* ``release`` (the raw subclass
        method underneath the observability wrapper) so a batch never
        emits per-draw ledger events; :meth:`release_many` records the
        single aggregated event. Override with a numpy kernel that
        consumes the RNG stream exactly as the loop would.

        Because the loop produces real releases one at a time, a draw
        that raises mid-batch leaves the earlier draws *done* — noise
        consumed, mechanism state mutated — while the aggregated event in
        :meth:`release_many` is never reached. Serial traced ``release``
        calls would each have recorded an event, so the looped fallback
        under an active trace used to under-report ``count`` in
        :func:`~repro.observability.events.ledger_totals` whenever a
        batch failed part-way. The fallback therefore emits the same
        aggregated event itself for the draws that completed before
        re-raising: the ledger never under-counts a release that
        actually happened.

        Parameters
        ----------
        dataset:
            The dataset to query.
        n:
            Number of releases (already validated, ≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        release = type(self).release
        release = getattr(release, "__wrapped__", release)
        outputs = []
        try:
            for _ in range(n):
                outputs.append(release(self, dataset, random_state=rng))
        except BaseException:
            tracer = _trace.current()
            if tracer is not None and outputs:
                spec = self.privacy
                mechanism = type(self).__name__
                tracer.record(
                    MechanismReleaseEvent(
                        label=mechanism,
                        epsilon=spec.epsilon,
                        delta=spec.delta,
                        mechanism=mechanism,
                        count=len(outputs),
                    )
                )
                tracer.count("mechanism.releases", len(outputs))
            raise
        return outputs

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._privacy})"
