"""The sparse vector technique (AboveThreshold).

Answers a long adaptive stream of threshold queries while paying privacy
only for the (few) queries that exceed the threshold: noise the threshold
once with ``Lap(2c/ε₁)``, noise each query with ``Lap(4c/ε₂)``, report
only above/below, and halt after ``c`` aboves. The total guarantee is
``ε₁ + ε₂`` regardless of how many below-threshold queries were answered
— the canonical example of privacy accounting that basic composition
cannot capture.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.distributions.continuous import LaplaceNoise
from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class SparseVector(Mechanism):
    """AboveThreshold with a budget of ``max_positives`` discoveries.

    Parameters
    ----------
    threshold:
        The public threshold T.
    sensitivity:
        Global sensitivity of every query in the stream (commonly 1).
    epsilon:
        Total privacy budget; split half on the threshold noise, half on
        the query noise (the standard allocation).
    max_positives:
        Number of above-threshold answers allowed before the mechanism
        halts (the ``c`` in the classical analysis).
    """

    def __init__(
        self,
        threshold: float,
        sensitivity: float,
        epsilon: float,
        *,
        max_positives: int = 1,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if max_positives < 1:
            raise ValidationError("max_positives must be >= 1")
        self.threshold = float(threshold)
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.max_positives = int(max_positives)
        epsilon_threshold = epsilon / 2.0
        epsilon_queries = epsilon / 2.0
        self._threshold_noise = LaplaceNoise(
            scale=2.0 * self.max_positives * self.sensitivity / epsilon_threshold
        )
        self._query_noise = LaplaceNoise(
            scale=4.0 * self.max_positives * self.sensitivity / epsilon_queries
        )
        self._noisy_threshold: float | None = None
        self._positives_used = 0
        self._halted = False

    # ------------------------------------------------------------------
    def start(self, random_state=None) -> "SparseVector":
        """Draw the (single) threshold noise and reset the counter."""
        rng = check_random_state(random_state)
        self._rng = rng
        self._noisy_threshold = self.threshold + float(
            self._threshold_noise.sample(random_state=rng)
        )
        self._positives_used = 0
        self._halted = False
        return self

    @property
    def halted(self) -> bool:
        """Whether the positives budget is exhausted."""
        return self._halted

    def query(self, value: float) -> bool:
        """Answer one threshold query: is ``value + noise`` ≥ T̂?

        ``value`` is the query's true answer on the private dataset; the
        caller computes it (this keeps the class agnostic of the dataset
        representation). Raises once the positives budget is exhausted.
        """
        if self._noisy_threshold is None:
            raise ValidationError("call start() before querying")
        if self._halted:
            raise PrivacyBudgetError(
                "SparseVector halted: positives budget exhausted"
            )
        noisy = float(value) + float(
            self._query_noise.sample(random_state=self._rng)
        )
        above = noisy >= self._noisy_threshold
        if above:
            self._positives_used += 1
            if self._positives_used >= self.max_positives:
                self._halted = True
        return bool(above)

    def release(self, dataset, random_state=None) -> list[bool]:
        """Batch interface: ``dataset`` is ``(data, queries)``; runs the
        stream until exhaustion or halt and returns the answer list."""
        data, queries = dataset
        self.start(random_state=random_state)
        answers: list[bool] = []
        for query_fn in queries:
            if self._halted:
                break
            answers.append(self.query(float(query_fn(data))))
        return answers


def above_threshold(
    data,
    queries: Sequence[Callable],
    threshold: float,
    epsilon: float,
    *,
    sensitivity: float = 1.0,
    random_state=None,
) -> int | None:
    """Convenience: index of the first query above ``threshold``, ε-DP.

    Returns None if no query fired before the stream ended.

    Parameters
    ----------
    data:
        Dataset every query is evaluated on.
    queries:
        Stream of callables ``query(data) -> float``.
    threshold:
        Public threshold the noisy answers are compared against.
    epsilon:
        Total privacy budget of the scan.
    sensitivity:
        Global sensitivity shared by all queries.
    random_state:
        Seed or Generator for the threshold and query noise.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    sensitivity = check_positive(sensitivity, name="sensitivity")
    mechanism = SparseVector(threshold, sensitivity, epsilon, max_positives=1)
    mechanism.start(random_state=random_state)
    for index, query_fn in enumerate(queries):
        if mechanism.query(float(query_fn(data))):
            return index
    return None
