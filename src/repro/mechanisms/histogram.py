"""Private histograms and linear query workloads.

The workhorse of statistical-database releases (the paper's opening
motivation): publish per-category counts under ε-DP, then answer any
number of *linear* queries (ranges, marginals, totals) as free
post-processing of the noisy histogram.

Under the substitution neighbour relation one record moves between two
bins, so the counts vector has L1 sensitivity 2; per-bin ``Lap(2/ε)`` (or
two-sided geometric) noise suffices.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.continuous import LaplaceNoise
from repro.exceptions import NotFittedError, ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state

#: L1 sensitivity of a histogram under record substitution.
HISTOGRAM_SENSITIVITY = 2.0


class PrivateHistogram(Mechanism):
    """ε-DP release of per-category counts.

    Parameters
    ----------
    categories:
        The fixed, data-independent category list.
    epsilon:
        Privacy parameter.
    noise:
        ``"laplace"`` (continuous counts) or ``"geometric"`` (integer
        counts; exact discrete output law).
    """

    def __init__(
        self, categories: Sequence, epsilon: float, *, noise: str = "laplace"
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.categories = tuple(categories)
        if not self.categories:
            raise ValidationError("categories must not be empty")
        if len(set(self.categories)) != len(self.categories):
            raise ValidationError("categories must be distinct")
        if noise not in ("laplace", "geometric"):
            raise ValidationError("noise must be 'laplace' or 'geometric'")
        self.noise_kind = noise
        self.noise_scale = HISTOGRAM_SENSITIVITY / self.epsilon
        self.noisy_counts: np.ndarray | None = None
        self._index = {c: i for i, c in enumerate(self.categories)}

    def true_counts(self, records: Sequence) -> np.ndarray:
        """Exact per-category counts (internal; never release directly)."""
        counts = np.zeros(len(self.categories))
        for record in records:
            index = self._index.get(record)
            if index is None:
                # Data-free message: records are raw inputs and must not
                # leak into exceptions; the category list is public config.
                raise ValidationError(
                    "record is not in the category list; expected one of "
                    f"{list(self.categories)!r}"
                )
            counts[index] += 1
        return counts

    def release(self, records: Sequence, random_state=None) -> np.ndarray:
        """Noisy counts aligned with :attr:`categories`."""
        rng = check_random_state(random_state)
        counts = self.true_counts(records)
        if self.noise_kind == "laplace":
            noise = LaplaceNoise(self.noise_scale).sample(
                size=counts.shape, random_state=rng
            )
            self.noisy_counts = counts + noise
        else:
            alpha = float(np.exp(-1.0 / self.noise_scale))
            g1 = rng.geometric(1.0 - alpha, size=counts.shape) - 1
            g2 = rng.geometric(1.0 - alpha, size=counts.shape) - 1
            self.noisy_counts = counts + (g1 - g2).astype(float)
        return self.noisy_counts

    def _release_many(self, records, n, rng):
        """Vectorized kernel: one noise block covering all ``n`` histograms.

        Laplace noise fills an ``(n, k)`` block; geometric noise fills an
        ``(n, 2, k)`` block whose row ``i`` is the ``(g1, g2)`` pair of
        k-vectors the serial path would draw for release ``i``. C-order
        filling keeps the stream — and hence the outputs — bit-identical
        to ``n`` sequential :meth:`release` calls. :attr:`noisy_counts`
        is left at the *last* release of the batch, matching the loop.

        Parameters
        ----------
        records:
            The records to histogram, as :meth:`release` expects them.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        counts = self.true_counts(records)
        k = counts.shape[0]
        if self.noise_kind == "laplace":
            noise = LaplaceNoise(self.noise_scale).sample(
                size=(n, k), random_state=rng
            )
        else:
            alpha = float(np.exp(-1.0 / self.noise_scale))
            blocks = rng.geometric(1.0 - alpha, size=(n, 2, k))
            noise = (blocks[:, 0, :] - blocks[:, 1, :]).astype(float)
        released = counts + noise
        self.noisy_counts = released[-1]
        return released

    def nonnegative_counts(self) -> np.ndarray:
        """Post-processed counts clipped at zero (free by post-processing)."""
        if self.noisy_counts is None:
            raise NotFittedError("release() has not been called")
        return np.clip(self.noisy_counts, 0.0, None)

    def expected_max_error(self, confidence: float = 0.95) -> float:
        """Bound m on per-bin error with P(max |error| ≤ m) ≥ confidence.

        Union bound over k bins of the Laplace tail:
        ``m = scale · ln(k / (1 - confidence))``.
        """
        if not 0.0 < confidence < 1.0:
            raise ValidationError("confidence must lie strictly in (0, 1)")
        k = len(self.categories)
        return self.noise_scale * float(np.log(k / (1.0 - confidence)))


class LinearQueryWorkload:
    """A batch of linear queries answered from one noisy histogram.

    A query is a weight vector w over categories; its answer is ``w·counts``.
    Because all queries are post-processing of a single ε-DP release, the
    whole workload costs ε *total*, regardless of its size — the
    histogram-vs-per-query-Laplace comparison is the classic accuracy
    argument for structured releases.

    Parameters
    ----------
    categories:
        Ordered histogram categories the queries are expressed over.
    queries:
        Matrix with one row per linear query, one column per category.
    """

    def __init__(self, categories: Sequence, queries) -> None:
        self.categories = tuple(categories)
        matrix = np.asarray(queries, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.categories):
            raise ValidationError(
                "queries must be a matrix with one column per category"
            )
        self.matrix = matrix

    @classmethod
    def all_range_queries(cls, categories: Sequence) -> "LinearQueryWorkload":
        """Every contiguous range [i, j] over ordered categories."""
        k = len(tuple(categories))
        rows = []
        for i in range(k):
            for j in range(i, k):
                row = np.zeros(k)
                row[i : j + 1] = 1.0
                rows.append(row)
        return cls(categories, np.stack(rows))

    @classmethod
    def prefix_queries(cls, categories: Sequence) -> "LinearQueryWorkload":
        """The k prefix sums (empirical CDF workload)."""
        k = len(tuple(categories))
        return cls(categories, np.tril(np.ones((k, k))))

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def true_answers(self, counts) -> np.ndarray:
        """Exact workload answers from exact counts."""
        return self.matrix @ np.asarray(counts, dtype=float)

    def answer(self, noisy_counts) -> np.ndarray:
        """Workload answers from the noisy histogram (free post-processing)."""
        return self.matrix @ np.asarray(noisy_counts, dtype=float)

    def per_query_noise_variance(self, noise_scale: float) -> np.ndarray:
        """Variance of each answer when per-bin noise is Lap(noise_scale).

        Var of one bin is ``2·scale²``; query w accumulates ``‖w‖₂²`` of it.
        """
        if noise_scale <= 0:
            raise ValidationError("noise_scale must be > 0")
        return 2.0 * noise_scale**2 * (self.matrix**2).sum(axis=1)

    def expected_l2_error_histogram(self, noise_scale: float) -> float:
        """RMS error of the workload answered via the noisy histogram."""
        return float(
            np.sqrt(self.per_query_noise_variance(noise_scale).mean())
        )

    def expected_l2_error_per_query_laplace(
        self, epsilon: float, sensitivity_per_query: float = 1.0
    ) -> float:
        """RMS error if each query were instead answered with its own
        Laplace mechanism under basic composition (budget ε / m each).

        The comparison point: for m queries this error grows like m, while
        the histogram route pays only the workload's column norms.

        Parameters
        ----------
        epsilon:
            Total budget split evenly over the m queries.
        sensitivity_per_query:
            Global sensitivity of each individual query.
        """
        epsilon = check_positive(epsilon, name="epsilon")
        m = len(self)
        per_query_scale = sensitivity_per_query * m / epsilon
        return float(np.sqrt(2.0) * per_query_scale)
