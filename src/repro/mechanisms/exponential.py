"""The exponential mechanism (McSherry & Talwar; Theorem 2.5 of the paper).

Given a quality function ``q(dataset, output)`` with global sensitivity
``Δq`` and a base measure π on a finite output range, the mechanism samples

    P(u | dataset)  ∝  π(u) · exp(scale · q(dataset, u)).

Two parametrizations are supported, matching the two conventions in the
literature:

* ``calibrated=True`` (default): ``scale = ε / (2Δq)`` → the mechanism is
  exactly ε-DP (the modern convention);
* ``calibrated=False``: ``scale = ε`` → the paper's raw form, which
  Theorem 2.5 shows is ``2·ε·Δq``-DP.

The Gibbs estimator of the paper is this mechanism with
``q = -R̂`` (negative empirical risk); see :mod:`repro.core.gibbs`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class ExponentialMechanism(Mechanism):
    """DP selection from a finite output range with exponential bias.

    Parameters
    ----------
    quality:
        ``quality(dataset, output) -> float``; higher is better.
    outputs:
        Finite candidate output range ``U``.
    sensitivity:
        Global sensitivity ``Δq`` of the quality function: the largest
        change of ``q(·, u)`` over neighbouring datasets, uniformly in u.
    epsilon:
        Privacy parameter.
    base_measure:
        Prior π on ``outputs`` (uniform when omitted).
    calibrated:
        See module docstring; chooses between the ε-DP and the paper's
        2εΔq-DP parametrization.
    """

    def __init__(
        self,
        quality: Callable,
        outputs: Sequence,
        sensitivity: float,
        epsilon: float,
        *,
        base_measure: DiscreteDistribution | None = None,
        calibrated: bool = True,
    ) -> None:
        self.quality = quality
        self.outputs = tuple(outputs)
        if not self.outputs:
            raise ValidationError("outputs must not be empty")
        epsilon = check_positive(epsilon, name="epsilon")
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.calibrated = bool(calibrated)
        if base_measure is None:
            base_measure = DiscreteDistribution.uniform(self.outputs)
        elif base_measure.support != self.outputs:
            raise ValidationError(
                "base_measure support must equal the output range (in order)"
            )
        self.base_measure = base_measure

        if self.calibrated:
            guarantee = float(epsilon)
            self.scale = float(epsilon) / (2.0 * self.sensitivity)
        else:
            # Paper's raw parametrization: bias exp(ε·q), guarantee 2εΔq.
            guarantee = 2.0 * float(epsilon) * self.sensitivity
            self.scale = float(epsilon)
        super().__init__(PrivacySpec(epsilon=guarantee))

    def quality_scores(self, dataset) -> np.ndarray:
        """Quality of every candidate output on ``dataset``.

        Scores must be finite: a ±inf or nan score would poison the
        exponential tilt (even the log-sum-exp normalization produces nan
        from ``exp(score - inf)``), so it is rejected here rather than
        surfacing as nan probabilities downstream.

        Parameters
        ----------
        dataset:
            The dataset to score every candidate against.
        """
        scores = np.asarray(
            [float(self.quality(dataset, u)) for u in self.outputs], dtype=float
        )
        if not np.isfinite(scores).all():
            # Deliberately data-free message: the offending scores are
            # functions of the raw dataset and must not reach logs.
            raise ValidationError(
                "quality scores must be finite; at least one candidate "
                "score is nan/inf — check the quality function for "
                "overflow or division by zero"
            )
        return scores

    def output_distribution(self, dataset) -> DiscreteDistribution:
        """The exact output law on ``dataset`` — an exponential tilt of π.

        Having the full distribution (not just samples) enables exact
        privacy audits and exact utility integrals on finite ranges.
        """
        scores = self.quality_scores(dataset)
        return self.base_measure.tilt(self.scale * scores)

    def release(self, dataset, random_state=None):
        """Sample one output from the exponential distribution."""
        rng = check_random_state(random_state)
        return self.output_distribution(dataset).sample(random_state=rng)

    def _release_many(self, dataset, n, rng):
        """Vectorized kernel: tilt once, sample the law ``n`` times.

        The output distribution depends only on ``dataset``, so the batch
        computes it once and draws a size-``n`` sample — stream-identical
        to ``n`` sequential :meth:`release` calls (one categorical draw
        each from the same generator).

        Parameters
        ----------
        dataset:
            The dataset to query.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        return self.output_distribution(dataset).sample(size=n, random_state=rng)

    def expected_quality(self, dataset) -> float:
        """Mean quality of the released output on ``dataset``."""
        scores = self.quality_scores(dataset)
        probs = self.output_distribution(dataset).probabilities
        return float(scores @ probs)

    def utility_bound(self, probability: float) -> float:
        """McSherry–Talwar utility: with prob ≥ 1-``probability`` the released
        output's quality is within ``(2Δq/ε)(ln|U| + ln(1/probability))`` of
        optimal (calibrated form; for the raw form replace 2Δq/ε by 1/ε)."""
        if not 0.0 < probability < 1.0:
            raise ValidationError("probability must lie strictly in (0, 1)")
        return (1.0 / self.scale) * (
            np.log(len(self.outputs)) + np.log(1.0 / probability)
        )
