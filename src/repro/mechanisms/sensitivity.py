"""Global-sensitivity calculus (Definition 2.2 of the paper).

``Δf = max_{D ~ D'} ‖f(D) - f(D')‖₁`` over neighbouring datasets. Exact
enumeration for small finite universes; a substitution-based empirical
maximizer for larger domains; and closed forms for the empirical risk
(the quantity Theorem 4.1 needs).
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import SensitivityError, ValidationError
from repro.utils.validation import check_positive, check_random_state


def _as_vector(value) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(value, dtype=float))
    if arr.ndim != 1:
        raise ValidationError("query outputs must be scalars or 1-D vectors")
    return arr


def global_sensitivity(
    query: Callable[[Sequence], object],
    universe: Sequence,
    n: int,
    *,
    ordered: bool = True,
) -> float:
    """Exact global L1 sensitivity of ``query`` on datasets of size ``n``.

    Enumerates every dataset ``D ∈ universe^n`` and every single-record
    substitution. Exponential in ``n`` — intended for the small, exactly
    checkable universes the experiments use. For ``ordered=False`` the
    neighbour relation treats datasets as multisets (enumeration over
    combinations-with-replacement), which is cheaper and matches
    exchangeable queries.

    Parameters
    ----------
    query:
        Function mapping a dataset (list of records) to a scalar or 1-D
        vector.
    universe:
        Record domain enumerated over.
    n:
        Dataset size.
    ordered:
        Whether datasets are ordered tuples (True) or multisets (False).
    """
    universe = list(universe)
    if not universe:
        raise ValidationError("universe must not be empty")
    if n < 1:
        raise ValidationError("n must be >= 1")

    iterator = (
        itertools.product(universe, repeat=n)
        if ordered
        else itertools.combinations_with_replacement(universe, n)
    )
    worst = 0.0
    for dataset in iterator:
        base = _as_vector(query(list(dataset)))
        for position in range(n):
            for replacement in universe:
                if replacement == dataset[position]:
                    continue
                neighbour = list(dataset)
                neighbour[position] = replacement
                gap = float(np.abs(base - _as_vector(query(neighbour))).sum())
                worst = max(worst, gap)
    if not np.isfinite(worst):
        raise SensitivityError("query sensitivity is not finite on this universe")
    return worst


def estimate_sensitivity(
    query: Callable[[Sequence], object],
    sample_datasets: Sequence[Sequence],
    universe: Sequence,
    *,
    substitutions_per_dataset: int = 32,
    random_state=None,
) -> float:
    """Lower-bound the global sensitivity by random record substitutions.

    Useful as a sanity check against a claimed closed form: the estimate can
    never exceed the true sensitivity, so ``estimate > claimed`` proves the
    claim wrong.

    Parameters
    ----------
    query:
        Function mapping a dataset to a scalar or 1-D vector.
    sample_datasets:
        Starting datasets the substitutions are applied to.
    universe:
        Record domain replacements are drawn from.
    substitutions_per_dataset:
        Random substitutions tried per starting dataset.
    random_state:
        Seed or Generator for the substitution draws.
    """
    universe = list(universe)
    rng = check_random_state(random_state)
    worst = 0.0
    for dataset in sample_datasets:
        dataset = list(dataset)
        if not dataset:
            raise ValidationError("datasets must be nonempty")
        base = _as_vector(query(dataset))
        for _ in range(substitutions_per_dataset):
            position = int(rng.integers(len(dataset)))
            replacement = universe[int(rng.integers(len(universe)))]
            neighbour = list(dataset)
            neighbour[position] = replacement
            gap = float(np.abs(base - _as_vector(query(neighbour))).sum())
            worst = max(worst, gap)
    return worst


def empirical_risk_sensitivity(loss_range: float, n: int) -> float:
    """Global sensitivity of the empirical risk ``R̂`` for a bounded loss.

    With loss values in an interval of width ``loss_range`` and ``n``
    samples, replacing one sample moves ``R̂ = (1/n) Σ l(θ, z_i)`` by at most
    ``loss_range / n`` — uniformly over θ. This is the ``Δ(R̂)`` entering
    Theorem 4.1's ``2 ε Δ(R̂)`` privacy guarantee for the Gibbs estimator.

    Parameters
    ----------
    loss_range:
        Width of the interval the loss takes values in.
    n:
        Sample size.
    """
    loss_range = check_positive(loss_range, name="loss_range")
    if n < 1:
        raise ValidationError("n must be >= 1")
    return loss_range / float(n)


def count_query_sensitivity() -> float:
    """Sensitivity of a counting query under record substitution (= 1)."""
    return 1.0


def mean_query_sensitivity(value_range: float, n: int) -> float:
    """Sensitivity of a bounded mean: ``value_range / n``.

    Parameters
    ----------
    value_range:
        Width of the interval each value lies in.
    n:
        Sample size.
    """
    value_range = check_positive(value_range, name="value_range")
    if n < 1:
        raise ValidationError("n must be >= 1")
    return value_range / float(n)
