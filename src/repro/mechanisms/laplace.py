"""The Laplace mechanism (Theorem 2.3 of the paper; Dwork et al. 2006).

Adds ``Lap(Δf / ε)`` noise to a real-valued query of global sensitivity
``Δf``, yielding ε-differential privacy.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.distributions.continuous import LaplaceNoise
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class LaplaceMechanism(Mechanism):
    """ε-DP release of a real-valued query via Laplace noise.

    Parameters
    ----------
    query:
        Function mapping a dataset to a float (or fixed-length vector; for a
        vector the sensitivity must bound the L1 displacement).
    sensitivity:
        Global L1 sensitivity ``Δf`` of ``query``.
    epsilon:
        Privacy parameter.
    """

    def __init__(
        self,
        query: Callable,
        sensitivity: float,
        epsilon: float,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.query = query
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.noise = LaplaceNoise(scale=self.sensitivity / self.epsilon)

    def release(self, dataset, random_state=None):
        """Return ``query(dataset) + Lap(Δf/ε)`` (elementwise for vectors)."""
        rng = check_random_state(random_state)
        true_value = np.asarray(self.query(dataset), dtype=float)
        noise = self.noise.sample(size=true_value.shape or None, random_state=rng)
        released = true_value + noise
        if released.shape == ():
            return float(released)
        return released

    def _release_many(self, dataset, n, rng):
        """Vectorized kernel: one ``(n, *shape)`` Laplace noise block.

        numpy fills blocks in C order, so the block consumes the generator
        stream exactly like ``n`` sequential :meth:`release` calls —
        outputs are bit-identical to the serial loop.

        Parameters
        ----------
        dataset:
            The dataset to query.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        true_value = np.asarray(self.query(dataset), dtype=float)
        noise = self.noise.sample(size=(n, *true_value.shape), random_state=rng)
        return true_value + noise

    def output_log_density(self, dataset, value) -> float:
        """Log-density of releasing ``value`` on ``dataset`` (scalar query).

        Exact likelihood ratios from this density power the analytic privacy
        audit of Experiment E8.
        """
        true_value = float(np.asarray(self.query(dataset), dtype=float))
        return float(self.noise.log_density(float(value) - true_value))

    def expected_absolute_error(self) -> float:
        """Mean absolute error ``E|noise| = Δf / ε`` of one release."""
        return self.noise.scale

    def error_quantile(self, probability: float) -> float:
        """Symmetric error bound: |error| ≤ this with the given probability."""
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must lie strictly in (0, 1)")
        # P(|X| <= t) = 1 - exp(-t/b)  =>  t = -b log(1 - probability)
        return -self.noise.scale * float(np.log(1.0 - probability))
