"""A simple privacy-budget accountant.

Tracks cumulative (ε, δ) spend under basic composition and refuses releases
that would exceed the configured budget — the bookkeeping a deployment of
the paper's Gibbs estimator would need when answering repeated learning
queries against one dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec


@dataclass
class LedgerEntry:
    """One recorded privacy expenditure."""

    label: str
    spec: PrivacySpec


@dataclass
class PrivacyAccountant:
    """Budgeted tracker of privacy expenditures (basic composition).

    Parameters
    ----------
    budget:
        Total (ε, δ) the data owner is willing to spend.
    """

    budget: PrivacySpec
    _ledger: list[LedgerEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not isinstance(self.budget, PrivacySpec):
            raise ValidationError("budget must be a PrivacySpec")

    @property
    def spent(self) -> PrivacySpec | None:
        """Total spend so far (None when nothing is recorded)."""
        if not self._ledger:
            return None
        total = self._ledger[0].spec
        for entry in self._ledger[1:]:
            total = total.compose(entry.spec)
        return total

    @property
    def remaining_epsilon(self) -> float:
        """Unspent ε under basic composition."""
        spent = self.spent
        return self.budget.epsilon - (spent.epsilon if spent else 0.0)

    @property
    def remaining_delta(self) -> float:
        """Unspent δ under basic composition."""
        spent = self.spent
        return self.budget.delta - (spent.delta if spent else 0.0)

    def can_afford(self, spec: PrivacySpec) -> bool:
        """Whether a further release with ``spec`` stays within budget."""
        tol = 1e-12
        return (
            spec.epsilon <= self.remaining_epsilon + tol
            and spec.delta <= self.remaining_delta + tol
        )

    def charge(self, spec: PrivacySpec, *, label: str = "release") -> None:
        """Record an expenditure, or raise :class:`PrivacyBudgetError`."""
        if not self.can_afford(spec):
            raise PrivacyBudgetError(
                f"cannot afford {spec}: remaining budget is "
                f"(ε={self.remaining_epsilon:.6g}, δ={self.remaining_delta:.3g})"
            )
        self._ledger.append(LedgerEntry(label=label, spec=spec))

    def run(self, mechanism: Mechanism, dataset, *, label: str | None = None,
            random_state=None):
        """Charge for and execute one mechanism release."""
        self.charge(
            mechanism.privacy, label=label or type(mechanism).__name__
        )
        return mechanism.release(dataset, random_state=random_state)

    def ledger(self) -> list[LedgerEntry]:
        """A copy of the recorded expenditures, in order."""
        return list(self._ledger)
