"""A simple privacy-budget accountant.

Tracks cumulative (ε, δ) spend under basic composition and refuses releases
that would exceed the configured budget — the bookkeeping a deployment of
the paper's Gibbs estimator would need when answering repeated learning
queries against one dataset.

The composed total is maintained *incrementally*: each ``charge`` folds the
new spec into a running :class:`PrivacySpec`, so reading ``spent`` (and
therefore ``can_afford``/``charge``) is O(1) per release instead of
re-folding the whole ledger — O(n²) over a run of n releases — as the
original implementation did. Every charge and every refusal also emits a
typed event on the active privacy ledger (:mod:`repro.observability`), so
an exported trace reconstructs the accountant's spend exactly.

The accountant is **thread-safe**: the affordability check and the ledger
mutation happen atomically under one internal lock, so concurrent callers
(the :mod:`repro.serving` front door charges from many client coroutines
and load-test threads) can never both pass ``can_afford`` and jointly
overshoot the budget — a textbook check-then-act race the serving layer's
concurrency tests hammer for explicitly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.observability import tracer as _trace
from repro.observability.events import (
    BudgetChargeEvent,
    BudgetRefundEvent,
    BudgetRefusalEvent,
)

#: Relative slack on budget comparisons, as a fraction of the budget
#: itself. A *flat* tolerance (the previous ``1e-12``) is wrong at both
#: ends of the scale: for tiny budgets it admits overshoot worth many
#: percent of the total ε, and it silently grows the budget of every
#: accountant by an absolute constant. Relative slack keeps the guarantee
#: ``total spend ≤ budget · (1 + 1e-12)`` no matter how many tiny charges
#: are composed, because the slack is only ever applied to the *remaining*
#: budget comparison, never accumulated per charge.
BUDGET_RTOL = 1e-12


@dataclass
class LedgerEntry:
    """One recorded privacy expenditure."""

    label: str
    spec: PrivacySpec


@dataclass
class PrivacyAccountant:
    """Budgeted tracker of privacy expenditures (basic composition).

    Parameters
    ----------
    budget:
        Total (ε, δ) the data owner is willing to spend.
    """

    budget: PrivacySpec
    _ledger: list[LedgerEntry] = field(default_factory=list)
    _spent: PrivacySpec | None = field(default=None, init=False, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.budget, PrivacySpec):
            raise ValidationError("budget must be a PrivacySpec")
        # A ledger handed to the constructor is folded once, here; from
        # then on the running total is maintained incrementally by charge.
        for entry in self._ledger:
            self._spent = (
                entry.spec if self._spent is None else self._spent.compose(entry.spec)
            )

    @property
    def spent(self) -> PrivacySpec | None:
        """Total spend so far (None when nothing is recorded)."""
        return self._spent

    @property
    def remaining_epsilon(self) -> float:
        """Unspent ε under basic composition."""
        spent = self._spent
        return self.budget.epsilon - (spent.epsilon if spent else 0.0)

    @property
    def remaining_delta(self) -> float:
        """Unspent δ under basic composition."""
        spent = self._spent
        return self.budget.delta - (spent.delta if spent else 0.0)

    def can_afford(self, spec: PrivacySpec) -> bool:
        """Whether a further release with ``spec`` stays within budget.

        This read is advisory under concurrency: another thread may charge
        between this check and yours. Use :meth:`charge` (or
        :meth:`try_charge`), whose check-and-record is atomic.
        """
        return (
            spec.epsilon <= self.remaining_epsilon + BUDGET_RTOL * self.budget.epsilon
            and spec.delta <= self.remaining_delta + BUDGET_RTOL * self.budget.delta
        )

    def try_charge(self, spec: PrivacySpec, *, label: str = "release") -> bool:
        """Atomically record an expenditure if affordable; report success.

        Unlike :meth:`charge`, an unaffordable spec returns ``False``
        *silently* — no exception, no refusal event. This is the primitive
        a sharded accountant needs to probe several shards for capacity:
        only the caller knows whether exhausting one shard is a refusal or
        just a reason to try the next.

        Parameters
        ----------
        spec:
            The (ε, δ) expenditure to attempt.
        label:
            Ledger label recorded with the expenditure.
        """
        if not isinstance(spec, PrivacySpec):
            raise ValidationError("spec must be a PrivacySpec")
        with self._lock:
            if not self.can_afford(spec):
                return False
            self._ledger.append(LedgerEntry(label=label, spec=spec))
            self._spent = spec if self._spent is None else self._spent.compose(spec)
        tracer = _trace.current()
        if tracer is not None:
            tracer.record(
                BudgetChargeEvent(
                    label=label,
                    epsilon=spec.epsilon,
                    delta=spec.delta,
                    remaining_epsilon=self.remaining_epsilon,
                    remaining_delta=self.remaining_delta,
                )
            )
            tracer.count("accountant.charges")
        return True

    def charge(self, spec: PrivacySpec, *, label: str = "release") -> None:
        """Record an expenditure, or raise :class:`PrivacyBudgetError`."""
        if not self.try_charge(spec, label=label):
            tracer = _trace.current()
            if tracer is not None:
                tracer.record(
                    BudgetRefusalEvent(
                        label=label,
                        epsilon=spec.epsilon,
                        delta=spec.delta,
                        remaining_epsilon=self.remaining_epsilon,
                        remaining_delta=self.remaining_delta,
                    )
                )
                tracer.count("accountant.refusals")
            raise PrivacyBudgetError(
                f"cannot afford {spec}: remaining budget is "
                f"(ε={self.remaining_epsilon:.6g}, δ={self.remaining_delta:.3g})"
            )

    def refund(self, spec: PrivacySpec, *, label: str = "release") -> None:
        """Hand back a previously-recorded charge (a rolled-back reservation).

        Removes the most recent ledger entry matching ``(label, spec)``
        and subtracts it from the running total. Refunds exist for
        reservation-style callers (the serving layer charges *before* a
        batch executes and rolls back when the batch provably released
        nothing); refunding a charge whose release actually happened would
        falsify the privacy accounting, so only ever call this for work
        that did not run. A refund with no matching charge raises
        :class:`~repro.exceptions.ValidationError`.

        Parameters
        ----------
        spec:
            The exact (ε, δ) of the charge being rolled back.
        label:
            The label the charge was recorded under.
        """
        if not isinstance(spec, PrivacySpec):
            raise ValidationError("spec must be a PrivacySpec")
        with self._lock:
            index = None
            for position in range(len(self._ledger) - 1, -1, -1):
                entry = self._ledger[position]
                if entry.label == label and entry.spec == spec:
                    index = position
                    break
            if index is None:
                raise ValidationError(
                    f"no recorded charge {spec} labelled {label!r} to refund"
                )
            del self._ledger[index]
            # Refold the (short) ledger rather than subtracting: refunds
            # are rare failure-path events, and refolding keeps the
            # running total exactly equal to the composition of the
            # entries that remain — no drift, no negative residue.
            spent = None
            for entry in self._ledger:
                spent = entry.spec if spent is None else spent.compose(entry.spec)
            self._spent = spent
        tracer = _trace.current()
        if tracer is not None:
            tracer.record(
                BudgetRefundEvent(
                    label=label,
                    epsilon=spec.epsilon,
                    delta=spec.delta,
                    remaining_epsilon=self.remaining_epsilon,
                    remaining_delta=self.remaining_delta,
                )
            )
            tracer.count("accountant.refunds")

    def run(self, mechanism: Mechanism, dataset, *, label: str | None = None,
            random_state=None):
        """Charge for and execute one mechanism release."""
        self.charge(
            mechanism.privacy, label=label or type(mechanism).__name__
        )
        return mechanism.release(dataset, random_state=random_state)

    def ledger(self) -> list[LedgerEntry]:
        """A copy of the recorded expenditures, in order."""
        with self._lock:
            return list(self._ledger)
