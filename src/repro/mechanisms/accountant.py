"""A simple privacy-budget accountant.

Tracks cumulative (ε, δ) spend under basic composition and refuses releases
that would exceed the configured budget — the bookkeeping a deployment of
the paper's Gibbs estimator would need when answering repeated learning
queries against one dataset.

The composed total is maintained *incrementally*: each ``charge`` folds the
new spec into a running :class:`PrivacySpec`, so reading ``spent`` (and
therefore ``can_afford``/``charge``) is O(1) per release instead of
re-folding the whole ledger — O(n²) over a run of n releases — as the
original implementation did. Every charge and every refusal also emits a
typed event on the active privacy ledger (:mod:`repro.observability`), so
an exported trace reconstructs the accountant's spend exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import PrivacyBudgetError, ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.observability import tracer as _trace
from repro.observability.events import BudgetChargeEvent, BudgetRefusalEvent

#: Relative slack on budget comparisons, as a fraction of the budget
#: itself. A *flat* tolerance (the previous ``1e-12``) is wrong at both
#: ends of the scale: for tiny budgets it admits overshoot worth many
#: percent of the total ε, and it silently grows the budget of every
#: accountant by an absolute constant. Relative slack keeps the guarantee
#: ``total spend ≤ budget · (1 + 1e-12)`` no matter how many tiny charges
#: are composed, because the slack is only ever applied to the *remaining*
#: budget comparison, never accumulated per charge.
BUDGET_RTOL = 1e-12


@dataclass
class LedgerEntry:
    """One recorded privacy expenditure."""

    label: str
    spec: PrivacySpec


@dataclass
class PrivacyAccountant:
    """Budgeted tracker of privacy expenditures (basic composition).

    Parameters
    ----------
    budget:
        Total (ε, δ) the data owner is willing to spend.
    """

    budget: PrivacySpec
    _ledger: list[LedgerEntry] = field(default_factory=list)
    _spent: PrivacySpec | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.budget, PrivacySpec):
            raise ValidationError("budget must be a PrivacySpec")
        # A ledger handed to the constructor is folded once, here; from
        # then on the running total is maintained incrementally by charge.
        for entry in self._ledger:
            self._spent = (
                entry.spec if self._spent is None else self._spent.compose(entry.spec)
            )

    @property
    def spent(self) -> PrivacySpec | None:
        """Total spend so far (None when nothing is recorded)."""
        return self._spent

    @property
    def remaining_epsilon(self) -> float:
        """Unspent ε under basic composition."""
        return self.budget.epsilon - (self._spent.epsilon if self._spent else 0.0)

    @property
    def remaining_delta(self) -> float:
        """Unspent δ under basic composition."""
        return self.budget.delta - (self._spent.delta if self._spent else 0.0)

    def can_afford(self, spec: PrivacySpec) -> bool:
        """Whether a further release with ``spec`` stays within budget."""
        return (
            spec.epsilon <= self.remaining_epsilon + BUDGET_RTOL * self.budget.epsilon
            and spec.delta <= self.remaining_delta + BUDGET_RTOL * self.budget.delta
        )

    def charge(self, spec: PrivacySpec, *, label: str = "release") -> None:
        """Record an expenditure, or raise :class:`PrivacyBudgetError`."""
        if not self.can_afford(spec):
            tracer = _trace.current()
            if tracer is not None:
                tracer.record(
                    BudgetRefusalEvent(
                        label=label,
                        epsilon=spec.epsilon,
                        delta=spec.delta,
                        remaining_epsilon=self.remaining_epsilon,
                        remaining_delta=self.remaining_delta,
                    )
                )
                tracer.count("accountant.refusals")
            raise PrivacyBudgetError(
                f"cannot afford {spec}: remaining budget is "
                f"(ε={self.remaining_epsilon:.6g}, δ={self.remaining_delta:.3g})"
            )
        self._ledger.append(LedgerEntry(label=label, spec=spec))
        self._spent = spec if self._spent is None else self._spent.compose(spec)
        tracer = _trace.current()
        if tracer is not None:
            tracer.record(
                BudgetChargeEvent(
                    label=label,
                    epsilon=spec.epsilon,
                    delta=spec.delta,
                    remaining_epsilon=self.remaining_epsilon,
                    remaining_delta=self.remaining_delta,
                )
            )
            tracer.count("accountant.charges")

    def run(self, mechanism: Mechanism, dataset, *, label: str | None = None,
            random_state=None):
        """Charge for and execute one mechanism release."""
        self.charge(
            mechanism.privacy, label=label or type(mechanism).__name__
        )
        return mechanism.release(dataset, random_state=random_state)

    def ledger(self) -> list[LedgerEntry]:
        """A copy of the recorded expenditures, in order."""
        return list(self._ledger)
