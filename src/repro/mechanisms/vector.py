"""Vector mechanism with Gamma-norm noise (Chaudhuri & Monteleoni).

Adds noise ``b`` with density ``∝ exp(-ε ‖b‖₂ / Δf)`` to a vector query of
L2 sensitivity ``Δf``, yielding ε-DP. This is the noise behind the private
ERM baselines (output perturbation) in :mod:`repro.private_learning`.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.distributions.continuous import GammaNormVector
from repro.exceptions import ValidationError
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class VectorLaplaceMechanism(Mechanism):
    """ε-DP release of a ``R^d``-valued query via spherical Gamma-norm noise.

    Parameters
    ----------
    query:
        Dataset → length-``dimension`` vector.
    dimension:
        Output dimension d.
    sensitivity:
        Global *L2* sensitivity of the query.
    epsilon:
        Privacy parameter.
    """

    def __init__(
        self,
        query: Callable,
        dimension: int,
        sensitivity: float,
        epsilon: float,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.query = query
        self.sensitivity = check_positive(sensitivity, name="sensitivity")
        self.noise = GammaNormVector(
            dimension=dimension, scale=self.sensitivity / self.epsilon
        )

    @property
    def dimension(self) -> int:
        """Dimension of the released vector."""
        return self.noise.dimension

    def release(self, dataset, random_state=None) -> np.ndarray:
        """Return ``query(dataset) + b`` with ``b ∝ exp(-ε‖b‖/Δf)``."""
        rng = check_random_state(random_state)
        true_value = np.asarray(self.query(dataset), dtype=float)
        if true_value.shape != (self.dimension,):
            raise ValidationError(
                f"query must return a vector of shape ({self.dimension},), "
                f"got {true_value.shape}"
            )
        return true_value + self.noise.sample(random_state=rng)

    def output_log_density(self, dataset, value) -> float:
        """Log-density of releasing ``value`` on ``dataset``."""
        true_value = np.asarray(self.query(dataset), dtype=float)
        return float(self.noise.log_density(np.asarray(value) - true_value))

    def expected_noise_norm(self) -> float:
        """``E‖b‖₂ = d · Δf / ε`` for the Gamma(d, Δf/ε) norm."""
        return self.dimension * self.noise.scale
