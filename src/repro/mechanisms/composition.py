"""Composition theorems for differential privacy.

Sequential (basic) composition adds parameters; parallel composition over
disjoint data takes the maximum; the advanced composition theorem (Dwork,
Rothblum, Vadhan) trades a small δ for a ~√k growth in ε over k releases.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.mechanisms.base import PrivacySpec
from repro.utils.validation import check_in_range, check_positive


def _specs(specs: Sequence[PrivacySpec]) -> list[PrivacySpec]:
    specs = list(specs)
    if not specs:
        raise ValidationError("need at least one PrivacySpec")
    for spec in specs:
        if not isinstance(spec, PrivacySpec):
            raise ValidationError("all entries must be PrivacySpec instances")
    return specs


def sequential_composition(specs: Sequence[PrivacySpec]) -> PrivacySpec:
    """Basic composition: run all mechanisms on the *same* data.

    ``(Σ εᵢ, Σ δᵢ)``-DP overall.
    """
    specs = _specs(specs)
    return PrivacySpec(
        epsilon=sum(s.epsilon for s in specs),
        delta=min(sum(s.delta for s in specs), 1.0),
    )


def parallel_composition(specs: Sequence[PrivacySpec]) -> PrivacySpec:
    """Parallel composition: mechanisms run on *disjoint* data partitions.

    ``(max εᵢ, max δᵢ)``-DP overall, since any individual record lives in
    exactly one partition.
    """
    specs = _specs(specs)
    return PrivacySpec(
        epsilon=max(s.epsilon for s in specs),
        delta=max(s.delta for s in specs),
    )


def advanced_composition(
    epsilon: float, delta: float, k: int, delta_prime: float
) -> PrivacySpec:
    """Advanced composition of ``k`` runs of one (ε, δ)-DP mechanism.

    The composite is ``(ε', kδ + δ')``-DP with

        ε' = ε·sqrt(2k ln(1/δ')) + k·ε·(e^ε - 1).

    Sublinear in k for small ε — the reason iterative private learning is
    feasible at all.

    Parameters
    ----------
    epsilon, delta:
        Per-mechanism guarantee.
    k:
        Number of sequential runs.
    delta_prime:
        Slack δ' spent to buy the sqrt(k) epsilon dependence.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    epsilon = check_positive(epsilon, name="epsilon")
    delta = check_in_range(delta, name="delta", low=0.0, high=1.0)
    delta_prime = check_in_range(
        delta_prime, name="delta_prime", low=0.0, high=1.0, inclusive=False
    )
    epsilon_total = epsilon * float(
        np.sqrt(2.0 * k * np.log(1.0 / delta_prime))
    ) + k * epsilon * (np.exp(epsilon) - 1.0)
    return PrivacySpec(
        epsilon=float(epsilon_total),
        delta=min(k * delta + delta_prime, 1.0),
    )


def best_composition(
    epsilon: float, delta: float, k: int, delta_prime: float
) -> PrivacySpec:
    """The tighter of basic and advanced composition for ``k`` repeats.

    Basic composition wins for small k or large ε; advanced wins in the
    many-query small-ε regime — the crossover is itself a useful artefact
    and is exercised in the composition tests.

    Parameters
    ----------
    epsilon, delta:
        Per-mechanism guarantee.
    k:
        Number of sequential runs.
    delta_prime:
        Slack δ' offered to the advanced-composition candidate.
    """
    basic = sequential_composition([PrivacySpec(epsilon, delta)] * k)
    advanced = advanced_composition(epsilon, delta, k, delta_prime)
    if basic.epsilon <= advanced.epsilon:
        return basic
    return advanced
