"""Randomized response — the oldest DP mechanism (Warner 1965).

Each respondent reports their true binary value with probability
``e^ε / (1 + e^ε)`` and flips it otherwise; this is exactly ε-DP *per
record* and the aggregate proportion admits an unbiased debiased estimator.
Included both as a mechanism and as the simplest exactly-auditable channel:
its 2×2 output law saturates the DP inequality, so the exact auditor must
measure ε with equality (Experiment E8's sharpness check).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.information.channel import DiscreteChannel
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_random_state


class RandomizedResponse(Mechanism):
    """Per-record ε-DP randomization of binary values.

    Parameters
    ----------
    epsilon:
        Privacy parameter; truth probability is ``e^ε / (1 + e^ε)``.
    """

    def __init__(self, epsilon: float) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        # Stable sigmoid: exp(ε)/(1+exp(ε)) overflows to nan past ε ≈ 709.
        self.truth_probability = float(1.0 / (1.0 + np.exp(-epsilon)))

    def randomize_bit(self, bit: int, random_state=None) -> int:
        """Randomize one binary value."""
        if bit not in (0, 1):
            raise ValidationError("bits must be 0 or 1")
        rng = check_random_state(random_state)
        if rng.uniform() < self.truth_probability:
            return int(bit)
        return 1 - int(bit)

    def release(self, dataset, random_state=None) -> np.ndarray:
        """Randomize every bit of a binary dataset independently."""
        rng = check_random_state(random_state)
        bits = np.asarray(dataset, dtype=int)
        if not np.isin(bits, (0, 1)).all():
            raise ValidationError("dataset must contain only 0/1 values")
        keep = rng.uniform(size=bits.shape) < self.truth_probability
        return np.where(keep, bits, 1 - bits)

    def _release_many(self, dataset, n, rng):
        """Vectorized kernel: one ``(n, *bits.shape)`` uniform block.

        C-order filling makes the block consume the generator stream
        exactly like ``n`` sequential :meth:`release` calls, so outputs
        are bit-identical to the serial loop.

        Parameters
        ----------
        dataset:
            Binary dataset to randomize, as :meth:`release` expects it.
        n:
            Number of releases (≥ 1).
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        bits = np.asarray(dataset, dtype=int)
        if not np.isin(bits, (0, 1)).all():
            raise ValidationError("dataset must contain only 0/1 values")
        keep = rng.uniform(size=(n, *bits.shape)) < self.truth_probability
        return np.where(keep, bits, 1 - bits)

    def estimate_proportion(self, randomized_bits) -> float:
        """Debiased estimate of the true proportion of ones.

        If p is the truth probability and ȳ the observed mean, the unbiased
        estimate is ``(ȳ - (1 - p)) / (2p - 1)``, clipped to [0, 1].
        """
        observed = float(np.asarray(randomized_bits, dtype=float).mean())
        p = self.truth_probability
        raw = (observed - (1.0 - p)) / (2.0 * p - 1.0)
        return float(np.clip(raw, 0.0, 1.0))

    def estimator_variance(self, n: int) -> float:
        """Worst-case variance of the debiased estimator over n records."""
        if n < 1:
            raise ValidationError("n must be >= 1")
        p = self.truth_probability
        # Var(ȳ) ≤ 1/(4n); scale by the debiasing factor squared.
        return 1.0 / (4.0 * n * (2.0 * p - 1.0) ** 2)

    def as_channel(self) -> DiscreteChannel:
        """The per-record 2×2 channel — a maximally sharp ε-DP channel."""
        p = self.truth_probability
        return DiscreteChannel(
            input_alphabet=(0, 1),
            output_alphabet=(0, 1),
            matrix=[[p, 1.0 - p], [1.0 - p, p]],
        )
