"""Locally-private estimators, minimax-rate predictions, and DPI checks.

The statistical side of the DJW story: given n clients who each
privatize their own record, how much worse are the classical estimators,
and why? Three ingredients:

* estimators — :func:`locally_private_mean` (average the unbiased
  mechanism outputs), :func:`central_private_mean` (the trusted-curator
  baseline: one Gamma-norm perturbation of the sample mean), and
  :func:`locally_private_median` (one-pass stochastic subgradient
  descent on the absolute loss with 1-bit privatized gradient signs);
* rate predictions — :func:`local_minimax_rate` /
  :func:`central_private_rate` / :func:`nonprivate_rate` give the
  order-level mean-squared-error scalings whose *ratios* Experiment E18
  measures (local pays ``d/ε²`` over non-private; central only
  ``d²/(nε²)`` extra, which vanishes at fixed ε as n grows);
* the information-theoretic cause — :func:`dpi_report` numerically
  verifies DJW Theorem 1 on a discrete local channel: KL divergence
  between any two privatized input laws contracts, and is bounded by
  ``4(e^ε-1)²·TV²`` of the raw laws, which is exactly why no estimator
  can beat the local rates.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.information.divergences import kl_divergence, total_variation
from repro.local_privacy.mechanisms import LInfSamplingMechanism
from repro.mechanisms.vector import VectorLaplaceMechanism
from repro.privacy.local import LocalMechanism
from repro.utils.validation import (
    check_positive,
    check_probability_vector,
    check_random_state,
)


def locally_private_mean(records, mechanism, random_state=None) -> np.ndarray:
    """Mean estimate from per-record privatized reports.

    Every record passes once through the local mechanism (so the
    estimate is ε-LDP per record by construction); the unbiased reports
    are averaged. With the DJW sampling mechanisms the MSE is
    ``≍ d/(nε²)`` — compare :func:`central_private_mean`.

    Parameters
    ----------
    records:
        ``(n, d)`` array of client records in the mechanism's domain.
    mechanism:
        A :class:`~repro.privacy.local.LocalMechanism` whose outputs are
        unbiased vector estimates of its inputs.
    random_state:
        Seed or :class:`numpy.random.Generator` for the batch.
    """
    if not isinstance(mechanism, LocalMechanism):
        raise ValidationError("mechanism must be a LocalMechanism")
    reports = mechanism.privatize_many(records, random_state=random_state)
    return np.asarray(reports, dtype=float).mean(axis=0)


def central_private_mean(records, epsilon: float, random_state=None) -> np.ndarray:
    """Trusted-curator mean: one Gamma-norm perturbation of the average.

    The sample mean of n records with ‖x‖₂ ≤ 1 has L2 sensitivity
    ``2/n`` under substitution, so a single
    :class:`~repro.mechanisms.vector.VectorLaplaceMechanism` release is
    ε-DP with MSE ``≍ d²/(n²ε²) + (sampling variance)`` — the baseline
    the local model degrades from.

    Parameters
    ----------
    records:
        ``(n, d)`` array of records with ‖x‖₂ ≤ 1.
    epsilon:
        Central privacy parameter for the single release.
    random_state:
        Seed or :class:`numpy.random.Generator` for the noise draw.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    arr = np.asarray(records, dtype=float)
    if arr.ndim != 2 or arr.shape[0] < 1:
        raise ValidationError("records must be a non-empty (n, d) array")
    norms = np.sqrt((arr * arr).sum(axis=1))
    if np.any(norms > 1.0 + 1e-9):
        raise ValidationError("central_private_mean requires ‖x‖₂ ≤ 1")
    n, d = arr.shape
    mechanism = VectorLaplaceMechanism(
        lambda data: np.asarray(data, dtype=float).mean(axis=0),
        d,
        2.0 / n,
        epsilon,
    )
    return mechanism.release(arr, random_state=random_state)


def locally_private_median(
    records,
    epsilon: float,
    *,
    lower: float = -1.0,
    upper: float = 1.0,
    random_state=None,
) -> float:
    """One-pass locally-private median via privatized subgradient signs.

    DJW's median protocol: stochastic subgradient descent on the
    absolute loss ``E|θ - X|`` where each client reports only the *sign*
    of their subgradient ``sign(θ_t - x_t)``, privatized by the one-bit
    sampling mechanism (``LInfSamplingMechanism(dimension=1)``, i.e.
    binary randomized response rescaled to stay unbiased). Step sizes
    ``∝ 1/√t`` with iterate averaging give the optimal
    ``O(1/√(n·min(1, ε²)))`` excess-risk rate.

    Parameters
    ----------
    records:
        One-dimensional array of client values inside
        ``[lower, upper]``.
    epsilon:
        Per-record local privacy parameter.
    lower:
        Left end of the (public, data-independent) value range.
    upper:
        Right end of the value range; must exceed ``lower``.
    random_state:
        Seed or :class:`numpy.random.Generator` for the privatization.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    values = np.asarray(records, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValidationError("records must be a non-empty 1-d array")
    if not np.isfinite(values).all():
        raise ValidationError("records must be finite")
    if not (np.isfinite(lower) and np.isfinite(upper) and upper > lower):
        raise ValidationError("need finite bounds with upper > lower")
    if np.any(values < lower) or np.any(values > upper):
        raise ValidationError("records must lie inside [lower, upper]")
    rng = check_random_state(random_state)
    center = (upper + lower) / 2.0
    halfwidth = (upper - lower) / 2.0
    scaled = (values - center) / halfwidth
    mechanism = LInfSamplingMechanism(1, epsilon)
    # Gradients are ±1 and privatized reports ±B; the classic projected
    # SGD step scale for a radius-1 domain is 1/(B·√t).
    step_scale = 1.0 / mechanism.scale
    theta = 0.0
    average = 0.0
    for t, value in enumerate(scaled, start=1):
        gradient = 1.0 if theta >= value else -1.0
        report = mechanism.privatize(
            np.array([gradient]), random_state=rng
        )
        theta -= step_scale / np.sqrt(t) * float(report[0])
        theta = float(np.clip(theta, -1.0, 1.0))
        average += (theta - average) / t
    return center + halfwidth * average


def nonprivate_rate(dimension: int, n: int) -> float:
    """Order-level MSE of the sample mean for records with ‖x‖₂ ≤ 1.

    ``E‖x̄ - μ‖² ≤ 1/n`` since the per-record variance is bounded by the
    second moment ``E‖x‖² ≤ 1`` (the dimension appears only through the
    norm constraint).

    Parameters
    ----------
    dimension:
        Ambient dimension d (unused beyond validation — the ℓ2 ball's
        total variance is dimension-free).
    n:
        Sample size.
    """
    _check_rate_args(dimension, n)
    return 1.0 / n


def central_private_rate(dimension: int, n: int, epsilon: float) -> float:
    """Order-level MSE of the trusted-curator private mean.

    Sampling variance plus the Gamma-norm noise of a sensitivity-``2/n``
    release: ``1/n + 4d²/(n²ε²)``. At fixed ε the privacy term decays
    quadratically in n — central DP is asymptotically free.

    Parameters
    ----------
    dimension:
        Ambient dimension d.
    n:
        Sample size.
    epsilon:
        Central privacy parameter.
    """
    _check_rate_args(dimension, n)
    epsilon = check_positive(epsilon, name="epsilon")
    return 1.0 / n + 4.0 * dimension**2 / (n**2 * epsilon**2)


def local_minimax_rate(dimension: int, n: int, epsilon: float) -> float:
    """DJW order-level minimax MSE for locally-private ℓ2 mean estimation.

    ``min(1, d/(n·min(ε, ε²)))`` — the privacy penalty multiplies the
    *statistical* rate by ``d/ε²`` (small ε) instead of adding a
    lower-order term: locality costs a dimension-dependent constant
    factor forever, which is the rate gap Experiment E18 exhibits.

    Parameters
    ----------
    dimension:
        Ambient dimension d.
    n:
        Sample size.
    epsilon:
        Per-record local privacy parameter.
    """
    _check_rate_args(dimension, n)
    epsilon = check_positive(epsilon, name="epsilon")
    return min(1.0, dimension / (n * min(epsilon, epsilon**2)))


def _check_rate_args(dimension: int, n: int) -> None:
    if int(dimension) < 1 or int(n) < 1:
        raise ValidationError("dimension and n must be >= 1")


def dpi_report(
    channel_matrix, p, q, epsilon: float, *, tolerance: float = 1e-9
) -> dict:
    """Numerically verify DJW Theorem 1 through a discrete local channel.

    For an ε-LDP channel K and any two input laws P, Q the theorem
    bounds the symmetrized output divergence:

    ``KL(PK ‖ QK) + KL(QK ‖ PK) ≤ 4(e^ε - 1)² · TV(P, Q)²``

    and the ordinary data-processing inequality gives contraction,
    ``KL(PK ‖ QK) ≤ KL(P ‖ Q)`` and ``TV(PK, QK) ≤ TV(P, Q)``. This
    helper computes every side numerically so experiments can assert the
    inequalities configuration by configuration.

    Parameters
    ----------
    channel_matrix:
        Row-stochastic ``(k, m)`` matrix of the local channel, e.g.
        ``KRandomizedResponse.channel_matrix()``.
    p:
        First input distribution over the k channel inputs.
    q:
        Second input distribution over the k channel inputs.
    epsilon:
        The channel's claimed per-record guarantee (drives the bound).
    tolerance:
        Additive slack for the boolean verdicts.

    Returns
    -------
    dict
        Input/output KL and TV values, the DJW bound, and the boolean
        verdicts ``kl_contracts``, ``tv_contracts``, ``bound_holds``.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    matrix = np.asarray(channel_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("channel_matrix must be 2-dimensional")
    for row in matrix:
        check_probability_vector(row, name="channel row")
    p = check_probability_vector(p, name="p")
    q = check_probability_vector(q, name="q")
    if p.shape[0] != matrix.shape[0] or q.shape[0] != matrix.shape[0]:
        raise ValidationError(
            "input distributions must match the channel's input count"
        )
    output_p = p @ matrix
    output_q = q @ matrix
    input_kl = kl_divergence(p, q)
    output_kl = kl_divergence(output_p, output_q)
    input_tv = total_variation(p, q)
    output_tv = total_variation(output_p, output_q)
    symmetrized = output_kl + kl_divergence(output_q, output_p)
    bound = 4.0 * (np.expm1(epsilon)) ** 2 * input_tv**2
    return {
        "input_kl": float(input_kl),
        "output_kl": float(output_kl),
        "input_tv": float(input_tv),
        "output_tv": float(output_tv),
        "symmetrized_output_kl": float(symmetrized),
        "djw_bound": float(bound),
        "kl_contracts": bool(output_kl <= input_kl + tolerance),
        "tv_contracts": bool(output_tv <= input_tv + tolerance),
        "bound_holds": bool(symmetrized <= bound + tolerance),
    }
