"""Duchi–Jordan–Wainwright sampling mechanisms for continuous records.

The minimax-optimal local randomizers for mean estimation privatize a
bounded vector by (1) randomized-rounding it to the boundary of its norm
ball, (2) drawing a uniform point of that boundary, and (3) keeping the
point on the same side as the rounded record with probability
``e^ε/(e^ε+1)``, flipping it otherwise. Rescaling by the closed-form
constant ``B = (e^ε+1)/((e^ε-1)·κ_d)`` makes the output an unbiased,
exactly ε-LDP estimate of the record whose second moment ``B²`` matches
the DJW lower-bound scaling ``d/ε²`` — the source of the minimax-rate
degradation Experiment E18 measures.

* :class:`L2SamplingMechanism` — records in the unit ℓ2 ball; outputs a
  scaled uniform halfsphere point (DJW 2013, §4.2.2).
* :class:`LInfSamplingMechanism` — records in the unit ℓ∞ ball; outputs
  a scaled hypercube corner, with boundary ties broken by a fair coin so
  the guarantee is exactly ε for every dimension.

Both consume the generator in fixed-width uniform blocks per record
(normals come from the inverse CDF), so :meth:`privatize_many` draws one
``uniform(size=(n, width))`` block and stays bit-identical to the
sequential per-record loop.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import ndtri

from repro.exceptions import ValidationError
from repro.mechanisms.base import PrivacySpec
from repro.privacy.local import LocalMechanism
from repro.utils.validation import check_positive, check_random_state

#: Tolerance on the norm constraint, matching the ERM classifiers.
_NORM_TOLERANCE = 1e-9


def sphere_unbiasing_constant(dimension: int) -> float:
    """``κ_d = E|⟨u, v⟩|`` for ``u`` uniform on the unit sphere.

    The mean absolute projection of a uniform sphere point onto any unit
    vector: ``2Γ(d/2) / ((d-1)√π·Γ((d-1)/2))`` for d ≥ 2 and 1 for
    d = 1. Dividing the keep-probability margin by κ_d is what makes the
    ℓ2 sampling mechanism unbiased.

    Parameters
    ----------
    dimension:
        Ambient dimension d ≥ 1.
    """
    d = _check_dimension(dimension)
    if d == 1:
        return 1.0
    log_kappa = (
        math.log(2.0 / (d - 1))
        + math.lgamma(d / 2.0)
        - math.lgamma((d - 1) / 2.0)
        - 0.5 * math.log(math.pi)
    )
    return float(math.exp(log_kappa))


def hypercube_unbiasing_constant(dimension: int) -> float:
    """``κ_d = E|Σᵢ rᵢ|/d`` for independent Rademacher signs ``rᵢ``.

    Equals ``2^{1-d}·C(d-1, ⌊(d-1)/2⌋)`` — the mean absolute coordinate
    alignment between a uniform hypercube corner and any fixed corner.
    Dividing by κ_d unbiases the ℓ∞ sampling mechanism.

    Parameters
    ----------
    dimension:
        Ambient dimension d ≥ 1.
    """
    d = _check_dimension(dimension)
    m = (d - 1) // 2
    log_comb = (
        math.lgamma(d) - math.lgamma(m + 1) - math.lgamma(d - m)
    )
    return float(math.exp(log_comb - (d - 1) * math.log(2.0)))


def _check_dimension(dimension) -> int:
    if not isinstance(dimension, (int, np.integer)) or isinstance(dimension, bool):
        raise ValidationError(f"dimension must be an integer, got {dimension!r}")
    dimension = int(dimension)
    if dimension < 1:
        raise ValidationError(f"dimension must be >= 1, got {dimension}")
    return dimension


class _SamplingMechanism(LocalMechanism):
    """Shared geometry-independent pieces of the two DJW randomizers."""

    #: Uniform doubles consumed per record, set by each subclass.
    _draw_width: int = 0

    def __init__(self, dimension: int, epsilon: float, kappa: float) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        self.dimension = _check_dimension(dimension)
        # e^ε/(e^ε+1) via the stable sigmoid.
        self.keep_probability = float(1.0 / (1.0 + np.exp(-epsilon)))
        self.unbiasing_constant = float(kappa)
        # B = (e^ε+1)/((e^ε-1)·κ_d) = 1/(tanh(ε/2)·κ_d).
        self.scale = float(1.0 / (np.tanh(epsilon / 2.0) * kappa))

    def _check_vector(self, record) -> np.ndarray:
        """Validate one record against the mechanism's domain.

        Parameters
        ----------
        record:
            Candidate record; must be a finite length-d vector inside
            the mechanism's norm ball.
        """
        arr = np.asarray(record, dtype=float)
        if arr.shape != (self.dimension,):
            raise ValidationError(
                f"record must have shape ({self.dimension},), got {arr.shape}"
            )
        if not np.isfinite(arr).all():
            raise ValidationError("record must be finite")
        self._check_norm(arr[None, :])
        return arr

    def _check_matrix(self, records) -> np.ndarray:
        """Validate a batch of records as an ``(n, d)`` float matrix.

        Parameters
        ----------
        records:
            Batch of candidate records.
        """
        arr = np.asarray(records, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != self.dimension:
            raise ValidationError(
                f"records must have shape (n, {self.dimension}), got {arr.shape}"
            )
        if not np.isfinite(arr).all():
            raise ValidationError("records must be finite")
        self._check_norm(arr)
        return arr

    def _check_norm(self, matrix: np.ndarray) -> None:
        """Subclass hook: reject rows outside the mechanism's norm ball.

        Parameters
        ----------
        matrix:
            Already-validated ``(n, d)`` float matrix.
        """
        raise NotImplementedError

    def per_record_second_moment(self) -> float:
        """``E‖Z‖²`` of one privatized record (subclass closed form)."""
        raise NotImplementedError

    def predicted_mean_squared_error(self, n: int) -> float:
        """Worst-case MSE ``E‖Z̄ - μ‖²`` of the mean of n reports.

        The output is unbiased, so the error is pure variance:
        ``(E‖Z‖² - ‖x‖²)/n ≤ E‖Z‖²/n`` per record — the quantity whose
        ``d/(nε²)`` scaling is the DJW minimax rate.

        Parameters
        ----------
        n:
            Number of privatized records averaged.
        """
        if n < 1:
            raise ValidationError("n must be >= 1")
        return self.per_record_second_moment() / float(n)

    def privatize(self, record, random_state=None) -> np.ndarray:
        """Privatize one vector with one ``uniform(size=width)`` block.

        Parameters
        ----------
        record:
            Length-d vector inside the mechanism's norm ball.
        random_state:
            Seed or :class:`numpy.random.Generator` for the draw.
        """
        arr = self._check_vector(record)
        rng = check_random_state(random_state)
        u = rng.uniform(size=self._draw_width)
        return self._kernel(arr[None, :], u[None, :])[0]

    def _privatize_many(self, records, rng) -> np.ndarray:
        """Vectorized kernel: one ``uniform(size=(n, width))`` block.

        Parameters
        ----------
        records:
            Validated list of records.
        rng:
            A ready :class:`numpy.random.Generator`.
        """
        matrix = self._check_matrix(records)
        u = rng.uniform(size=(matrix.shape[0], self._draw_width))
        return self._kernel(matrix, u)

    def _check_records(self, records):
        """Materialize the batch as a validated matrix (overrides base).

        Parameters
        ----------
        records:
            Candidate batch of records.
        """
        matrix = self._check_matrix(records)
        if matrix.shape[0] == 0:
            raise ValidationError("records must not be empty")
        return matrix

    def _kernel(self, matrix: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Subclass hook: map records + uniforms to privatized outputs.

        Parameters
        ----------
        matrix:
            Validated ``(n, d)`` records.
        u:
            ``(n, width)`` uniform draws, one row per record.
        """
        raise NotImplementedError


class L2SamplingMechanism(_SamplingMechanism):
    """ε-LDP unbiased release of a vector in the unit ℓ2 ball (DJW).

    The record is randomized-rounded to the unit sphere (``v = ±x/‖x‖``
    with the sign biased so ``E[v] = x``), a uniform sphere point is
    drawn, and with probability ``e^ε/(e^ε+1)`` the point is reflected
    onto the halfsphere containing ``v`` (otherwise onto the opposite
    one). The output is the point scaled by ``B = 1/(tanh(ε/2)·κ_d)``:
    exactly ε-LDP (the output density ratio between any two records is
    ``e^ε``), unbiased, with ``‖Z‖ ≡ B ≍ √d/ε`` — hence mean-estimation
    MSE ``≍ d/(nε²)``, the minimax-optimal local rate.

    Parameters
    ----------
    dimension:
        Ambient dimension d of the records.
    epsilon:
        Per-record local privacy parameter.
    """

    def __init__(self, dimension: int, epsilon: float) -> None:
        epsilon = check_positive(epsilon, name="epsilon")
        super().__init__(
            dimension, epsilon, sphere_unbiasing_constant(dimension)
        )
        # Per record: d inverse-CDF normals (direction), one rounding
        # coin, one side coin.
        self._draw_width = self.dimension + 2

    def _check_norm(self, matrix: np.ndarray) -> None:
        """Reject rows with ℓ2 norm above 1 (+ tolerance).

        Parameters
        ----------
        matrix:
            Already-validated ``(n, d)`` float matrix.
        """
        norms = np.sqrt((matrix * matrix).sum(axis=1))
        if np.any(norms > 1.0 + _NORM_TOLERANCE):
            raise ValidationError(
                "L2SamplingMechanism requires records with ‖x‖₂ ≤ 1"
            )

    def per_record_second_moment(self) -> float:
        """``E‖Z‖² = B²`` — every output lies on the radius-B sphere."""
        return self.scale**2

    def _kernel(self, matrix: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Shared scalar/batch kernel (identical elementwise arithmetic).

        Parameters
        ----------
        matrix:
            Validated ``(n, d)`` records.
        u:
            ``(n, d+2)`` uniform draws, one row per record.
        """
        d = self.dimension
        gauss = ndtri(u[:, :d])
        gauss_norms = np.sqrt((gauss * gauss).sum(axis=1))
        # A zero normal vector has probability zero; fall back to e₁.
        degenerate = gauss_norms == 0.0
        if np.any(degenerate):
            gauss[degenerate, 0] = 1.0
            gauss_norms[degenerate] = 1.0
        direction = gauss / gauss_norms[:, None]
        record_norms = np.sqrt((matrix * matrix).sum(axis=1))
        # Randomized rounding to the sphere: v = ±x/‖x‖ with
        # P(+) = (1+‖x‖)/2, so E[v] = x; the origin rounds to ±e₁.
        round_sign = np.where(
            u[:, d] < (1.0 + record_norms) / 2.0, 1.0, -1.0
        )
        safe_norms = np.where(record_norms == 0.0, 1.0, record_norms)
        rounded = matrix / safe_norms[:, None]
        zero_rows = record_norms == 0.0
        if np.any(zero_rows):
            rounded = rounded.copy()
            rounded[zero_rows] = 0.0
            rounded[zero_rows, 0] = 1.0
        rounded = rounded * round_sign[:, None]
        # Side of the drawn direction relative to v, and the desired side.
        alignment = (direction * rounded).sum(axis=1)
        side = np.where(alignment >= 0.0, 1.0, -1.0)
        desired = np.where(u[:, d + 1] < self.keep_probability, 1.0, -1.0)
        return self.scale * direction * (side * desired)[:, None]


class LInfSamplingMechanism(_SamplingMechanism):
    """ε-LDP unbiased release of a vector in the unit ℓ∞ ball (DJW).

    Each coordinate is randomized-rounded to ``±1`` (``P(+1) =
    (1+xⱼ)/2``), a uniform hypercube corner is drawn, its side relative
    to the rounded corner is its sign agreement (boundary ties broken by
    an independent fair coin, which keeps the guarantee exactly ε in
    even dimensions), and the corner is reflected onto the side chosen
    with probability ``e^ε/(e^ε+1)``. Scaling by
    ``B = 1/(tanh(ε/2)·κ_d)`` unbiases the output; ``‖Z‖₂ = B√d`` gives
    the ℓ∞-ball minimax scaling ``d²/(nε²)`` for the mean's squared ℓ2
    error.

    Parameters
    ----------
    dimension:
        Ambient dimension d of the records.
    epsilon:
        Per-record local privacy parameter.
    """

    def __init__(self, dimension: int, epsilon: float) -> None:
        epsilon = check_positive(epsilon, name="epsilon")
        super().__init__(
            dimension, epsilon, hypercube_unbiasing_constant(dimension)
        )
        # Per record: d rounding coins, d corner coins, one side coin,
        # one tie-breaking coin.
        self._draw_width = 2 * self.dimension + 2

    def _check_norm(self, matrix: np.ndarray) -> None:
        """Reject rows with ℓ∞ norm above 1 (+ tolerance).

        Parameters
        ----------
        matrix:
            Already-validated ``(n, d)`` float matrix.
        """
        if np.any(np.abs(matrix) > 1.0 + _NORM_TOLERANCE):
            raise ValidationError(
                "LInfSamplingMechanism requires records with ‖x‖∞ ≤ 1"
            )

    def per_record_second_moment(self) -> float:
        """``E‖Z‖² = B²·d`` — outputs are scaled hypercube corners."""
        return self.scale**2 * self.dimension

    def _kernel(self, matrix: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Shared scalar/batch kernel (identical elementwise arithmetic).

        Parameters
        ----------
        matrix:
            Validated ``(n, d)`` records.
        u:
            ``(n, 2d+2)`` uniform draws, one row per record.
        """
        d = self.dimension
        # Coordinatewise randomized rounding: E[v] = x.
        rounded = np.where(u[:, :d] < (1.0 + matrix) / 2.0, 1.0, -1.0)
        corner = np.where(u[:, d : 2 * d] < 0.5, 1.0, -1.0)
        agreement = (corner * rounded).sum(axis=1)
        tie = np.where(u[:, 2 * d + 1] < 0.5, 1.0, -1.0)
        side = np.where(agreement > 0.0, 1.0, np.where(agreement < 0.0, -1.0, tie))
        desired = np.where(u[:, 2 * d] < self.keep_probability, 1.0, -1.0)
        return self.scale * corner * (side * desired)[:, None]
