"""The local model: privacy enforced at each client, before transmission.

The paper treats the learner as a channel between the sample and the
released hypothesis; local differential privacy moves that channel onto
every individual record, which is exactly the regime Duchi, Jordan and
Wainwright analyzed (*Local Privacy and Statistical Minimax Rates*;
*Privacy Aware Learning*). This package collects the client-side
toolkit:

* :mod:`repro.local_privacy.mechanisms` — the minimax-optimal ℓ2/ℓ∞
  sampling mechanisms with exact unbiasing constants, plus the
  categorical mechanisms re-exported from :mod:`repro.privacy.local`,
  all behind the shared :class:`~repro.privacy.local.LocalMechanism`
  interface with vectorized ``privatize_many`` kernels;
* :mod:`repro.local_privacy.estimation` — locally-private mean/median
  estimators, the central-DP and non-private baselines, the order-level
  minimax-rate predictions, and the numerical data-processing-inequality
  check (Experiment E18);
* :mod:`repro.local_privacy.sgd` — :class:`PrivateSGDClassifier`,
  one-pass SGD on privatized per-example gradients, a drop-in peer of
  the :mod:`repro.private_learning` classifiers (Experiment E19).

See ``docs/LOCAL_PRIVACY.md`` for the mechanism catalog and the
minimax-rate background.
"""

from repro.local_privacy.estimation import (
    central_private_mean,
    central_private_rate,
    dpi_report,
    local_minimax_rate,
    locally_private_mean,
    locally_private_median,
    nonprivate_rate,
)
from repro.local_privacy.mechanisms import (
    L2SamplingMechanism,
    LInfSamplingMechanism,
    hypercube_unbiasing_constant,
    sphere_unbiasing_constant,
)
from repro.local_privacy.sgd import PrivateSGDClassifier
from repro.privacy.local import (
    KRandomizedResponse,
    LocalMechanism,
    UnaryEncoding,
    clip_and_renormalize,
)

__all__ = [
    "KRandomizedResponse",
    "L2SamplingMechanism",
    "LInfSamplingMechanism",
    "LocalMechanism",
    "PrivateSGDClassifier",
    "UnaryEncoding",
    "central_private_mean",
    "central_private_rate",
    "clip_and_renormalize",
    "dpi_report",
    "hypercube_unbiasing_constant",
    "local_minimax_rate",
    "locally_private_mean",
    "locally_private_median",
    "nonprivate_rate",
    "sphere_unbiasing_constant",
]
