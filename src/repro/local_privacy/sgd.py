"""Locally-private stochastic gradient descent (DJW Privacy Aware Learning).

The learning half of the local model: each client sees the current
iterate, computes the gradient of their own example's loss, and sends it
through an ε-LDP channel — the server never observes a raw record. With
the ℓ2 sampling mechanism as the channel, the privatized gradients are
unbiased with second moment ``B² ≍ d/ε²``, so projected SGD with
``1/√t`` steps and iterate averaging pays exactly the DJW minimax factor
over non-private SGD. :class:`PrivateSGDClassifier` packages this as a
drop-in peer of the central-DP learners in
:mod:`repro.private_learning`: same constructor signature, same
``fit`` / ``predict`` / ``accuracy`` / ``release`` surface, but a
per-record (not per-dataset) ε.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.learning.losses import MarginLoss
from repro.learning.models import _check_classification_data
from repro.local_privacy.mechanisms import L2SamplingMechanism
from repro.mechanisms.base import Mechanism, PrivacySpec
from repro.utils.validation import check_positive, check_random_state


class PrivateSGDClassifier(Mechanism):
    """ε-LDP linear classifier: one-pass SGD on privatized gradients.

    Each training example is consumed exactly once; its loss gradient
    (norm ≤ 1 for a 1-Lipschitz loss on ‖x‖₂ ≤ 1 features) passes
    through an :class:`~repro.local_privacy.mechanisms.L2SamplingMechanism`
    before touching the iterate, so the guarantee is ε *per record* with
    no curator trust — the local counterpart of
    :class:`~repro.private_learning.OutputPerturbationClassifier`. The
    data-independent regularization gradient is added after
    privatization (free of privacy cost), iterates are projected onto
    the ball of radius ``1/Λ`` containing the regularized optimum, and
    the averaged iterate is released.

    Parameters
    ----------
    loss:
        A convex, 1-Lipschitz :class:`~repro.learning.losses.MarginLoss`
        (logistic or smoothed hinge).
    regularization:
        The L2 parameter Λ > 0 (also sets the projection radius 1/Λ).
    epsilon:
        Per-record local privacy parameter.
    batch_size:
        Records privatized per iterate update. 1 is the classical DJW
        protocol; larger batches privatize each record once at the
        current iterate through the vectorized ``privatize_many`` kernel
        and average the reports, trading iterations for lower per-step
        noise.
    """

    def __init__(
        self,
        loss: MarginLoss,
        regularization: float,
        epsilon: float,
        *,
        batch_size: int = 1,
    ) -> None:
        super().__init__(PrivacySpec(epsilon=epsilon))
        if not isinstance(loss, MarginLoss):
            raise ValidationError("loss must be a MarginLoss")
        if not np.isfinite(loss.lipschitz_constant) or loss.lipschitz_constant > 1:
            raise ValidationError(
                "locally-private SGD requires a loss with Lipschitz "
                "constant <= 1"
            )
        self.loss = loss
        self.regularization = check_positive(regularization, name="regularization")
        if int(batch_size) < 1:
            raise ValidationError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.coefficients: np.ndarray | None = None

    def release(self, dataset, random_state=None) -> np.ndarray:
        """``dataset`` is a pair ``(x, y)``; returns the private θ.

        Parameters
        ----------
        dataset:
            Pair of features and labels, as the sibling classifiers
            expect it.
        random_state:
            Seed or :class:`numpy.random.Generator` for the gradient
            privatizations.
        """
        x, y = dataset
        return self.fit(x, y, random_state=random_state).coefficients

    def fit(self, x, y, random_state=None) -> "PrivateSGDClassifier":
        """One pass of projected SGD on per-example privatized gradients.

        Parameters
        ----------
        x:
            ``(n, d)`` feature matrix with ‖xᵢ‖₂ ≤ 1.
        y:
            Labels in {-1, +1}.
        random_state:
            Seed or :class:`numpy.random.Generator` shared by every
            gradient privatization.
        """
        x, y = _check_classification_data(x, y)
        norms = np.linalg.norm(x, axis=1)
        if np.any(norms > 1.0 + 1e-9):
            raise ValidationError(
                "locally-private SGD requires feature vectors with ‖x‖₂ ≤ 1"
            )
        rng = check_random_state(random_state)
        n, d = x.shape
        mechanism = L2SamplingMechanism(d, self.epsilon)
        radius = 1.0 / self.regularization
        # Projected-SGD step scale for a radius-R domain and reports of
        # norm B: η_t = R/(B·√t).
        step_scale = radius / mechanism.scale
        theta = np.zeros(d)
        average = np.zeros(d)
        step = 0
        for start in range(0, n, self.batch_size):
            x_batch = x[start : start + self.batch_size]
            y_batch = y[start : start + self.batch_size]
            margins = y_batch * (x_batch @ theta)
            gradients = (
                self.loss.derivative(margins)[:, None]
                * y_batch[:, None]
                * x_batch
            )
            reports = mechanism.privatize_many(gradients, random_state=rng)
            step += 1
            direction = reports.mean(axis=0) + self.regularization * theta
            theta = theta - step_scale / np.sqrt(step) * direction
            norm = float(np.sqrt(theta @ theta))
            if norm > radius:
                theta = theta * (radius / norm)
            average = average + (theta - average) / step
        self.coefficients = average
        return self

    def predict(self, x) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        if self.coefficients is None:
            raise ValidationError("classifier has not been fitted")
        x = np.asarray(x, dtype=float)
        return np.where(x @ self.coefficients >= 0, 1, -1)

    def accuracy(self, x, y) -> float:
        """Fraction of correct predictions on (x, y).

        Parameters
        ----------
        x:
            ``(n, d)`` feature matrix.
        y:
            Labels in {-1, +1}.
        """
        x, y = _check_classification_data(x, y)
        return float((self.predict(x) == y).mean())
