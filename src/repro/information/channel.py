"""Discrete memoryless channels — the formal object behind Figure 1.

A channel is a row-stochastic matrix ``K[i, j] = P(output j | input i)``.
Combined with an input distribution it yields the joint law, the output
marginal, the mutual information ``I(input; output)``, and the privacy-
relevant worst-case log-ratio between rows.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import SupportMismatchError, ValidationError
from repro.information.mutual_information import mutual_information_from_joint
from repro.utils.numerics import stable_log
from repro.utils.validation import check_probability_vector


class DiscreteChannel:
    """A discrete memoryless channel with named input and output alphabets.

    Parameters
    ----------
    input_alphabet, output_alphabet:
        Ordered outcome labels.
    matrix:
        Row-stochastic conditional probability matrix, shape
        ``(len(input_alphabet), len(output_alphabet))``.
    """

    __slots__ = ("_inputs", "_outputs", "_matrix", "_input_index")

    def __init__(
        self, input_alphabet: Sequence, output_alphabet: Sequence, matrix
    ) -> None:
        inputs = tuple(input_alphabet)
        outputs = tuple(output_alphabet)
        mat = np.asarray(matrix, dtype=float)
        if mat.ndim != 2 or mat.shape != (len(inputs), len(outputs)):
            raise ValidationError(
                f"matrix shape {mat.shape} does not match alphabets "
                f"({len(inputs)}, {len(outputs)})"
            )
        if len(inputs) == 0 or len(outputs) == 0:
            raise ValidationError("alphabets must not be empty")
        for row in mat:
            check_probability_vector(row, name="channel row")
        self._inputs = inputs
        self._outputs = outputs
        self._matrix = mat / mat.sum(axis=1, keepdims=True)
        self._matrix.setflags(write=False)
        self._input_index = {label: i for i, label in enumerate(inputs)}
        if len(self._input_index) != len(inputs):
            raise ValidationError("input alphabet contains duplicates")

    # ------------------------------------------------------------------
    @classmethod
    def from_conditionals(
        cls, conditionals: dict
    ) -> "DiscreteChannel":
        """Build a channel from ``{input: DiscreteDistribution}``.

        All conditional distributions must share one output support; this is
        how a family of Gibbs posteriors ``{Ẑ: π̂_Ẑ}`` becomes the Figure-1
        channel.
        """
        if not conditionals:
            raise ValidationError("conditionals must not be empty")
        items = list(conditionals.items())
        reference = items[0][1]
        for _, dist in items[1:]:
            if not reference.same_support(dist):
                raise SupportMismatchError(
                    "all conditional distributions must share one support"
                )
        matrix = np.stack([dist.probabilities for _, dist in items])
        return cls([label for label, _ in items], reference.support, matrix)

    # ------------------------------------------------------------------
    @property
    def input_alphabet(self) -> tuple:
        return self._inputs

    @property
    def output_alphabet(self) -> tuple:
        return self._outputs

    @property
    def matrix(self) -> np.ndarray:
        """Read-only row-stochastic matrix."""
        return self._matrix

    def conditional(self, input_label) -> DiscreteDistribution:
        """The output distribution given one input."""
        idx = self._input_index.get(input_label)
        if idx is None:
            raise ValidationError(f"{input_label!r} is not a channel input")
        return DiscreteDistribution(self._outputs, self._matrix[idx])

    def __repr__(self) -> str:
        return (
            f"DiscreteChannel({len(self._inputs)} inputs -> "
            f"{len(self._outputs)} outputs)"
        )

    # ------------------------------------------------------------------
    def _input_probs(self, input_distribution) -> np.ndarray:
        if isinstance(input_distribution, DiscreteDistribution):
            if input_distribution.support != self._inputs:
                raise SupportMismatchError(
                    "input distribution support must equal the input alphabet"
                )
            return input_distribution.probabilities
        return check_probability_vector(input_distribution, name="input distribution")

    def joint(self, input_distribution) -> np.ndarray:
        """Joint PMF matrix ``P(input i, output j)``."""
        probs = self._input_probs(input_distribution)
        if probs.shape[0] != len(self._inputs):
            raise ValidationError("input distribution has the wrong length")
        return probs[:, None] * self._matrix

    def output_distribution(self, input_distribution) -> DiscreteDistribution:
        """Marginal output law — for a Gibbs channel this is ``E_Z π̂_Z``."""
        return DiscreteDistribution(
            self._outputs, self.joint(input_distribution).sum(axis=0)
        )

    def mutual_information(self, input_distribution) -> float:
        """``I(input; output)`` in nats under the given input law."""
        return mutual_information_from_joint(self.joint(input_distribution))

    def posterior(self, input_distribution, output_label) -> DiscreteDistribution:
        """Bayes-inverted input law given an observed output.

        For the learning channel, this is what an adversary who sees the
        released predictor can infer about the secret sample.
        """
        try:
            j = self._outputs.index(output_label)
        except ValueError:
            raise ValidationError(f"{output_label!r} is not a channel output") from None
        joint = self.joint(input_distribution)
        column = joint[:, j]
        total = column.sum()
        if total <= 0:
            raise ValidationError("observed output has probability zero")
        return DiscreteDistribution(self._inputs, column / total)

    def compose(self, other: "DiscreteChannel") -> "DiscreteChannel":
        """Cascade: this channel followed by ``other`` (output → its input).

        The data-processing inequality makes the cascade's mutual
        information never exceed the first stage's — post-processing cannot
        leak more, the same closure property differential privacy enjoys.
        """
        if self._outputs != other._inputs:
            raise SupportMismatchError(
                "composition requires this channel's outputs to equal the "
                "other channel's inputs"
            )
        return DiscreteChannel(
            self._inputs, other._outputs, self._matrix @ other._matrix
        )

    def max_log_ratio(self) -> float:
        """Worst-case ``log K[i, j] / K[i', j]`` over all input pairs, outputs.

        When the channel inputs are *all* datasets (so every pair of rows is
        a valid comparison) this is an upper bound on the privacy loss; the
        privacy auditor restricts the maximum to neighbouring rows.
        """
        log_matrix = stable_log(self._matrix)
        worst = 0.0
        for j in range(len(self._outputs)):
            column = log_matrix[:, j]
            finite = np.isfinite(column)
            if finite.all():
                worst = max(worst, float(column.max() - column.min()))
            elif finite.any():
                return float("inf")
        return worst
