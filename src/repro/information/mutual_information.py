"""Mutual information: exact on finite joints, estimated from samples.

Three routes, cross-validated in the test suite:

* :func:`mutual_information_from_joint` — exact ``I(X;Y)`` from a joint PMF
  matrix (used for every finite-universe experiment, E1/E5/E6);
* :func:`mutual_information_histogram` — plug-in estimator from paired
  samples via (optionally binned) empirical joint;
* :func:`mutual_information_ksg` — the Kraskov–Stögbauer–Grassberger
  k-nearest-neighbour estimator for continuous data, built on
  :class:`scipy.spatial.cKDTree`.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

from repro.exceptions import ValidationError
from repro.utils.numerics import xlogx
from repro.utils.validation import check_random_state


def mutual_information_from_joint(joint) -> float:
    """Exact ``I(X;Y)`` in nats from a joint PMF matrix (X rows, Y columns).

    Computed as ``H(X) + H(Y) - H(X,Y)``, which is exact and never negative
    beyond float rounding; tiny negative rounding residue is clipped to 0.
    """
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise ValidationError("joint must be a 2-D matrix")
    if np.any(joint < 0):
        raise ValidationError("joint must be nonnegative")
    total = joint.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValidationError(f"joint must sum to 1 (got {total:.12g})")
    joint = joint / total
    h_x = -xlogx(joint.sum(axis=1)).sum()
    h_y = -xlogx(joint.sum(axis=0)).sum()
    h_xy = -xlogx(joint).sum()
    return float(max(h_x + h_y - h_xy, 0.0))


def mutual_information_histogram(
    x_samples, y_samples, *, bins: int | None = None
) -> float:
    """Plug-in MI estimate from paired samples.

    Parameters
    ----------
    x_samples, y_samples:
        Paired observations. If ``bins`` is None, values are treated as
        discrete labels; otherwise both variables are binned into ``bins``
        equal-width cells first (for continuous data).
    """
    x = np.asarray(x_samples)
    y = np.asarray(y_samples)
    if x.shape[0] != y.shape[0] or x.shape[0] == 0:
        raise ValidationError("x and y must be equal-length nonempty samples")

    if bins is not None:
        x = _discretize(np.asarray(x, dtype=float), bins)
        y = _discretize(np.asarray(y, dtype=float), bins)

    x_values, x_codes = np.unique(x, return_inverse=True)
    y_values, y_codes = np.unique(y, return_inverse=True)
    joint = np.zeros((x_values.size, y_values.size))
    np.add.at(joint, (x_codes, y_codes), 1.0)
    joint /= joint.sum()
    return mutual_information_from_joint(joint)


def _discretize(values: np.ndarray, bins: int) -> np.ndarray:
    if bins < 1:
        raise ValidationError("bins must be >= 1")
    lo, hi = values.min(), values.max()
    if lo == hi:
        return np.zeros_like(values, dtype=int)
    edges = np.linspace(lo, hi, bins + 1)
    return np.clip(np.searchsorted(edges, values, side="right") - 1, 0, bins - 1)


def mutual_information_ksg(
    x_samples, y_samples, *, k: int = 3, random_state=0
) -> float:
    """Kraskov–Stögbauer–Grassberger estimator (algorithm 1) in nats.

    Suitable for continuous (or mixed-scale) data; consistent as the sample
    grows. Result is clipped at zero since MI is nonnegative.

    Parameters
    ----------
    k:
        Number of neighbours; small k → low bias, higher variance.
    random_state:
        Seed or Generator for the tie-breaking jitter; the fixed default
        keeps the estimate deterministic for a given sample.
    """
    x = np.asarray(x_samples, dtype=float)
    y = np.asarray(y_samples, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    if y.ndim == 1:
        y = y[:, None]
    n = x.shape[0]
    if y.shape[0] != n or n == 0:
        raise ValidationError("x and y must be equal-length nonempty samples")
    if not 1 <= k < n:
        raise ValidationError("k must satisfy 1 <= k < n_samples")

    # Tiny jitter breaks ties that would otherwise make the Chebyshev
    # epsilon-ball counts degenerate on discrete-valued inputs.
    rng = check_random_state(random_state)
    x = x + 1e-10 * rng.standard_normal(x.shape)
    y = y + 1e-10 * rng.standard_normal(y.shape)

    joint = np.hstack([x, y])
    joint_tree = cKDTree(joint)
    # Distance to the k-th neighbour in the joint space (Chebyshev metric).
    distances, _ = joint_tree.query(joint, k=k + 1, p=np.inf)
    radii = distances[:, -1]

    x_tree = cKDTree(x)
    y_tree = cKDTree(y)
    n_x = np.array(
        [
            len(x_tree.query_ball_point(x[i], radii[i] - 1e-12, p=np.inf)) - 1
            for i in range(n)
        ]
    )
    n_y = np.array(
        [
            len(y_tree.query_ball_point(y[i], radii[i] - 1e-12, p=np.inf)) - 1
            for i in range(n)
        ]
    )
    estimate = (
        digamma(k)
        + digamma(n)
        - np.mean(digamma(n_x + 1) + digamma(n_y + 1))
    )
    return float(max(estimate, 0.0))
