"""Divergences between finite distributions.

The paper uses the Kullback–Leibler divergence (in PAC-Bayes bounds and in
the mutual-information decomposition ``E_Z KL(π̂‖π) = I(Z;θ) + KL(E_Z π̂‖π)``)
and, implicitly through the DP definition, the *max divergence*
``D_∞(P‖Q) = max_S log P(S)/Q(S)`` — a mechanism is ε-DP iff the max
divergence between its output laws on any neighbouring inputs is ≤ ε.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.utils.numerics import stable_log, xlogy
from repro.utils.validation import check_in_range, check_positive, check_probability_vector


def _pair(p_dist, q_dist) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(p_dist, DiscreteDistribution) and isinstance(
        q_dist, DiscreteDistribution
    ):
        p_dist.require_same_support(q_dist)
        return p_dist.probabilities, q_dist.probabilities
    p = check_probability_vector(p_dist, name="p")
    q = check_probability_vector(q_dist, name="q")
    if p.shape != q.shape:
        raise ValidationError("p and q must have the same length")
    return p, q


def kl_divergence(p_dist, q_dist) -> float:
    """``KL(p ‖ q) = Σ p log(p/q)`` in nats; ``inf`` if p ⋪ q."""
    p, q = _pair(p_dist, q_dist)
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float((p[mask] * (np.log(p[mask]) - np.log(q[mask]))).sum())


def binary_kl(p: float, q: float) -> float:
    """KL divergence between Bernoulli(p) and Bernoulli(q), ``kl(p‖q)``."""
    p = check_in_range(p, name="p", low=0.0, high=1.0)
    q = check_in_range(q, name="q", low=0.0, high=1.0)
    return kl_divergence(np.array([p, 1 - p]), np.array([q, 1 - q]))


def binary_kl_inverse(p: float, budget: float, *, tol: float = 1e-12) -> float:
    """Largest ``q ≥ p`` with ``kl(p ‖ q) ≤ budget`` (Seeger bound inversion).

    Solved by bisection; ``kl(p‖·)`` is increasing on ``[p, 1]``.
    """
    p = check_in_range(p, name="p", low=0.0, high=1.0)
    budget = check_positive(budget, name="budget", strict=False)
    if budget == 0:
        return p
    lo, hi = p, 1.0
    if binary_kl(p, 1.0) <= budget:
        return 1.0
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if binary_kl(p, mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo


def total_variation(p_dist, q_dist) -> float:
    """Total variation distance ``½ Σ |p - q|``."""
    p, q = _pair(p_dist, q_dist)
    return float(0.5 * np.abs(p - q).sum())


def jensen_shannon_divergence(p_dist, q_dist) -> float:
    """Jensen–Shannon divergence (symmetric, bounded by ``log 2``)."""
    p, q = _pair(p_dist, q_dist)
    mixture = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, mixture) + 0.5 * kl_divergence(q, mixture)


def renyi_divergence(p_dist, q_dist, alpha: float) -> float:
    """Rényi divergence of order ``alpha`` (limits: α→1 gives KL, α→∞ max)."""
    p, q = _pair(p_dist, q_dist)
    alpha = float(alpha)
    if np.isinf(alpha) and alpha > 0:
        return max_divergence(p, q)
    alpha = check_positive(alpha, name="alpha")
    if np.isclose(alpha, 1.0):
        return kl_divergence(p, q)
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    log_terms = alpha * np.log(p[mask]) + (1.0 - alpha) * np.log(q[mask])
    peak = log_terms.max()
    total = np.exp(log_terms - peak).sum()
    return float((peak + np.log(total)) / (alpha - 1.0))


def max_divergence(p_dist, q_dist) -> float:
    """Max divergence ``D_∞(p‖q) = max_i log(p_i / q_i)`` over atoms p_i > 0.

    For discrete mechanisms this equals ``max_S log P(S)/Q(S)`` over all
    events S, so a mechanism is ε-DP iff max divergence ≤ ε for every
    neighbouring input pair — this is the quantity the exact privacy
    auditor computes.
    """
    p, q = _pair(p_dist, q_dist)
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float(np.max(np.log(p[mask]) - np.log(q[mask])))


def hockey_stick_divergence(p_dist, q_dist, epsilon: float) -> float:
    """Hockey-stick divergence ``max(0, Σ (p - e^ε q)_+)``.

    A mechanism satisfies (ε, δ)-DP on a neighbouring pair iff the
    hockey-stick divergence between the output laws is ≤ δ in both
    directions.
    """
    p, q = _pair(p_dist, q_dist)
    epsilon = check_positive(epsilon, name="epsilon", strict=False)
    return float(np.clip(p - np.exp(epsilon) * q, 0.0, None).sum())


def kl_decomposition(posteriors, weights, prior) -> dict:
    """Decompose ``E_Z KL(π̂_Z ‖ π)`` as ``I(Z;θ) + KL(E_Z π̂ ‖ π)``.

    This is the identity the paper quotes from Catoni (Section 4): the
    expected KL of sample-dependent posteriors to a fixed prior splits into
    the mutual information between sample and parameter plus the divergence
    of the marginal posterior from the prior. The additive second term
    vanishes iff the prior equals the marginal ``E_Z π̂`` — the
    "bound-optimal prior".

    Parameters
    ----------
    posteriors:
        Sequence of :class:`DiscreteDistribution` over the parameter space,
        one per sample value ``z`` (all on the same support).
    weights:
        Probability of each sample value (the data-generating law on Z).
    prior:
        Fixed prior :class:`DiscreteDistribution` on the same support.

    Returns
    -------
    dict with keys ``expected_kl``, ``mutual_information``,
    ``marginal_kl`` and ``marginal`` satisfying
    ``expected_kl = mutual_information + marginal_kl`` exactly.
    """
    weights = check_probability_vector(weights, name="weights")
    if len(posteriors) != weights.shape[0]:
        raise ValidationError("need one posterior per weight")
    for post in posteriors:
        prior.require_same_support(post)

    stacked = np.stack([post.probabilities for post in posteriors])
    marginal_probs = weights @ stacked
    marginal = DiscreteDistribution(prior.support, marginal_probs)

    expected_kl = float(
        sum(
            w * kl_divergence(post, prior)
            for w, post in zip(weights, posteriors)
        )
    )
    mutual_information = float(
        sum(
            w * kl_divergence(post, marginal)
            for w, post in zip(weights, posteriors)
        )
    )
    marginal_kl = kl_divergence(marginal, prior)
    return {
        "expected_kl": expected_kl,
        "mutual_information": mutual_information,
        "marginal_kl": marginal_kl,
        "marginal": marginal,
    }
