"""Information-theoretic substrate.

Implements everything Section 4 of the paper leans on: entropies,
Kullback-Leibler (and related) divergences, mutual information — exactly on
finite supports and estimated from samples — discrete channels (the paper's
Figure 1), and the Blahut–Arimoto algorithms whose rate–distortion variant
is the computational face of Theorem 4.2.
"""

from repro.information.entropy import (
    binary_entropy,
    conditional_entropy,
    cross_entropy,
    entropy,
    joint_entropy,
)
from repro.information.divergences import (
    binary_kl,
    binary_kl_inverse,
    hockey_stick_divergence,
    jensen_shannon_divergence,
    kl_divergence,
    max_divergence,
    renyi_divergence,
    total_variation,
)
from repro.information.mutual_information import (
    mutual_information_from_joint,
    mutual_information_histogram,
    mutual_information_ksg,
)
from repro.information.channel import DiscreteChannel
from repro.information.blahut_arimoto import (
    BlahutArimotoResult,
    channel_capacity,
    rate_distortion,
)
from repro.information.fano import (
    bayes_identification_error,
    dp_identification_lower_bound,
    fano_error_lower_bound,
    verify_fano,
)
from repro.information.leakage import (
    alvim_min_entropy_bound,
    leakage_bound_report,
    mi_bound_capacity,
    mi_bound_group_privacy,
    mi_bound_source_entropy,
    min_entropy_leakage,
    multiplicative_leakage_capacity,
    posterior_vulnerability,
    vulnerability,
)

__all__ = [
    "alvim_min_entropy_bound",
    "bayes_identification_error",
    "dp_identification_lower_bound",
    "fano_error_lower_bound",
    "verify_fano",
    "leakage_bound_report",
    "mi_bound_capacity",
    "mi_bound_group_privacy",
    "mi_bound_source_entropy",
    "min_entropy_leakage",
    "multiplicative_leakage_capacity",
    "posterior_vulnerability",
    "vulnerability",
    "BlahutArimotoResult",
    "DiscreteChannel",
    "binary_entropy",
    "binary_kl",
    "binary_kl_inverse",
    "channel_capacity",
    "conditional_entropy",
    "cross_entropy",
    "entropy",
    "hockey_stick_divergence",
    "jensen_shannon_divergence",
    "joint_entropy",
    "kl_divergence",
    "max_divergence",
    "mutual_information_from_joint",
    "mutual_information_histogram",
    "mutual_information_ksg",
    "rate_distortion",
    "renyi_divergence",
    "total_variation",
]
