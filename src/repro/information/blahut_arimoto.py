"""Blahut–Arimoto algorithms.

Two classic alternating-minimization procedures:

* :func:`channel_capacity` — maximizes ``I(X;Y)`` over input laws for a
  fixed channel;
* :func:`rate_distortion` — minimizes the Lagrangian
  ``I(X;Y) + beta * E[d(X,Y)]`` over channels for a fixed source.

The rate–distortion solver is the computational engine behind Theorem 4.2
of the paper: take the distortion ``d(Ẑ, θ) = R̂_Ẑ(θ)`` (empirical risk of
predictor θ on sample Ẑ) and ``beta = ε``; the optimal channel at the fixed
point is exactly the Gibbs kernel ``K(θ|Ẑ) ∝ q(θ) exp(-ε R̂_Ẑ(θ))`` with the
prior ``q`` equal to the output marginal ``E_Z π̂`` — the bound-optimal prior
the paper discusses. :mod:`repro.core.tradeoff` wraps this with the
learning-specific vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.information.mutual_information import mutual_information_from_joint
from repro.observability import tracer as _trace
from repro.utils.numerics import logsumexp, stable_log
from repro.utils.validation import check_positive, check_probability_vector


@dataclass
class BlahutArimotoResult:
    """Outcome of an alternating-minimization run.

    Attributes
    ----------
    value:
        Final objective (capacity in nats, or the rate–distortion
        Lagrangian value).
    channel_matrix:
        Row-stochastic conditional matrix at termination.
    input_distribution / output_distribution:
        The source law (fixed for rate–distortion, optimized for capacity)
        and the output marginal.
    rate:
        Mutual information at termination, nats.
    distortion:
        Expected distortion (rate–distortion only; 0.0 for capacity).
    iterations:
        Iterations executed.
    converged:
        Whether the stopping tolerance was reached within the budget.
        False both when the iteration budget ran out *and* when the
        objective moved the wrong way (see ``monotone``).
    final_gap:
        The last objective decrement observed (capacity: the certified
        upper−lower bound gap). Negative means the objective *increased*
        on the final step — float noise near a degenerate fixed point.
    monotone:
        Whether every observed step decreased the objective (capacity:
        always True). A non-monotone run terminated on a beyond-tolerance
        increase and is reported ``converged=False``.
    """

    value: float
    channel_matrix: np.ndarray
    input_distribution: np.ndarray
    output_distribution: np.ndarray
    rate: float
    distortion: float
    iterations: int
    converged: bool
    final_gap: float = 0.0
    monotone: bool = True


def channel_capacity(
    channel_matrix,
    *,
    tol: float = 1e-10,
    max_iterations: int = 10_000,
) -> BlahutArimotoResult:
    """Capacity ``max_p I(X;Y)`` of a discrete channel by Blahut–Arimoto.

    Parameters
    ----------
    channel_matrix:
        Row-stochastic matrix ``P(y|x)``.
    tol:
        Stop when the capacity upper and lower bounds are within ``tol``
        (the classical Arimoto bounds certify the gap).
    """
    matrix = np.asarray(channel_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("channel_matrix must be 2-D")
    for row in matrix:
        check_probability_vector(row, name="channel row")
    n_inputs = matrix.shape[0]

    log_matrix = stable_log(matrix)
    p = np.full(n_inputs, 1.0 / n_inputs)
    converged = False
    iterations = 0
    gap = np.inf
    for iterations in range(1, max_iterations + 1):
        output = p @ matrix
        log_output = stable_log(output)
        # D(row_x || output marginal) for every input x.
        with np.errstate(invalid="ignore"):
            contrib = matrix * (log_matrix - log_output[None, :])
        contrib = np.where(matrix > 0, contrib, 0.0)
        divergences = contrib.sum(axis=1)
        upper = float(divergences.max())
        lower = float(p @ divergences)
        gap = upper - lower
        if gap < tol:
            converged = True
            break
        log_p = stable_log(p) + divergences
        p = np.exp(log_p - logsumexp(log_p))

    tracer = _trace.current()
    if tracer is not None:
        tracer.observe("blahut_arimoto.iterations", iterations)

    joint = p[:, None] * matrix
    rate = mutual_information_from_joint(joint)
    return BlahutArimotoResult(
        value=rate,
        channel_matrix=matrix,
        input_distribution=p,
        output_distribution=p @ matrix,
        rate=rate,
        distortion=0.0,
        iterations=iterations,
        converged=converged,
        final_gap=gap,
        monotone=True,
    )


def rate_distortion(
    source,
    distortion_matrix,
    beta: float,
    *,
    tol: float = 1e-12,
    max_iterations: int = 20_000,
    initial_output=None,
    raise_on_failure: bool = False,
) -> BlahutArimotoResult:
    """Minimize ``I(X;Y) + beta * E[d(X,Y)]`` over channels ``P(y|x)``.

    Alternates the two closed-form half-steps:

    1. given output marginal ``q``, the optimal channel is the Gibbs kernel
       ``K(y|x) ∝ q(y) * exp(-beta * d(x, y))``;
    2. given the channel, the optimal ``q`` is the output marginal of the
       joint.

    Each half-step cannot increase the objective, so the Lagrangian value
    decreases monotonically to the fixed point.

    Parameters
    ----------
    source:
        Probability vector of the source ``X`` (for the paper: the law of
        the sample ``Ẑ``).
    distortion_matrix:
        Matrix ``d[x, y] >= 0`` (for the paper: empirical risk
        ``R̂_Ẑ(θ)`` of predictor y on sample x).
    beta:
        Lagrange multiplier; the paper's privacy parameter ε.
    initial_output:
        Starting output marginal (defaults to uniform). Must give positive
        mass everywhere or atoms can never be revived.
    raise_on_failure:
        If true, raise :class:`ConvergenceError` instead of returning a
        result flagged ``converged=False``.
    """
    p = check_probability_vector(source, name="source")
    d = np.asarray(distortion_matrix, dtype=float)
    if d.ndim != 2 or d.shape[0] != p.shape[0]:
        raise ValidationError(
            "distortion_matrix must be 2-D with one row per source symbol"
        )
    if np.any(d < 0) or not np.all(np.isfinite(d)):
        raise ValidationError("distortion entries must be finite and >= 0")
    beta = check_positive(beta, name="beta")

    n_outputs = d.shape[1]
    if initial_output is None:
        q = np.full(n_outputs, 1.0 / n_outputs)
    else:
        q = check_probability_vector(initial_output, name="initial_output")
        if q.shape[0] != n_outputs:
            raise ValidationError("initial_output has the wrong length")
        if np.any(q == 0):
            raise ValidationError(
                "initial_output must be strictly positive everywhere"
            )

    previous_value = np.inf
    converged = False
    monotone = True
    iterations = 0
    gap = np.inf
    channel = np.empty_like(d)
    for iterations in range(1, max_iterations + 1):
        # Half-step 1: optimal channel for the current output marginal.
        log_weights = stable_log(q)[None, :] - beta * d
        log_norms = logsumexp(log_weights, axis=1)
        channel = np.exp(log_weights - log_norms[:, None])
        # Half-step 2: optimal output marginal for the current channel.
        q = p @ channel

        joint = p[:, None] * channel
        rate = mutual_information_from_joint(joint)
        distortion = float((joint * d).sum())
        value = rate + beta * distortion
        gap = previous_value - value if np.isfinite(previous_value) else np.inf
        if gap < -tol:
            # The objective went UP by more than the tolerance. Each exact
            # half-step cannot increase the Lagrangian, so this is float
            # noise near a (near-)degenerate fixed point — not a certified
            # fixed point. Stop, but do not claim convergence.
            monotone = False
            break
        if gap < tol:
            converged = True
            break
        previous_value = value

    tracer = _trace.current()
    if tracer is not None:
        tracer.observe("blahut_arimoto.iterations", iterations)

    if not converged and raise_on_failure:
        reason = (
            f"objective increased by {-gap:.3e} at iteration {iterations}"
            if not monotone
            else f"did not converge in {max_iterations} iterations"
        )
        raise ConvergenceError(f"rate_distortion: {reason}")

    joint = p[:, None] * channel
    rate = mutual_information_from_joint(joint)
    distortion = float((joint * d).sum())
    return BlahutArimotoResult(
        value=rate + beta * distortion,
        channel_matrix=channel,
        input_distribution=p,
        output_distribution=p @ channel,
        rate=rate,
        distortion=distortion,
        iterations=iterations,
        converged=converged,
        final_gap=float(gap) if np.isfinite(gap) else float("inf"),
        monotone=monotone,
    )


def rate_distortion_free_energy(source, distortion_matrix, beta: float) -> float:
    """Closed-form optimum of the rate–distortion Lagrangian at the Gibbs
    fixed point *for a fixed reference marginal*: the variational identity

    ``min_K [ I + beta * E d ]  =  min_q  -E_x log E_{y~q} exp(-beta d(x,y))``

    evaluated at the converged marginal. Used as an independent check that
    the alternating minimization reached the true optimum (Experiment E5).
    """
    result = rate_distortion(source, distortion_matrix, beta)
    p = result.input_distribution
    log_q = stable_log(result.output_distribution)
    d = np.asarray(distortion_matrix, dtype=float)
    free_energies = -logsumexp(log_q[None, :] - beta * d, axis=1)
    return float(p @ free_energies)
