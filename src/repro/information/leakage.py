"""Quantitative information flow: leakage measures and DP leakage bounds.

The paper's stated future work (Section 5) is to compare upper/lower
bounds on the sample–predictor mutual information "similar to Alvim et
al." — the quantitative-information-flow line connecting differential
privacy to channel leakage. This module implements that toolkit:

* **min-entropy leakage** (Smith 2009): how much a single optimal guess
  about the secret improves after seeing the output;
* **multiplicative leakage capacity**: its worst case over priors,
  ``log Σ_y max_x C[x, y]``, attained at the uniform prior;
* **Alvim et al.'s bound**: an ε-DP channel over n-record datasets with a
  per-record universe of size u has min-entropy leakage at most
  ``n · log( u·e^ε / (u - 1 + e^ε) )``;
* **mutual-information bounds** for ε-DP channels: the group-privacy
  bound ``I ≤ n·ε`` (nats), the channel-capacity bound (Blahut–Arimoto),
  and the trivial source-entropy bound — compared head-to-head in
  benchmark E9.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.information.blahut_arimoto import channel_capacity
from repro.information.channel import DiscreteChannel
from repro.utils.validation import check_positive, check_probability_vector


def vulnerability(prior) -> float:
    """Prior vulnerability ``V(π) = max_x π(x)`` — one-guess success."""
    probs = check_probability_vector(prior, name="prior")
    return float(probs.max())


def posterior_vulnerability(channel: DiscreteChannel, prior) -> float:
    """Posterior vulnerability ``V(π, C) = Σ_y max_x π(x)·C[x, y]``."""
    probs = check_probability_vector(prior, name="prior")
    if probs.shape[0] != len(channel.input_alphabet):
        raise ValidationError("prior length must match the input alphabet")
    joint = probs[:, None] * channel.matrix
    return float(joint.max(axis=0).sum())


def min_entropy_leakage(channel: DiscreteChannel, prior) -> float:
    """Min-entropy leakage ``log( V(π, C) / V(π) )`` in nats, ≥ 0."""
    return float(
        np.log(posterior_vulnerability(channel, prior))
        - np.log(vulnerability(prior))
    )


def multiplicative_leakage_capacity(channel: DiscreteChannel) -> float:
    """Worst-case min-entropy leakage over priors: ``log Σ_y max_x C[x,y]``.

    Braun–Chatzikokolakis–Palamidessi: the supremum is attained at the
    uniform prior, giving this closed form.
    """
    return float(np.log(channel.matrix.max(axis=0).sum()))


def alvim_min_entropy_bound(epsilon: float, n: int, universe_size: int) -> float:
    """Alvim et al.'s bound on the min-entropy leakage of an ε-DP channel.

    For datasets of ``n`` records over a per-record universe of size
    ``u``: leakage ≤ ``n · log( u·e^ε / (u - 1 + e^ε) )`` nats.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    if n < 1 or universe_size < 2:
        raise ValidationError("need n >= 1 and universe_size >= 2")
    u = float(universe_size)
    return n * float(np.log(u * np.exp(epsilon) / (u - 1.0 + np.exp(epsilon))))


def mi_bound_group_privacy(epsilon: float, n: int) -> float:
    """Group-privacy bound: an ε-DP channel (substitution neighbours) has
    ``I(X; Y) ≤ n·ε`` nats.

    Any two datasets differ in at most n records, so every pair of channel
    rows is within a factor ``e^{nε}`` pointwise; hence each row's KL to
    the output marginal — and therefore the mutual information — is at
    most nε.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    if n < 1:
        raise ValidationError("n must be >= 1")
    return n * epsilon


def mi_bound_capacity(channel: DiscreteChannel) -> float:
    """Channel-capacity bound: ``I(X;Y) ≤ max_p I`` via Blahut–Arimoto."""
    return channel_capacity(channel.matrix).value


def mi_bound_source_entropy(prior) -> float:
    """Trivial bound: ``I(X;Y) ≤ H(X)``."""
    from repro.information.entropy import entropy

    return entropy(prior)


def leakage_bound_report(
    channel: DiscreteChannel, prior, epsilon: float, n: int, universe_size: int
) -> dict:
    """Measured leakage vs every bound, for the E9 comparison.

    Returns measured mutual information and min-entropy leakage alongside
    the group-privacy, capacity, source-entropy and Alvim bounds. All
    bounds are verified to dominate their measured quantity.
    """
    measured_mi = channel.mutual_information(prior)
    measured_me = min_entropy_leakage(channel, prior)
    report = {
        "mutual_information": measured_mi,
        "min_entropy_leakage": measured_me,
        "bound_group_privacy": mi_bound_group_privacy(epsilon, n),
        "bound_capacity": mi_bound_capacity(channel),
        "bound_source_entropy": mi_bound_source_entropy(prior),
        "bound_alvim_min_entropy": alvim_min_entropy_bound(
            epsilon, n, universe_size
        ),
    }
    return report
