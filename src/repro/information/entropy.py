"""Shannon entropies on finite supports (natural logarithms throughout).

All quantities are in nats. Functions accept either raw probability vectors
/ matrices or :class:`repro.distributions.DiscreteDistribution` instances.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.utils.numerics import xlogx
from repro.utils.validation import check_in_range, check_probability_vector


def _as_probability_vector(dist) -> np.ndarray:
    if isinstance(dist, DiscreteDistribution):
        return dist.probabilities
    return check_probability_vector(dist)


def entropy(dist) -> float:
    """Shannon entropy ``H(p) = -Σ p log p`` in nats."""
    probs = _as_probability_vector(dist)
    return float(-xlogx(probs).sum())


def binary_entropy(p: float) -> float:
    """Entropy of a Bernoulli(p) variable in nats."""
    p = check_in_range(p, name="p", low=0.0, high=1.0)
    return entropy(np.array([p, 1.0 - p]))


def cross_entropy(p_dist, q_dist) -> float:
    """Cross entropy ``-Σ p log q`` (``inf`` if q misses mass p needs)."""
    p = _as_probability_vector(p_dist)
    q = _as_probability_vector(q_dist)
    if p.shape != q.shape:
        raise ValidationError("p and q must have the same length")
    mask = p > 0
    if np.any(q[mask] == 0):
        return float("inf")
    return float(-(p[mask] * np.log(q[mask])).sum())


def joint_entropy(joint) -> float:
    """Entropy of a joint PMF given as a nonnegative matrix summing to one."""
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise ValidationError("joint must be a 2-D matrix")
    if np.any(joint < 0) or not np.isclose(joint.sum(), 1.0, atol=1e-8):
        raise ValidationError("joint must be a probability matrix summing to 1")
    return float(-xlogx(joint).sum())


def conditional_entropy(joint) -> float:
    """Conditional entropy ``H(Y|X)`` for a joint PMF with X on rows.

    ``H(Y|X) = H(X, Y) - H(X)`` where ``H(X)`` is the row-marginal entropy.
    """
    joint = np.asarray(joint, dtype=float)
    if joint.ndim != 2:
        raise ValidationError("joint must be a 2-D matrix")
    marginal_x = joint.sum(axis=1)
    return joint_entropy(joint) - float(-xlogx(marginal_x).sum())
