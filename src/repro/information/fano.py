"""Fano-type lower bounds — the "lower bounds" half of the paper's §5.

The paper proposes examining "upper and lower bounds on the mutual
information between the sample and the predictor and their implication on
the utility". E9 covered the upper bounds; this module supplies the lower
side: Fano's inequality converts a *cap* on mutual information (such as
the DP group-privacy cap I ≤ n·ε) into a *floor* on identification error,

    P(error)  ≥  1 - (I(θ; data) + log 2) / log k

for θ uniform over k hypotheses. Chained with I ≤ n·ε this yields a
minimax lower bound that NO ε-DP learner can beat — the fundamental
privacy price, checkable exactly against the Gibbs estimator on finite
instances.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.discrete import DiscreteDistribution
from repro.exceptions import ValidationError
from repro.information.channel import DiscreteChannel
from repro.information.mutual_information import mutual_information_from_joint
from repro.utils.validation import check_positive


def fano_error_lower_bound(mutual_information: float, k: int) -> float:
    """Fano: any decoder of a uniform k-ary hypothesis errs with
    probability at least ``1 - (I + log 2)/log k`` (clipped at 0)."""
    mutual_information = check_positive(
        mutual_information, name="mutual_information", strict=False
    )
    if k < 2:
        raise ValidationError("Fano needs k >= 2 hypotheses")
    return float(
        max(0.0, 1.0 - (mutual_information + np.log(2.0)) / np.log(k))
    )


def dp_identification_lower_bound(epsilon: float, n: int, k: int) -> float:
    """No ε-DP mechanism on n records identifies a uniform k-ary secret
    with error below ``1 - (n·ε + log 2)/log k``.

    Chain: ε-DP ⇒ I(secret; output) ≤ n·ε (group privacy over the ≤ n
    record substitutions separating any two datasets) ⇒ Fano.
    """
    epsilon = check_positive(epsilon, name="epsilon")
    if n < 1:
        raise ValidationError("n must be >= 1")
    if k < 2:
        raise ValidationError("k must be >= 2")
    return fano_error_lower_bound(n * epsilon, k)


def bayes_identification_error(
    channel: DiscreteChannel, prior: DiscreteDistribution
) -> float:
    """Exact minimal identification error of the channel input.

    The Bayes decoder picks ``argmax_x P(x|y)``; its error is
    ``1 - Σ_y max_x P(x, y)`` — one minus the posterior vulnerability.
    """
    if prior.support != channel.input_alphabet:
        raise ValidationError(
            "prior support must equal the channel input alphabet"
        )
    joint = prior.probabilities[:, None] * channel.matrix
    return float(1.0 - joint.max(axis=0).sum())


def verify_fano(
    channel: DiscreteChannel, prior: DiscreteDistribution
) -> dict:
    """Measured Bayes error vs the Fano floor for one channel + prior.

    Returns the exact error, the channel mutual information, the Fano
    bound (computed with H(prior) replacing log k when the prior is not
    uniform, which keeps the bound valid), and whether it holds.
    """
    if prior.support != channel.input_alphabet:
        raise ValidationError(
            "prior support must equal the channel input alphabet"
        )
    joint = prior.probabilities[:, None] * channel.matrix
    information = mutual_information_from_joint(joint)
    error = bayes_identification_error(channel, prior)
    entropy = prior.entropy()
    if entropy <= np.log(2.0):
        bound = 0.0  # Fano is vacuous below one bit of prior uncertainty
    else:
        bound = max(0.0, 1.0 - (information + np.log(2.0)) / entropy)
    return {
        "bayes_error": error,
        "mutual_information": information,
        "fano_bound": bound,
        "holds": error >= bound - 1e-12,
    }
