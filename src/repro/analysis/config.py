"""Per-rule configuration for the ``dplint`` analyzer.

Every rule ships usable defaults (see each rule's ``default_options``);
:class:`AnalysisConfig` lets callers enable/disable rules, override a rule's
severity, and override individual rule options without touching rule code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import Severity


@dataclass
class RuleConfig:
    """Configuration overrides for a single rule.

    Parameters
    ----------
    enabled:
        Whether the rule runs at all.
    severity:
        Override for the rule's default severity (``None`` keeps it).
    options:
        Rule-specific option overrides, merged over ``default_options``.
    """

    enabled: bool = True
    severity: Severity | None = None
    options: dict = field(default_factory=dict)


@dataclass
class AnalysisConfig:
    """Engine-wide configuration.

    Parameters
    ----------
    rules:
        Mapping from rule id (``"DPL001"``) to its :class:`RuleConfig`.
        Rules absent from the mapping run with pure defaults.
    select:
        When non-empty, only these rule ids/names run.
    ignore:
        Rule ids/names that never run (wins over ``select``).
    exclude_parts:
        Path components that exclude a file from analysis entirely.
    require_pragma_justification:
        When true, a ``# dplint: disable=...`` pragma without trailing
        justification text is itself reported (rule ``DPL000``).
    """

    rules: dict[str, RuleConfig] = field(default_factory=dict)
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    exclude_parts: frozenset[str] = frozenset(
        {".git", "__pycache__", ".venv", "build", "dist", "egg-info"}
    )
    require_pragma_justification: bool = True

    def rule_config(self, rule_id: str) -> RuleConfig:
        """The (possibly default) :class:`RuleConfig` for ``rule_id``."""
        return self.rules.setdefault(rule_id, RuleConfig())

    def is_enabled(self, rule_id: str, rule_name: str) -> bool:
        """Whether a rule should run under select/ignore/enabled settings."""
        keys = {rule_id, rule_name}
        if keys & self.ignore:
            return False
        if self.select and not (keys & self.select):
            return False
        return self.rule_config(rule_id).enabled

    def rule_option(self, rule_id: str, option: str, default):
        """Resolve one option for a rule: override if present, else default.

        Parameters
        ----------
        rule_id:
            Rule whose option is read.
        option:
            Option name as declared in the rule's ``default_options``.
        default:
            Value used when no override exists.
        """
        return self.rule_config(rule_id).options.get(option, default)

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        """The effective severity for a rule."""
        override = self.rule_config(rule_id).severity
        return default if override is None else override
