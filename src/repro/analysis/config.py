"""Per-rule configuration for the ``dplint`` analyzer.

Every rule ships usable defaults (see each rule's ``default_options``);
:class:`AnalysisConfig` lets callers enable/disable rules, override a rule's
severity, and override individual rule options without touching rule code.
Configuration can also be loaded from a ``[tool.dplint]`` table in
``pyproject.toml`` (:func:`load_pyproject_config`); unknown rule ids there —
or in a programmatic :class:`AnalysisConfig` — raise
:class:`~repro.exceptions.ConfigurationError` naming the bad id and its
nearest valid neighbour instead of being silently ignored.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.findings import Severity
from repro.exceptions import ConfigurationError

try:  # tomllib is stdlib from Python 3.11; no third-party fallback is baked in.
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10 CI leg
    tomllib = None  # type: ignore[assignment]

#: Whether TOML parsing (and hence pyproject discovery) is available.
HAVE_TOML = tomllib is not None


@dataclass
class RuleConfig:
    """Configuration overrides for a single rule.

    Parameters
    ----------
    enabled:
        Whether the rule runs at all.
    severity:
        Override for the rule's default severity (``None`` keeps it).
    options:
        Rule-specific option overrides, merged over ``default_options``.
    """

    enabled: bool = True
    severity: Severity | None = None
    options: dict = field(default_factory=dict)


@dataclass
class AnalysisConfig:
    """Engine-wide configuration.

    Parameters
    ----------
    rules:
        Mapping from rule id (``"DPL001"``) to its :class:`RuleConfig`.
        Rules absent from the mapping run with pure defaults.
    select:
        When non-empty, only these rule ids/names run.
    ignore:
        Rule ids/names that never run (wins over ``select``).
    exclude_parts:
        Path components that exclude a file from analysis entirely.
    require_pragma_justification:
        When true, a ``# dplint: disable=...`` pragma without trailing
        justification text is itself reported (rule ``DPL000``).
    """

    rules: dict[str, RuleConfig] = field(default_factory=dict)
    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    exclude_parts: frozenset[str] = frozenset(
        {".git", "__pycache__", ".venv", "build", "dist", "egg-info"}
    )
    require_pragma_justification: bool = True

    def rule_config(self, rule_id: str) -> RuleConfig:
        """The (possibly default) :class:`RuleConfig` for ``rule_id``."""
        return self.rules.setdefault(rule_id, RuleConfig())

    def is_enabled(self, rule_id: str, rule_name: str) -> bool:
        """Whether a rule should run under select/ignore/enabled settings."""
        keys = {rule_id, rule_name}
        if keys & self.ignore:
            return False
        if self.select and not (keys & self.select):
            return False
        return self.rule_config(rule_id).enabled

    def rule_option(self, rule_id: str, option: str, default):
        """Resolve one option for a rule: override if present, else default.

        Parameters
        ----------
        rule_id:
            Rule whose option is read.
        option:
            Option name as declared in the rule's ``default_options``.
        default:
            Value used when no override exists.
        """
        return self.rule_config(rule_id).options.get(option, default)

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        """The effective severity for a rule."""
        override = self.rule_config(rule_id).severity
        return default if override is None else override

    def validate_rule_keys(self, known_keys: frozenset[str]) -> None:
        """Fail loudly on unknown rule ids/names anywhere in this config.

        A typo'd key in ``rules``, ``select``, or ``ignore`` would
        otherwise configure nothing: the intended rule runs with pure
        defaults (or never runs), and a CI gate passes vacuously.

        Parameters
        ----------
        known_keys:
            Every valid rule id and name (from the registry).
        """
        _reject_unknown_keys(self.rules, known_keys, where="rules")
        _reject_unknown_keys(self.select, known_keys, where="select")
        _reject_unknown_keys(self.ignore, known_keys, where="ignore")


def _reject_unknown_keys(
    keys: Iterable[str], known_keys: frozenset[str], *, where: str
) -> None:
    from repro.analysis.pragmas import nearest_rule_key

    for key in sorted(keys):
        if key in known_keys or key == "all":
            continue
        nearest = nearest_rule_key(key, known_keys)
        hint = f"; did you mean {nearest!r}?" if nearest else ""
        raise ConfigurationError(
            f"unknown rule {key!r} in dplint config ({where}){hint} "
            "— see `repro lint --list-rules` for the catalog"
        )


def config_from_mapping(
    section: Mapping[str, Any], *, source: str = "[tool.dplint]"
) -> AnalysisConfig:
    """Build an :class:`AnalysisConfig` from a ``[tool.dplint]`` mapping.

    Recognized keys: ``select`` / ``ignore`` (lists of rule ids or names),
    ``require_pragma_justification`` (bool), ``exclude`` (extra path
    components to skip), and a ``rules.<ID>`` table per rule with
    ``enabled`` (bool), ``severity`` (``"info"``/``"warning"``/``"error"``),
    and ``options`` (rule-specific overrides). Anything unknown — a stray
    top-level key, a rule id that does not exist, a bad severity name —
    raises :class:`~repro.exceptions.ConfigurationError` naming the
    offender and, for rule keys, the nearest valid id.

    Parameters
    ----------
    section:
        The parsed ``[tool.dplint]`` table.
    source:
        Human-readable origin used in error messages.
    """
    from repro.analysis.registry import known_rule_keys

    known = known_rule_keys()
    allowed = {
        "select",
        "ignore",
        "exclude",
        "require_pragma_justification",
        "rules",
    }
    stray = sorted(set(section) - allowed)
    if stray:
        raise ConfigurationError(
            f"unknown key(s) {stray} in {source}; expected {sorted(allowed)}"
        )

    def string_list(name: str) -> frozenset[str]:
        raw = section.get(name, [])
        if not isinstance(raw, (list, tuple)) or not all(
            isinstance(item, str) for item in raw
        ):
            raise ConfigurationError(
                f"{source}: {name} must be a list of strings, got {raw!r}"
            )
        return frozenset(raw)

    select = string_list("select")
    ignore = string_list("ignore")
    extra_exclude = string_list("exclude")

    require = section.get("require_pragma_justification", True)
    if not isinstance(require, bool):
        raise ConfigurationError(
            f"{source}: require_pragma_justification must be a bool, "
            f"got {require!r}"
        )

    rules_table = section.get("rules", {})
    if not isinstance(rules_table, Mapping):
        raise ConfigurationError(
            f"{source}: rules must be a table of per-rule settings"
        )
    rules: dict[str, RuleConfig] = {}
    for rule_key, raw_rule in rules_table.items():
        _reject_unknown_keys([rule_key], known, where=f"{source} rules")
        if not isinstance(raw_rule, Mapping):
            raise ConfigurationError(
                f"{source}: rules.{rule_key} must be a table"
            )
        stray_rule = sorted(set(raw_rule) - {"enabled", "severity", "options"})
        if stray_rule:
            raise ConfigurationError(
                f"{source}: unknown key(s) {stray_rule} in rules.{rule_key}"
            )
        enabled = raw_rule.get("enabled", True)
        if not isinstance(enabled, bool):
            raise ConfigurationError(
                f"{source}: rules.{rule_key}.enabled must be a bool"
            )
        severity: Severity | None = None
        if "severity" in raw_rule:
            try:
                severity = Severity.from_name(str(raw_rule["severity"]))
            except ValueError as error:
                raise ConfigurationError(
                    f"{source}: rules.{rule_key}.severity: {error}"
                ) from None
        options = raw_rule.get("options", {})
        if not isinstance(options, Mapping):
            raise ConfigurationError(
                f"{source}: rules.{rule_key}.options must be a table"
            )
        # TOML arrays arrive as lists; rules expect hashable tuples.
        normalized = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in options.items()
        }
        rules[rule_key] = RuleConfig(
            enabled=enabled, severity=severity, options=dict(normalized)
        )

    config = AnalysisConfig(
        rules=rules,
        select=select,
        ignore=ignore,
        exclude_parts=AnalysisConfig().exclude_parts | extra_exclude,
        require_pragma_justification=require,
    )
    config.validate_rule_keys(known)
    return config


def load_pyproject_config(path: str | Path) -> AnalysisConfig | None:
    """Load dplint configuration from a ``pyproject.toml`` file.

    Returns ``None`` when the file has no ``[tool.dplint]`` table, so
    callers can fall back to pure defaults; malformed TOML or an invalid
    table raises :class:`~repro.exceptions.ConfigurationError`.

    Parameters
    ----------
    path:
        Path to a ``pyproject.toml``.
    """
    path = Path(path)
    if tomllib is None:
        raise ConfigurationError(
            "reading pyproject.toml needs the stdlib tomllib (Python >= 3.11)"
        )
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ConfigurationError(f"cannot read {path}: {error}") from error
    except tomllib.TOMLDecodeError as error:
        raise ConfigurationError(f"{path} is not valid TOML: {error}") from error
    section = data.get("tool", {}).get("dplint")
    if section is None:
        return None
    if not isinstance(section, Mapping):
        raise ConfigurationError(f"{path}: [tool.dplint] must be a table")
    return config_from_mapping(section, source=f"{path} [tool.dplint]")


def discover_pyproject(start: str | Path | None = None) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd).

    Parameters
    ----------
    start:
        Directory to begin the upward walk from.
    """
    directory = Path(start) if start is not None else Path.cwd()
    directory = directory.resolve()
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
