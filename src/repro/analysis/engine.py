"""The ``dplint`` engine: file collection, rule dispatch, suppression.

:class:`Analyzer` walks the requested paths, parses each Python file once,
runs every enabled rule over the shared AST, filters findings through the
inline-pragma suppression index, and returns an :class:`AnalysisReport`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import pragma_findings, scan_pragmas
from repro.analysis.registry import all_rules, known_rule_keys
from repro.exceptions import ValidationError

#: Root package name used to resolve a file's location inside the library.
PACKAGE_ROOT = "repro"


def package_parts(path: str) -> tuple[str, ...]:
    """Path components below the ``repro`` package root.

    For ``/repo/src/repro/mechanisms/laplace.py`` this is
    ``("mechanisms", "laplace.py")``. Synthetic relative paths used by the
    rule unit tests (``"mechanisms/snippet.py"``) pass through unchanged,
    so fixtures can target package-scoped rules without a real tree.

    Parameters
    ----------
    path:
        Absolute or relative path to a Python file.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == PACKAGE_ROOT:
            below = parts[index + 1 :]
            if below:
                return below
    return parts


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run.

    Parameters
    ----------
    findings:
        Unsuppressed findings, sorted by location.
    files_checked:
        Number of Python files parsed.
    suppressed_count:
        Findings hidden by ``# dplint: disable`` pragmas.
    """

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0

    @property
    def ok(self) -> bool:
        """True when no findings survived suppression."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 findings."""
        return 0 if self.ok else 1

    def count_by_severity(self) -> dict[str, int]:
        """Finding counts keyed by severity name."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def count_by_rule(self) -> dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


class Analyzer:
    """Run the registered rules over files, directories, or raw source.

    Parameters
    ----------
    config:
        Analysis configuration; defaults to :class:`AnalysisConfig` with
        every rule enabled at its default options.
    rules:
        Rule classes to run; defaults to the full registry.
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        rules: Sequence[type[Rule]] | None = None,
    ) -> None:
        self.config = config or AnalysisConfig()
        rule_classes = list(rules) if rules is not None else all_rules()
        self.rules: list[Rule] = [
            rule_class()
            for rule_class in rule_classes
            if self.config.is_enabled(rule_class.id, rule_class.name)
        ]
        self._known_keys = known_rule_keys()

    def analyze_paths(self, paths: Iterable[str]) -> AnalysisReport:
        """Analyze files and directories (recursively, ``*.py`` only).

        Parameters
        ----------
        paths:
            Files or directories; directories are walked recursively,
            skipping components in ``config.exclude_parts``.
        """
        report = AnalysisReport()
        for file_path in self._collect(paths):
            self._analyze_into(
                report, file_path.read_text(encoding="utf-8"), str(file_path)
            )
        report.findings.sort()
        return report

    def analyze_source(self, source: str, path: str) -> AnalysisReport:
        """Analyze one in-memory module as if it lived at ``path``.

        Parameters
        ----------
        source:
            Python source text.
        path:
            Path used for findings *and* for package-scoping rules, e.g.
            ``"mechanisms/snippet.py"``.
        """
        report = AnalysisReport()
        self._analyze_into(report, source, path)
        report.findings.sort()
        return report

    # -- internals -------------------------------------------------------

    def _collect(self, paths: Iterable[str]) -> list[Path]:
        collected: list[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for candidate in sorted(path.rglob("*.py")):
                    if not self._excluded(candidate):
                        collected.append(candidate)
            elif path.is_file():
                collected.append(path)
            else:
                raise ValidationError(f"no such file or directory: {raw}")
        return collected

    def _excluded(self, path: Path) -> bool:
        exclude = self.config.exclude_parts
        return any(
            any(marker in part for marker in exclude) for part in path.parts
        )

    def _analyze_into(
        self, report: AnalysisReport, source: str, path: str
    ) -> None:
        report.files_checked += 1
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            report.findings.append(
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule_id="DPL999",
                    rule_name="syntax-error",
                    severity=Severity.ERROR,
                    message=f"file does not parse: {error.msg}",
                )
            )
            return
        ctx = ModuleContext(
            path=path,
            tree=tree,
            source_lines=source.splitlines(),
            package_parts=package_parts(path),
            config=self.config,
        )
        suppressions = scan_pragmas(source)
        for rule in self.rules:
            for finding in rule.check(ctx):
                keys = frozenset((finding.rule_id, finding.rule_name))
                if suppressions.suppresses(finding.line, keys):
                    report.suppressed_count += 1
                else:
                    report.findings.append(finding)
        report.findings.extend(
            pragma_findings(
                path,
                suppressions,
                self._known_keys,
                require_justification=self.config.require_pragma_justification,
            )
        )


def analyze_paths(
    paths: Iterable[str], config: AnalysisConfig | None = None
) -> AnalysisReport:
    """Convenience wrapper: run the default analyzer over ``paths``.

    Parameters
    ----------
    paths:
        Files or directories to analyze.
    config:
        Optional configuration override.
    """
    return Analyzer(config=config).analyze_paths(paths)


def analyze_source(
    source: str, path: str, config: AnalysisConfig | None = None
) -> AnalysisReport:
    """Convenience wrapper: analyze one in-memory module.

    Parameters
    ----------
    source:
        Python source text.
    path:
        Virtual path controlling finding addresses and package scoping.
    config:
        Optional configuration override.
    """
    return Analyzer(config=config).analyze_source(source, path)
