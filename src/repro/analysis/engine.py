"""The ``dplint`` engine: file collection, rule dispatch, suppression.

:class:`Analyzer` collects the requested paths into one
:class:`~repro.analysis.flow.project.ProjectModel` (every file parsed
exactly once), runs every enabled rule over the shared ASTs — whole-program
flow rules see the full project through ``ctx.project`` — filters findings
through the inline-pragma suppression index, and returns an
:class:`AnalysisReport`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

# Re-exported for backwards compatibility: these lived here before the
# flow subpackage needed them without importing the engine.
from repro.analysis.base import PACKAGE_ROOT, ModuleContext, Rule, package_parts
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.project import ModuleInfo, ProjectModel
from repro.analysis.pragmas import pragma_findings, scan_pragmas
from repro.analysis.registry import all_rules, known_rule_keys
from repro.exceptions import ValidationError

__all__ = [
    "PACKAGE_ROOT",
    "package_parts",
    "AnalysisReport",
    "Analyzer",
    "analyze_paths",
    "analyze_source",
]


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run.

    Parameters
    ----------
    findings:
        Unsuppressed findings, sorted by location.
    files_checked:
        Number of Python files parsed.
    suppressed_count:
        Findings hidden by ``# dplint: disable`` pragmas.
    baselined_count:
        Findings hidden by the suppression baseline file.
    stale_baseline:
        Baseline entries that matched nothing — fixed findings whose
        entries should be removed from the baseline file.
    """

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    baselined_count: int = 0
    stale_baseline: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no findings survived suppression."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 findings."""
        return 0 if self.ok else 1

    def count_by_severity(self) -> dict[str, int]:
        """Finding counts keyed by severity name."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            key = str(finding.severity)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def count_by_rule(self) -> dict[str, int]:
        """Finding counts keyed by rule id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return counts


class Analyzer:
    """Run the registered rules over files, directories, or raw source.

    Parameters
    ----------
    config:
        Analysis configuration; defaults to :class:`AnalysisConfig` with
        every rule enabled at its default options. Unknown rule ids or
        names anywhere in the config raise
        :class:`~repro.exceptions.ConfigurationError` immediately.
    rules:
        Rule classes to run; defaults to the full registry.
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        rules: Sequence[type[Rule]] | None = None,
    ) -> None:
        self.config = config or AnalysisConfig()
        self._known_keys = known_rule_keys()
        self.config.validate_rule_keys(self._known_keys)
        rule_classes = list(rules) if rules is not None else all_rules()
        self.rules: list[Rule] = [
            rule_class()
            for rule_class in rule_classes
            if self.config.is_enabled(rule_class.id, rule_class.name)
        ]

    def analyze_paths(self, paths: Iterable[str]) -> AnalysisReport:
        """Analyze files and directories (recursively, ``*.py`` only).

        Parameters
        ----------
        paths:
            Files or directories; directories are walked recursively,
            skipping components in ``config.exclude_parts``.
        """
        sources = [
            (path.read_text(encoding="utf-8"), display)
            for path, display in self.collect(paths)
        ]
        return self.analyze_sources(sources)

    def analyze_source(self, source: str, path: str) -> AnalysisReport:
        """Analyze one in-memory module as if it lived at ``path``.

        Parameters
        ----------
        source:
            Python source text.
        path:
            Path used for findings *and* for package-scoping rules, e.g.
            ``"mechanisms/snippet.py"``.
        """
        return self.analyze_sources([(source, path)])

    def analyze_sources(
        self, sources: Sequence[tuple[str, str]]
    ) -> AnalysisReport:
        """Analyze in-memory ``(source, path)`` pairs as one project.

        This is the core entry point both path-based and parallel analysis
        route through: the project is parsed once, whole-program rules see
        every module, and findings come back location-sorted.

        Parameters
        ----------
        sources:
            Module source text and the (possibly virtual) path of each.
        """
        project = ProjectModel.from_sources(sources)
        report = AnalysisReport()
        for info in project.modules:
            self._analyze_module(report, info, project)
        report.findings.sort()
        return report

    # -- internals -------------------------------------------------------

    def collect(self, paths: Iterable[str]) -> list[tuple[Path, str]]:
        """Resolve, dedupe, and stably order the files to analyze.

        Each entry pairs the resolved path (for reading) with the display
        path used in findings: relative to the current directory when the
        file is under it, absolute otherwise. Overlapping inputs (a
        directory plus a file inside it, the same file via two spellings)
        collapse to one entry, so no file is analyzed or reported twice.

        Parameters
        ----------
        paths:
            Files or directories as given on the command line.
        """
        resolved: dict[Path, Path] = {}
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not self._excluded(candidate):
                        real = candidate.resolve()
                        resolved.setdefault(real, real)
            elif path.is_file():
                real = path.resolve()
                resolved.setdefault(real, real)
            else:
                raise ValidationError(f"no such file or directory: {raw}")
        cwd = Path.cwd().resolve()
        collected = []
        for real in sorted(resolved):
            try:
                display = str(real.relative_to(cwd))
            except ValueError:
                display = str(real)
            collected.append((real, display))
        return collected

    def _collect(self, paths: Iterable[str]) -> list[Path]:
        """Deprecated spelling of :meth:`collect` returning bare paths.

        Parameters
        ----------
        paths:
            Files or directories as given on the command line.
        """
        return [path for path, _ in self.collect(paths)]

    def _excluded(self, path: Path) -> bool:
        exclude = self.config.exclude_parts
        return any(
            any(marker in part for marker in exclude) for part in path.parts
        )

    def _analyze_module(
        self, report: AnalysisReport, info: ModuleInfo, project: ProjectModel
    ) -> None:
        report.files_checked += 1
        if info.tree is None:
            error = info.error
            report.findings.append(
                Finding(
                    path=info.path,
                    line=(error.lineno if error else None) or 1,
                    column=((error.offset if error else None) or 1) - 1,
                    rule_id="DPL999",
                    rule_name="syntax-error",
                    severity=Severity.ERROR,
                    message=(
                        f"file does not parse: {error.msg if error else 'unknown'}"
                    ),
                )
            )
            return
        ctx = ModuleContext(
            path=info.path,
            tree=info.tree,
            source_lines=info.source_lines,
            package_parts=info.package_parts,
            config=self.config,
            project=project,
        )
        suppressions = scan_pragmas(info.source)
        for rule in self.rules:
            for finding in rule.check(ctx):
                keys = frozenset((finding.rule_id, finding.rule_name))
                if suppressions.suppresses(
                    finding.line, keys, end_line=finding.end_line
                ):
                    report.suppressed_count += 1
                else:
                    report.findings.append(finding)
        report.findings.extend(
            pragma_findings(
                info.path,
                suppressions,
                self._known_keys,
                require_justification=self.config.require_pragma_justification,
            )
        )


def analyze_paths(
    paths: Iterable[str], config: AnalysisConfig | None = None
) -> AnalysisReport:
    """Convenience wrapper: run the default analyzer over ``paths``.

    Parameters
    ----------
    paths:
        Files or directories to analyze.
    config:
        Optional configuration override.
    """
    return Analyzer(config=config).analyze_paths(paths)


def analyze_source(
    source: str, path: str, config: AnalysisConfig | None = None
) -> AnalysisReport:
    """Convenience wrapper: analyze one in-memory module.

    Parameters
    ----------
    source:
        Python source text.
    path:
        Virtual path controlling finding addresses and package scoping.
    config:
        Optional configuration override.
    """
    return Analyzer(config=config).analyze_source(source, path)
