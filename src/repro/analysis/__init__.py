"""``dplint`` — static analysis for differential-privacy correctness.

A self-contained AST-based linter enforcing the library's privacy
invariants: RNG injection discipline, mandatory ε/δ/sensitivity
validation, sanctioned-sampler usage, no silent exception swallowing,
explicit ``__all__`` export surfaces, and documented parameter contracts.

Run it as ``python -m repro.analysis src/repro`` or ``repro lint``; see
``docs/STATIC_ANALYSIS.md`` for the rule catalog and the DP failure mode
each rule guards against.
"""

from repro.analysis.base import ImportTracker, ModuleContext, Rule, dotted_name
from repro.analysis.config import AnalysisConfig, RuleConfig
from repro.analysis.engine import (
    AnalysisReport,
    Analyzer,
    analyze_paths,
    analyze_source,
    package_parts,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.pragmas import (
    Pragma,
    SuppressionIndex,
    pragma_findings,
    scan_pragmas,
)
from repro.analysis.registry import all_rules, get_rule, known_rule_keys, register
from repro.analysis.reporting import (
    FORMATS,
    format_json,
    format_report,
    format_rule_catalog,
    format_text,
)

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Analyzer",
    "FORMATS",
    "Finding",
    "ImportTracker",
    "ModuleContext",
    "Pragma",
    "Rule",
    "RuleConfig",
    "Severity",
    "SuppressionIndex",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "dotted_name",
    "format_json",
    "format_report",
    "format_rule_catalog",
    "format_text",
    "get_rule",
    "known_rule_keys",
    "package_parts",
    "pragma_findings",
    "register",
    "scan_pragmas",
]
