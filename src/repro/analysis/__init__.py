"""``dplint`` — static analysis for differential-privacy correctness.

A self-contained AST-based linter enforcing the library's privacy
invariants: RNG injection discipline, mandatory ε/δ/sensitivity
validation, sanctioned-sampler usage, no silent exception swallowing,
explicit ``__all__`` export surfaces, and documented parameter contracts —
plus the whole-program ``dpflow`` rules (:mod:`repro.analysis.flow`):
raw-data egress tracking, release accounting, ε drift, loop-release
vectorization, exception taint, and dead-sanitizer detection.

Run it as ``python -m repro.analysis src/repro`` or ``repro lint``
(``--jobs N`` for parallel analysis, ``--format sarif`` for code-scanning
upload, ``--baseline`` for a committed allowlist); see
``docs/STATIC_ANALYSIS.md`` for the rule catalog and the DP failure mode
each rule guards against.
"""

from repro.analysis.base import ImportTracker, ModuleContext, Rule, dotted_name
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    normalize_path,
)
from repro.analysis.config import (
    AnalysisConfig,
    RuleConfig,
    config_from_mapping,
    discover_pyproject,
    load_pyproject_config,
)
from repro.analysis.engine import (
    AnalysisReport,
    Analyzer,
    analyze_paths,
    analyze_source,
    package_parts,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.parallel import analyze_paths_parallel, analyze_sources_parallel
from repro.analysis.pragmas import (
    Pragma,
    SuppressionIndex,
    nearest_rule_key,
    pragma_findings,
    scan_pragmas,
)
from repro.analysis.registry import all_rules, get_rule, known_rule_keys, register
from repro.analysis.reporting import (
    FORMATS,
    format_json,
    format_report,
    format_rule_catalog,
    format_text,
)
from repro.analysis.sarif import format_sarif, sarif_payload

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "FORMATS",
    "Finding",
    "ImportTracker",
    "ModuleContext",
    "Pragma",
    "Rule",
    "RuleConfig",
    "Severity",
    "SuppressionIndex",
    "all_rules",
    "analyze_paths",
    "analyze_paths_parallel",
    "analyze_source",
    "analyze_sources_parallel",
    "apply_baseline",
    "config_from_mapping",
    "discover_pyproject",
    "dotted_name",
    "format_json",
    "format_report",
    "format_rule_catalog",
    "format_sarif",
    "format_text",
    "get_rule",
    "known_rule_keys",
    "load_pyproject_config",
    "nearest_rule_key",
    "normalize_path",
    "package_parts",
    "pragma_findings",
    "register",
    "sarif_payload",
    "scan_pragmas",
]
