"""DPL002 ``validate-privacy-params`` — ε/δ/sensitivity must be validated.

A mechanism constructed with ``epsilon=-1``, ``delta=float("nan")`` or zero
sensitivity produces noise scales that are negative, NaN, or infinite —
the release then either crashes deep inside numpy or, worse, silently adds
no noise while still claiming a privacy guarantee. Every public function
or constructor that accepts one of these parameters must pass it through a
``repro.utils.validation`` checker (or into ``PrivacySpec``/
``from_privacy``, which validate internally) before use.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import (
    ModuleContext,
    Rule,
    dotted_name,
    public_name,
    walk_functions,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register


def _leaf_name(call: ast.Call) -> str:
    name = dotted_name(call.func)
    if name is None:
        return ""
    return name.rsplit(".", 1)[-1]


def _names_in(node: ast.AST) -> set[str]:
    return {
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    }


@register
class ValidatePrivacyParamsRule(Rule):
    """Require a sanctioned validation call for each privacy parameter."""

    id = "DPL002"
    name = "validate-privacy-params"
    description = (
        "Public functions accepting epsilon/delta/sensitivity must pass "
        "each through repro.utils.validation (or PrivacySpec)."
    )
    rationale = (
        "Unvalidated privacy parameters (negative, zero, NaN, inf) yield "
        "degenerate noise scales: the mechanism may add no noise at all "
        "while its PrivacySpec still advertises a guarantee."
    )
    default_severity = Severity.ERROR
    default_options = {
        "packages": (
            "mechanisms",
            "distributions",
            "private_learning",
            "privacy",
            "local_privacy",
            "testing",
            "observability",
            "serving",
        ),
        "param_names": ("epsilon", "delta", "sensitivity"),
        # Call targets (matched on the final dotted segment) that count as
        # validating an argument passed to them.
        "validators": (
            "check_positive",
            "check_in_range",
            "check_array",
            "check_probability_vector",
            "check_epsilon_delta",
            "PrivacySpec",
            "from_privacy",
        ),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding per unvalidated privacy parameter."""
        if not self.applies_to(ctx):
            return
        param_names = set(self.option(ctx, "param_names"))
        validators = set(self.option(ctx, "validators"))
        for func, owner in walk_functions(ctx.tree):
            is_init = func.name == "__init__"
            if not (public_name(func.name) or is_init):
                continue
            if owner is not None and not public_name(owner.name):
                continue
            declared = {
                arg.arg
                for arg in (
                    func.args.posonlyargs + func.args.args + func.args.kwonlyargs
                )
            } & param_names
            if not declared:
                continue
            validated: set[str] = set()
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if _leaf_name(node) not in validators:
                    continue
                referenced = set()
                for arg in node.args:
                    referenced |= _names_in(arg)
                for keyword in node.keywords:
                    referenced |= _names_in(keyword.value)
                validated |= referenced & declared
            for missing in sorted(declared - validated):
                where = (
                    f"{owner.name}.{func.name}" if owner is not None else func.name
                )
                yield self.finding(
                    ctx,
                    func,
                    f"{where} accepts {missing!r} but never passes it "
                    "through a validator "
                    f"({', '.join(sorted(validators))})",
                )
