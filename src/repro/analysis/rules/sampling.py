"""DPL003 ``no-naive-sampling`` — heavy-tailed noise comes from one place.

Hand-rolled Laplace/exponential/Gumbel draws scattered across mechanism
code are how the classic floating-point attacks (Mironov 2012) slip in:
``-scale * log(u)`` style transforms on double-precision uniforms produce
an output set whose gaps distinguish neighbouring datasets. Keeping every
heavy-tailed sampler inside :mod:`repro.distributions` gives one audited
choke point; mechanisms must call the noise-law objects there instead of
``rng.laplace`` / ``rng.exponential`` / ``rng.gumbel`` directly.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import ModuleContext, Rule, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register


@register
class NoNaiveSamplingRule(Rule):
    """Forbid direct heavy-tailed RNG method calls outside distributions/."""

    id = "DPL003"
    name = "no-naive-sampling"
    description = (
        "Laplace/exponential/Gumbel variates must come from the sanctioned "
        "samplers in repro.distributions, not ad-hoc rng method calls."
    )
    rationale = (
        "Naive floating-point sampling of heavy-tailed noise leaks bits of "
        "the true value through the discrete structure of doubles "
        "(Mironov's snapping attack); a single audited sampler module "
        "bounds the attack surface."
    )
    default_severity = Severity.ERROR
    default_options = {
        "packages": (
            "mechanisms",
            "private_learning",
            "privacy",
            "local_privacy",
            "core",
            "testing",
            "observability",
            "serving",
        ),
        # RNG method names whose direct use is reserved to the sanctioned
        # sampler modules.
        "methods": (
            "laplace",
            "exponential",
            "standard_exponential",
            "gumbel",
            "standard_cauchy",
        ),
        # Modules (relative to the repro package root) allowed to draw
        # heavy-tailed variates directly.
        "sanctioned_modules": (
            "distributions/sampling.py",
            "distributions/continuous.py",
            "distributions/discrete.py",
        ),
        # Suspicious log-of-uniform idioms: calls to log on a uniform draw.
        "flag_log_uniform": True,
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for unsanctioned heavy-tailed draws."""
        if not self.applies_to(ctx):
            return
        if ctx.module_relpath in set(self.option(ctx, "sanctioned_modules")):
            return
        methods = set(self.option(ctx, "methods"))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in methods
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"direct .{node.func.attr}() draw outside the sanctioned "
                    "samplers; use the noise laws in repro.distributions",
                )
            elif self.option(ctx, "flag_log_uniform") and self._is_log_of_uniform(
                node, ctx
            ):
                yield self.finding(
                    ctx,
                    node,
                    "log(uniform(...)) inverse-CDF idiom implements naive "
                    "floating-point heavy-tailed sampling; use the "
                    "sanctioned samplers in repro.distributions",
                )

    @staticmethod
    def _is_log_of_uniform(node: ast.Call, ctx: ModuleContext) -> bool:
        """Whether ``node`` is ``log(... uniform(...) ...)``."""
        name = dotted_name(node.func)
        if name is None:
            return False
        resolved = ctx.imports.resolve(name)
        if resolved.rsplit(".", 1)[-1] not in ("log", "log1p"):
            return False
        for arg in node.args:
            for child in ast.walk(arg):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in ("uniform", "random")
                ):
                    return True
        return False
