"""DPL004 ``no-silent-except`` — failures must not skip noise addition.

A ``try``/``except`` that swallows an exception around a release path is a
privacy bug waiting to happen: if the noise draw or calibration raises and
the handler just continues, the mechanism can return an un-noised (or
under-noised) value while still advertising its guarantee. Bare
``except:`` additionally catches ``KeyboardInterrupt``/``SystemExit``,
hiding operator aborts mid-release.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import ModuleContext, Rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register


def _is_swallowed(handler: ast.ExceptHandler) -> bool:
    """A handler body that does nothing: only ``pass``/``...`` statements."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register
class NoSilentExceptRule(Rule):
    """Forbid bare and swallowing exception handlers in privacy code."""

    id = "DPL004"
    name = "no-silent-except"
    description = (
        "No bare `except:` and no exception handlers that only `pass` in "
        "mechanism/privacy code."
    )
    rationale = (
        "A swallowed exception on the release path can skip noise addition "
        "entirely while the mechanism still reports its nominal epsilon — "
        "the worst possible failure mode for a DP library."
    )
    default_severity = Severity.ERROR
    default_options = {
        "packages": (
            "mechanisms",
            "privacy",
            "local_privacy",
            "private_learning",
            "analysis",
            "testing",
            "observability",
            "serving",
        ),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for bare or swallowing handlers."""
        if not self.applies_to(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; name the exception type",
                )
            elif _is_swallowed(node):
                yield self.finding(
                    ctx,
                    node,
                    "exception handler silently swallows the error; on the "
                    "release path this can skip noise addition — handle or "
                    "re-raise",
                )
