"""DPL006 ``docstring-parameters`` — public API documents its contract.

DP code is contract-heavy: whether ``epsilon`` is per-release or total,
whether ``sensitivity`` is L1 or L2, and which neighbouring relation is
assumed all change the guarantee without changing the signature. A public
function with several parameters and no ``Parameters`` section forces
callers to read the implementation — and mis-set privacy knobs are silent.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import (
    ModuleContext,
    Rule,
    public_name,
    walk_functions,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register


def _documentable_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    args = func.args
    names = [
        arg.arg
        for arg in (args.posonlyargs + args.args + args.kwonlyargs)
        if arg.arg not in ("self", "cls")
    ]
    return len(names)


def _has_decorator(func: ast.FunctionDef | ast.AsyncFunctionDef, name: str) -> bool:
    for decorator in func.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Attribute) and target.attr == name:
            return True
        if isinstance(target, ast.Name) and target.id == name:
            return True
    return False


@register
class DocstringParametersRule(Rule):
    """Public defs need docstrings; multi-parameter ones need Parameters."""

    id = "DPL006"
    name = "docstring-parameters"
    description = (
        "Public functions/methods must have a docstring; those with >= "
        "min_params parameters must document them in a Parameters section "
        "(for __init__, on the class docstring)."
    )
    rationale = (
        "Privacy parameters are easy to mis-set silently (per-release vs "
        "total epsilon, L1 vs L2 sensitivity); the Parameters section is "
        "where that contract lives."
    )
    default_severity = Severity.WARNING
    default_options = {
        "packages": (
            "mechanisms",
            "distributions",
            "private_learning",
            "privacy",
            "local_privacy",
            "analysis",
            "testing",
            "observability",
            "serving",
        ),
        # Parameters section required from this many documentable params.
        "min_params": 2,
        "section_marker": "Parameters",
        # Dunder methods other than __init__ never need docstrings here.
        "require_on_overrides": True,
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for undocumented public API."""
        if not self.applies_to(ctx):
            return
        marker = self.option(ctx, "section_marker")
        min_params = int(self.option(ctx, "min_params"))
        for func, owner in walk_functions(ctx.tree):
            is_init = func.name == "__init__"
            if func.name.startswith("__") and not is_init:
                continue
            if not (public_name(func.name) or is_init):
                continue
            if owner is not None and not public_name(owner.name):
                continue
            where = (
                f"{owner.name}.{func.name}" if owner is not None else func.name
            )
            # __init__ follows numpydoc convention: parameters are
            # documented on the class docstring.
            doc_node: ast.AST = func
            doc = ast.get_docstring(func)
            if is_init:
                if owner is None:
                    continue
                doc_node = owner
                doc = ast.get_docstring(owner)
                where = owner.name
            if doc is None:
                yield self.finding(
                    ctx, doc_node, f"public API {where} has no docstring"
                )
                continue
            if _has_decorator(func, "property") or _has_decorator(
                func, "setter"
            ):
                continue
            # The Parameters contract is enforced where it lives by
            # numpydoc convention: free functions and class docstrings.
            # Plain methods only need a docstring.
            if owner is not None and not is_init:
                continue
            if _documentable_params(func) >= min_params and marker not in doc:
                yield self.finding(
                    ctx,
                    func,
                    f"{where} takes {_documentable_params(func)} parameters "
                    f"but its docstring has no {marker!r} section",
                )
