"""DPL005 ``explicit-exports`` — ``__all__`` is the audited API surface.

The privacy review boundary of each package is its ``__all__``: auditors
check exactly the names exported there. A missing ``__all__`` makes
``from repro.mechanisms import *`` drag in submodules and helpers; a stale
one either advertises names that do not exist (import-time breakage for
consumers) or hides public objects from the audit surface.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import ModuleContext, Rule, public_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register


def _literal_all(tree: ast.Module) -> tuple[ast.AST, list[str]] | None:
    """The ``__all__`` assignment node and its entries, if present."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    entries = [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    return node, entries
                return node, []
    return None


def _bound_names(tree: ast.Module) -> set[str]:
    """All names bound at module top level (defs, classes, imports,
    simple assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


@register
class ExplicitExportsRule(Rule):
    """``__init__.py`` must declare ``__all__`` matching its public names."""

    id = "DPL005"
    name = "explicit-exports"
    description = (
        "Every package __init__.py declares __all__, every entry is bound, "
        "and every public imported/defined name is listed."
    )
    rationale = (
        "__all__ is the audited privacy-review surface: stale entries break "
        "star-imports, and unlisted public names escape review."
    )
    default_severity = Severity.ERROR
    default_options = {
        # Names a package may bind publicly without exporting (submodule
        # imports made for side effects).
        "ignored_names": (),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for missing, stale, or drifted __all__."""
        if not ctx.is_package_init:
            return
        found = _literal_all(ctx.tree)
        if found is None:
            yield self.finding(
                ctx,
                None,
                "package __init__.py must declare a literal __all__ listing "
                "its public API",
            )
            return
        node, entries = found
        bound = _bound_names(ctx.tree)
        public = {name for name in bound if public_name(name)}
        ignored = set(self.option(ctx, "ignored_names"))
        for phantom in sorted(set(entries) - bound):
            yield self.finding(
                ctx,
                node,
                f"__all__ lists {phantom!r} which is not bound in this "
                "module (stale export)",
            )
        for hidden in sorted(public - set(entries) - ignored - {"annotations"}):
            yield self.finding(
                ctx,
                node,
                f"public name {hidden!r} is bound here but missing from "
                "__all__ (unaudited export)",
            )
        duplicates = {e for e in entries if entries.count(e) > 1}
        for duplicate in sorted(duplicates):
            yield self.finding(
                ctx, node, f"__all__ lists {duplicate!r} more than once"
            )
