"""DPL001 ``rng-discipline`` — all randomness flows through a Generator.

Calling ``numpy.random.*`` module functions (including ``default_rng``) or
the stdlib ``random`` module inside privacy-critical packages creates a
side channel of unseeded, unauditable randomness: a mechanism whose noise
does not come from the caller-injected :class:`numpy.random.Generator`
cannot be made reproducible for audits, and global-state RNGs can be
reseeded by unrelated code, correlating "independent" noise draws. Every
sampling site must take the rng produced by
``repro.utils.validation.check_random_state``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.base import ModuleContext, Rule, dotted_name
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import register


@register
class RngDisciplineRule(Rule):
    """Forbid ``numpy.random.*`` / ``random.*`` calls in scoped packages."""

    id = "DPL001"
    name = "rng-discipline"
    description = (
        "No numpy.random.* or stdlib random.* calls in privacy-critical "
        "packages; inject a numpy.random.Generator instead."
    )
    rationale = (
        "Noise drawn outside the injected Generator is unauditable and may "
        "share global state with unrelated code, silently correlating "
        "draws that DP proofs require to be independent."
    )
    default_severity = Severity.ERROR
    default_options = {
        "packages": (
            "mechanisms",
            "distributions",
            "private_learning",
            "privacy",
            "local_privacy",
            "core",
            "information",
            "learning",
            "testing",
            "observability",
            "serving",
        ),
        # Files allowed to touch numpy.random directly: the single
        # sanctioned Generator factory.
        "allowed_modules": ("utils/validation.py",),
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield a finding for each numpy.random/random call in scope."""
        if not self.applies_to(ctx):
            return
        if ctx.module_relpath in set(self.option(ctx, "allowed_modules")):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            resolved = ctx.imports.resolve(name)
            if resolved.startswith("numpy.random.") or (
                resolved.startswith("random.") and "." not in resolved[7:]
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"call to {resolved} bypasses the injected Generator; "
                    "accept a random_state argument and route it through "
                    "repro.utils.validation.check_random_state",
                )
