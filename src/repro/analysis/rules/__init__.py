"""Built-in ``dplint`` rules, one module per rule.

Importing this package registers every rule with
:mod:`repro.analysis.registry`.
"""

from repro.analysis.rules.rng import RngDisciplineRule
from repro.analysis.rules.validation import ValidatePrivacyParamsRule
from repro.analysis.rules.sampling import NoNaiveSamplingRule
from repro.analysis.rules.exceptions import NoSilentExceptRule
from repro.analysis.rules.exports import ExplicitExportsRule
from repro.analysis.rules.docstrings import DocstringParametersRule

__all__ = [
    "DocstringParametersRule",
    "ExplicitExportsRule",
    "NoNaiveSamplingRule",
    "NoSilentExceptRule",
    "RngDisciplineRule",
    "ValidatePrivacyParamsRule",
]
