"""``python -m repro.analysis`` — run dplint from the command line."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from dataclasses import replace

from repro.analysis.config import (
    HAVE_TOML,
    AnalysisConfig,
    discover_pyproject,
    load_pyproject_config,
)
from repro.analysis.engine import Analyzer
from repro.analysis.registry import known_rule_keys
from repro.analysis.reporting import FORMATS, format_report, format_rule_catalog
from repro.exceptions import ConfigurationError, ValidationError


def build_parser() -> argparse.ArgumentParser:
    """Argument parser shared with the ``repro lint`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "dplint: static analysis of differential-privacy invariants "
            "(RNG discipline, parameter validation, sampler hygiene, "
            "whole-program data-flow)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files across N processes (output is identical to "
        "serial; default: 1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline JSON file; "
        "stale entries are reported",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings to FILE as a baseline (merging "
        "justifications from an existing file) and exit 0",
    )
    parser.add_argument(
        "--config",
        metavar="FILE",
        help="read [tool.dplint] from this pyproject.toml instead of "
        "auto-discovering one",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore any pyproject.toml [tool.dplint] section",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def default_target() -> str:
    """The installed ``repro`` package directory (lintable from anywhere)."""
    import repro

    return str(next(iter(repro.__path__)))


def _load_config(args: argparse.Namespace) -> AnalysisConfig:
    """Resolve the effective config from flags and pyproject discovery.

    Parameters
    ----------
    args:
        Parsed command-line arguments.
    """
    config: AnalysisConfig | None = None
    if not args.no_config:
        if args.config is not None:
            config = load_pyproject_config(args.config)
            if config is None:
                raise ConfigurationError(
                    f"{args.config} has no [tool.dplint] section"
                )
        elif HAVE_TOML:
            pyproject = discover_pyproject()
            if pyproject is not None:
                config = load_pyproject_config(pyproject)
    if config is None:
        config = AnalysisConfig()
    if args.select or args.ignore:
        config = replace(
            config,
            select=config.select | frozenset(args.select),
            ignore=config.ignore | frozenset(args.ignore),
        )
    return config


def execute(args: argparse.Namespace) -> int:
    """Shared implementation behind ``python -m repro.analysis`` and
    ``repro lint``: run the analyzer per parsed arguments, print the
    report, return a process exit code (0 clean, 1 findings, 2 usage).
    """
    if args.list_rules:
        print(format_rule_catalog())
        return 0
    known = known_rule_keys()
    unknown = sorted(
        {key for key in [*args.select, *args.ignore] if key not in known}
    )
    if unknown:
        # A typo'd --select would otherwise select nothing and exit 0,
        # silently passing a CI gate.
        print(
            f"dplint: unknown rule(s): {', '.join(unknown)}; "
            "see --list-rules for the catalog",
            file=sys.stderr,
        )
        return 2
    paths = args.paths or [default_target()]
    try:
        config = _load_config(args)
        if args.jobs > 1:
            from repro.analysis.parallel import analyze_paths_parallel

            report = analyze_paths_parallel(paths, config, jobs=args.jobs)
        else:
            report = Analyzer(config=config).analyze_paths(paths)
        if args.write_baseline:
            from repro.analysis.baseline import Baseline

            justifications = {}
            existing = None
            try:
                existing = Baseline.load(args.write_baseline)
            except ConfigurationError:
                existing = None
            if existing is not None:
                justifications = {
                    entry.key: entry.justification for entry in existing.entries
                }
            Baseline.from_findings(
                report.findings, justifications=justifications
            ).save(args.write_baseline)
            print(
                f"dplint: wrote baseline with "
                f"{len(report.findings)} finding(s) to {args.write_baseline}"
            )
            return 0
        if args.baseline:
            from repro.analysis.baseline import Baseline, apply_baseline

            report = apply_baseline(report, Baseline.load(args.baseline))
    except ValidationError as error:
        # ConfigurationError subclasses ValidationError: both are usage
        # problems, not findings, so they share exit code 2.
        print(f"dplint: {error}", file=sys.stderr)
        return 2
    print(format_report(report, args.format))
    return report.exit_code


def run(argv: Sequence[str] | None = None) -> int:
    """Parse arguments and run the analyzer (console entry point).

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).
    """
    return execute(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(run())
