"""``python -m repro.analysis`` — run dplint from the command line."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import Analyzer
from repro.analysis.registry import known_rule_keys
from repro.analysis.reporting import FORMATS, format_report, format_rule_catalog
from repro.exceptions import ValidationError


def build_parser() -> argparse.ArgumentParser:
    """Argument parser shared with the ``repro lint`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "dplint: static analysis of differential-privacy invariants "
            "(RNG discipline, parameter validation, sampler hygiene)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="skip these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def default_target() -> str:
    """The installed ``repro`` package directory (lintable from anywhere)."""
    import repro

    return str(next(iter(repro.__path__)))


def execute(args: argparse.Namespace) -> int:
    """Shared implementation behind ``python -m repro.analysis`` and
    ``repro lint``: run the analyzer per parsed arguments, print the
    report, return a process exit code (0 clean, 1 findings, 2 usage).
    """
    if args.list_rules:
        print(format_rule_catalog())
        return 0
    known = known_rule_keys()
    unknown = sorted(
        {key for key in [*args.select, *args.ignore] if key not in known}
    )
    if unknown:
        # A typo'd --select would otherwise select nothing and exit 0,
        # silently passing a CI gate.
        print(
            f"dplint: unknown rule(s): {', '.join(unknown)}; "
            "see --list-rules for the catalog",
            file=sys.stderr,
        )
        return 2
    config = AnalysisConfig(
        select=frozenset(args.select), ignore=frozenset(args.ignore)
    )
    paths = args.paths or [default_target()]
    try:
        report = Analyzer(config=config).analyze_paths(paths)
    except ValidationError as error:
        print(f"dplint: {error}", file=sys.stderr)
        return 2
    print(format_report(report, args.format))
    return report.exit_code


def run(argv: Sequence[str] | None = None) -> int:
    """Parse arguments and run the analyzer (console entry point).

    Parameters
    ----------
    argv:
        Argument list (defaults to ``sys.argv[1:]``).
    """
    return execute(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(run())
