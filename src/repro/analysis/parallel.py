"""Process-parallel ``dplint`` with bit-identical output.

``--jobs N`` fans per-module rule dispatch across a process pool. Each
worker receives the **full** source list once (at pool initialization) and
builds the same :class:`~repro.analysis.flow.project.ProjectModel` the
serial analyzer would, so whole-program rules see identical context in
every process; workers then analyze only their assigned modules. Results
are merged in submission order and sorted exactly like the serial path,
which makes parallel output byte-identical to serial — a property the test
suite pins.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import AnalysisReport, Analyzer
from repro.analysis.findings import Finding

__all__ = ["analyze_paths_parallel", "analyze_sources_parallel"]


@dataclass
class _WorkerState:
    """Per-process analyzer state built once by the pool initializer."""

    analyzer: Analyzer
    project: "object"
    suppressions_known: bool = True


_STATE: _WorkerState | None = None


def _init_worker(
    sources: Sequence[tuple[str, str]], config: AnalysisConfig
) -> None:
    """Pool initializer: parse the whole project once per worker process.

    Parameters
    ----------
    sources:
        Every ``(source, path)`` pair of the run.
    config:
        The (picklable) analysis configuration.
    """
    from repro.analysis.flow.project import ProjectModel

    global _STATE
    analyzer = Analyzer(config=config)
    _STATE = _WorkerState(
        analyzer=analyzer, project=ProjectModel.from_sources(sources)
    )


def _analyze_index(index: int) -> tuple[int, list[Finding], int]:
    """Analyze one module of the worker's project by position.

    Parameters
    ----------
    index:
        Position of the module in the shared source list.
    """
    assert _STATE is not None, "worker used before initialization"
    from repro.analysis.flow.project import ProjectModel

    project = _STATE.project
    assert isinstance(project, ProjectModel)
    report = AnalysisReport()
    _STATE.analyzer._analyze_module(report, project.modules[index], project)
    return index, report.findings, report.suppressed_count


def analyze_sources_parallel(
    sources: Sequence[tuple[str, str]],
    config: AnalysisConfig | None = None,
    *,
    jobs: int,
) -> AnalysisReport:
    """Analyze ``(source, path)`` pairs across ``jobs`` processes.

    Parameters
    ----------
    sources:
        Module source text and path pairs, in collection order.
    config:
        Analysis configuration shared by every worker.
    jobs:
        Requested process count; clamped to the number of files. ``jobs
        <= 1`` (or a single file) falls back to the serial analyzer.
    """
    config = config or AnalysisConfig()
    if jobs <= 1 or len(sources) <= 1:
        return Analyzer(config=config).analyze_sources(sources)
    # Validate config (and registry keys) in the parent before forking so
    # a ConfigurationError surfaces once, not once per worker.
    Analyzer(config=config)
    workers = min(jobs, len(sources))
    per_index: dict[int, tuple[list[Finding], int]] = {}
    files_checked = 0
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(tuple(sources), config),
    ) as pool:
        for index, findings, suppressed in pool.map(
            _analyze_index, range(len(sources))
        ):
            per_index[index] = (findings, suppressed)
            files_checked += 1
    report = AnalysisReport(files_checked=files_checked)
    for index in sorted(per_index):
        findings, suppressed = per_index[index]
        report.findings.extend(findings)
        report.suppressed_count += suppressed
    report.findings.sort()
    return report


def analyze_paths_parallel(
    paths: Iterable[str],
    config: AnalysisConfig | None = None,
    *,
    jobs: int,
) -> AnalysisReport:
    """Parallel counterpart of :func:`repro.analysis.engine.analyze_paths`.

    Parameters
    ----------
    paths:
        Files or directories to analyze.
    config:
        Analysis configuration shared by every worker.
    jobs:
        Requested process count (see :func:`analyze_sources_parallel`).
    """
    config = config or AnalysisConfig()
    collector = Analyzer(config=config)
    sources = [
        (path.read_text(encoding="utf-8"), display)
        for path, display in collector.collect(paths)
    ]
    return analyze_sources_parallel(sources, config, jobs=jobs)
