"""Inline suppression pragmas: ``# dplint: disable=<rule>[,<rule>] -- why``.

A pragma suppresses findings of the listed rules (by id or name, or
``all``) on the physical line it sits on. Because a silent suppression is
itself a privacy-review smell, the engine reports pragmas that carry no
justification text, and pragmas naming unknown rules, as ``DPL000``
findings — those cannot be suppressed.
"""

from __future__ import annotations

import difflib
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Severity

#: Pseudo-rule id under which pragma misuse is reported.
PRAGMA_RULE_ID = "DPL000"
PRAGMA_RULE_NAME = "pragma-hygiene"

_PRAGMA_RE = re.compile(
    r"#\s*dplint:\s*disable=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?:\s*--\s*(?P<why>.*))?"
)


@dataclass
class Pragma:
    """One parsed suppression comment.

    Parameters
    ----------
    line:
        1-based line the pragma (and the code it suppresses) sits on.
    column:
        0-based column of the comment token.
    rules:
        Rule ids/names listed after ``disable=`` (may include ``all``).
    justification:
        Text after ``--``; empty when the author gave no reason.
    """

    line: int
    column: int
    rules: tuple[str, ...]
    justification: str = ""


@dataclass
class SuppressionIndex:
    """Per-module index of pragmas, queried by the engine per finding."""

    pragmas: dict[int, Pragma] = field(default_factory=dict)

    def suppresses(
        self, line: int, rule_keys: frozenset[str], end_line: int | None = None
    ) -> bool:
        """Whether a finding spanning ``line``..``end_line`` for any key in
        ``rule_keys`` is suppressed by a pragma on one of those lines.

        Multi-line constructs (a call whose arguments wrap, a comprehension
        split for readability) are suppressible from any physical line of
        the span, so the pragma can sit on the continuation line where the
        offending argument actually lives.

        Parameters
        ----------
        line:
            First 1-based finding line.
        rule_keys:
            The finding's rule id and name (both accepted in pragmas).
        end_line:
            Last 1-based line of the construct (defaults to ``line``).
        """
        last = max(line, end_line or line)
        for candidate in range(line, last + 1):
            pragma = self.pragmas.get(candidate)
            if pragma is None:
                continue
            listed = set(pragma.rules)
            if "all" in listed or listed & set(rule_keys):
                return True
        return False


def nearest_rule_key(key: str, known_keys: frozenset[str]) -> str | None:
    """Closest valid rule id/name to a mistyped ``key`` (``None`` if far off).

    Parameters
    ----------
    key:
        The unknown rule id or name as written.
    known_keys:
        Every valid rule id and name.
    """
    matches = difflib.get_close_matches(key, sorted(known_keys), n=1, cutoff=0.4)
    return matches[0] if matches else None


def scan_pragmas(source: str) -> SuppressionIndex:
    """Tokenize ``source`` and index every ``dplint: disable`` comment.

    Using the tokenizer (rather than a per-line regex) means pragma-looking
    text inside string literals is never misread as a suppression.
    """
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",")
            )
            index.pragmas[token.start[0]] = Pragma(
                line=token.start[0],
                column=token.start[1],
                rules=rules,
                justification=(match.group("why") or "").strip(),
            )
    except (tokenize.TokenError, IndentationError):
        # The file does not tokenize; the engine reports the parse error,
        # so return whatever pragmas were seen before the bad token.
        return index
    return index


def pragma_findings(
    path: str,
    index: SuppressionIndex,
    known_keys: frozenset[str],
    *,
    require_justification: bool = True,
) -> list[Finding]:
    """Findings for malformed pragmas (unknown rules, missing justification).

    Parameters
    ----------
    path:
        File path used in the findings.
    index:
        Pragmas scanned from the file.
    known_keys:
        Valid rule ids and names; anything else in a pragma is reported.
    require_justification:
        When true, pragmas without ``-- <reason>`` text are reported.
    """
    findings = []
    for pragma in index.pragmas.values():
        unknown = [
            key for key in pragma.rules if key != "all" and key not in known_keys
        ]
        if unknown:
            hints = []
            for key in unknown:
                nearest = nearest_rule_key(key, known_keys)
                hints.append(
                    f"{key!r}" + (f" (did you mean {nearest!r}?)" if nearest else "")
                )
            findings.append(
                Finding(
                    path=path,
                    line=pragma.line,
                    column=pragma.column,
                    rule_id=PRAGMA_RULE_ID,
                    rule_name=PRAGMA_RULE_NAME,
                    severity=Severity.WARNING,
                    message=(
                        f"pragma disables unknown rule(s) {', '.join(hints)}; "
                        "check the rule catalog"
                    ),
                )
            )
        if require_justification and not pragma.justification:
            findings.append(
                Finding(
                    path=path,
                    line=pragma.line,
                    column=pragma.column,
                    rule_id=PRAGMA_RULE_ID,
                    rule_name=PRAGMA_RULE_NAME,
                    severity=Severity.WARNING,
                    message=(
                        "suppression pragma lacks a justification; write "
                        "'# dplint: disable=<rule> -- <reason>'"
                    ),
                )
            )
    return findings
