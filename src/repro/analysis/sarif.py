"""SARIF 2.1.0 rendering of ``dplint`` reports.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it lets the privacy lint annotate pull requests like
any other analyzer. The document carries the full rule catalog in
``tool.driver.rules`` (so viewers can show descriptions and rationale) and
one ``result`` per finding, emitted **after** baseline filtering — the
upload should only show actionable findings.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import AnalysisReport
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import all_rules

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "sarif_payload", "format_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: dplint severities → SARIF result levels.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: Findings the engine emits outside the rule registry.
_SYNTHETIC_RULES = (
    ("DPL000", "pragma-hygiene", "Suppression pragmas must be well-formed."),
    ("DPL999", "syntax-error", "Files must parse."),
)


def _rule_catalog() -> tuple[list[dict[str, Any]], dict[str, int]]:
    rules: list[dict[str, Any]] = []
    index: dict[str, int] = {}
    entries: list[tuple[str, str, str, str]] = [
        (rule_id, name, description, "")
        for rule_id, name, description in _SYNTHETIC_RULES
    ]
    entries.extend(
        (
            rule_class.id,
            rule_class.name,
            rule_class.description,
            rule_class.rationale,
        )
        for rule_class in all_rules()
    )
    for rule_id, name, description, rationale in sorted(entries):
        index[rule_id] = len(rules)
        descriptor: dict[str, Any] = {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": description},
        }
        if rationale:
            descriptor["fullDescription"] = {"text": rationale}
        rules.append(descriptor)
    return rules, index


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, Any]:
    region: dict[str, Any] = {
        "startLine": finding.line,
        "startColumn": finding.column + 1,
    }
    if finding.end_line is not None:
        region["endLine"] = finding.end_line
    result: dict[str, Any] = {
        "ruleId": finding.rule_id,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                    "region": region,
                }
            }
        ],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    return result


def sarif_payload(report: AnalysisReport) -> dict[str, Any]:
    """The report as a SARIF 2.1.0 document (plain dict).

    Parameters
    ----------
    report:
        Analyzer outcome — apply the baseline first so the document only
        carries actionable findings.
    """
    rules, rule_index = _rule_catalog()
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "dplint",
                        "rules": rules,
                    }
                },
                "results": [
                    _result(finding, rule_index) for finding in report.findings
                ],
            }
        ],
    }


def format_sarif(report: AnalysisReport) -> str:
    """Serialize :func:`sarif_payload` with stable keys.

    Parameters
    ----------
    report:
        Analyzer outcome to render.
    """
    return json.dumps(sarif_payload(report), indent=2, sort_keys=True)
