"""Finding and severity model for the ``dplint`` static analyzer.

A :class:`Finding` is one rule violation, addressed ``path:line:column`` so
editors and CI logs can jump straight to the offending code. Findings are
plain data — formatting lives in :mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; ordering allows threshold filtering."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Parse ``"info"`` / ``"warning"`` / ``"error"`` (case-insensitive).

        Parameters
        ----------
        name:
            Severity name to parse.
        """
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Parameters
    ----------
    path:
        File the violation was found in (as given to the analyzer).
    line:
        1-based line number.
    column:
        0-based column offset.
    rule_id:
        Stable rule identifier, e.g. ``"DPL001"``.
    rule_name:
        Human-readable rule slug, e.g. ``"rng-discipline"``.
    severity:
        The finding's :class:`Severity`.
    message:
        One-line description of what is wrong and how to fix it.
    end_line:
        Last 1-based line of the offending construct (``None`` when the
        construct is single-line). Suppression pragmas on *any* physical
        line of the span waive the finding, so a pragma on a continuation
        line of a multi-line call still works.
    """

    path: str
    line: int
    column: int
    rule_id: str = field(compare=False)
    rule_name: str = field(compare=False)
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    end_line: int | None = field(compare=False, default=None)

    @property
    def line_span(self) -> tuple[int, int]:
        """First and last physical line covered by this finding."""
        return self.line, max(self.line, self.end_line or self.line)

    @property
    def location(self) -> str:
        """``path:line:column`` address of this finding."""
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> dict:
        """JSON-serializable representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
        }

    def __str__(self) -> str:
        return (
            f"{self.location}: {self.rule_id} [{self.rule_name}] "
            f"{self.severity}: {self.message}"
        )
