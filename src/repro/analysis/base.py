"""Rule framework: the context handed to rules and the ``Rule`` interface.

A rule receives one parsed module at a time wrapped in a
:class:`ModuleContext` (AST, source lines, resolved package location, and
the active :class:`~repro.analysis.config.AnalysisConfig`) and yields
:class:`~repro.analysis.findings.Finding` objects. Shared AST utilities —
dotted-name rendering and import-alias resolution — live here so individual
rules stay small.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.flow.project import ProjectModel

#: Root package name used to resolve a file's location inside the library.
PACKAGE_ROOT = "repro"


def package_parts(path: str) -> tuple[str, ...]:
    """Path components below the ``repro`` package root.

    For ``/repo/src/repro/mechanisms/laplace.py`` this is
    ``("mechanisms", "laplace.py")``. Synthetic relative paths used by the
    rule unit tests (``"mechanisms/snippet.py"``) pass through unchanged,
    so fixtures can target package-scoped rules without a real tree.

    Parameters
    ----------
    path:
        Absolute or relative path to a Python file.
    """
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == PACKAGE_ROOT:
            below = parts[index + 1 :]
            if below:
                return below
    return parts


def dotted_name(node: ast.AST) -> str | None:
    """Render an ``ast.Name``/``ast.Attribute`` chain as ``"a.b.c"``.

    Returns ``None`` for anything that is not a pure attribute chain
    (subscripts, calls, literals …).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportTracker(ast.NodeVisitor):
    """Map local names to the canonical modules/objects they alias.

    ``import numpy as np`` maps ``np → numpy``; ``from numpy import random
    as nr`` maps ``nr → numpy.random``; ``from random import gauss`` maps
    ``gauss → random.gauss``. :meth:`resolve` canonicalizes a dotted name
    by substituting its first segment, so ``np.random.laplace`` becomes
    ``numpy.random.laplace`` regardless of the alias used.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        self.visit(tree)

    def visit_Import(self, node: ast.Import) -> None:
        """Record ``import a.b [as c]`` aliases."""
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Record ``from a import b [as c]`` aliases."""
        if node.module is None or node.level:
            return  # relative imports never hide numpy/random
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str:
        """Canonical dotted name for ``name`` under the module's imports."""
        head, _, rest = name.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module.

    Parameters
    ----------
    path:
        Path string used in findings (as supplied by the caller).
    tree:
        Parsed ``ast.Module``.
    source_lines:
        The module's source split into lines (1-based access via
        :meth:`line`).
    package_parts:
        Path components *below* the ``repro`` package root, e.g.
        ``("mechanisms", "laplace.py")``. Synthetic paths used in tests
        (``"mechanisms/snippet.py"``) resolve the same way.
    config:
        Active analysis configuration.
    project:
        Whole-program :class:`~repro.analysis.flow.project.ProjectModel`
        covering every module in the analyzed set. ``None`` only when a
        rule is driven outside the engine; flow rules fall back to a
        single-module project in that case.
    """

    path: str
    tree: ast.Module
    source_lines: list[str]
    package_parts: tuple[str, ...]
    config: AnalysisConfig
    project: "ProjectModel | None" = None
    _imports: ImportTracker | None = field(default=None, repr=False)

    @property
    def imports(self) -> ImportTracker:
        """Lazily-built import alias tracker for this module."""
        if self._imports is None:
            self._imports = ImportTracker(self.tree)
        return self._imports

    @property
    def package(self) -> str:
        """First-level package the module lives in (``""`` at the root)."""
        return self.package_parts[0] if len(self.package_parts) > 1 else ""

    @property
    def module_relpath(self) -> str:
        """Module path relative to the ``repro`` package root."""
        return "/".join(self.package_parts)

    @property
    def is_package_init(self) -> bool:
        """Whether this module is an ``__init__.py``."""
        return self.package_parts[-1] == "__init__.py"

    def line(self, lineno: int) -> str:
        """Source text of 1-based line ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


class Rule(abc.ABC):
    """One static-analysis check.

    Subclasses define the class attributes ``id`` (stable ``DPLxxx``
    identifier), ``name`` (kebab-case slug usable in pragmas and
    ``--select``), ``description``, ``rationale`` (the DP failure mode the
    rule guards against), ``default_severity``, and ``default_options``,
    and implement :meth:`check` as a generator of findings.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""
    default_severity: Severity = Severity.ERROR
    default_options: dict = {}
    #: Whole-program rules set this so the engine materializes a
    #: :class:`~repro.analysis.flow.project.ProjectModel` before dispatch.
    requires_project: bool = False

    @abc.abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""

    # -- helpers shared by every rule ------------------------------------

    def option(self, ctx: ModuleContext, name: str):
        """This rule's effective value for option ``name``."""
        return ctx.config.rule_option(self.id, name, self.default_options[name])

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Package gate: true when the module is in a configured package.

        Rules without a ``packages`` option apply everywhere.
        """
        packages = self.default_options.get("packages")
        if packages is None:
            return True
        packages = self.option(ctx, "packages")
        return ctx.package in set(packages)

    def finding(
        self, ctx: ModuleContext, node: ast.AST | None, message: str
    ) -> Finding:
        """Build a finding at ``node`` (or the module top when ``None``)."""
        line = getattr(node, "lineno", 1) if node is not None else 1
        end_line = getattr(node, "end_lineno", None) if node is not None else None
        return Finding(
            path=ctx.path,
            line=line,
            column=getattr(node, "col_offset", 0) if node is not None else 0,
            rule_id=self.id,
            rule_name=self.name,
            severity=ctx.config.severity_for(self.id, self.default_severity),
            message=message,
            end_line=end_line if end_line is not None and end_line > line else None,
        )


def public_name(name: str) -> bool:
    """Whether ``name`` is part of the public surface (no leading ``_``)."""
    return not name.startswith("_")


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Yield every function definition with its enclosing class (or None).

    Nested functions (defined inside another function body) are skipped —
    they are implementation details, not API surface.
    """
    defs: Iterable = (
        (node, None)
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    yield from defs
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, node
