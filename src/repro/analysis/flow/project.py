"""Whole-program project model for the ``dpflow`` analyzer.

:class:`ProjectModel` parses every module of the analyzed set exactly once
and exposes the shared artifacts the flow rules build on: the module table
(dotted name → parsed AST), the module-level symbol tables, and the
intra-package call graph. Serial and parallel analyzers both construct one
project per process, so a file is never re-parsed per rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.base import PACKAGE_ROOT, ImportTracker, package_parts


def module_name_for(parts: Sequence[str]) -> str:
    """Dotted module name for path components below the package root.

    ``("privacy", "audit.py")`` becomes ``"repro.privacy.audit"``;
    ``("privacy", "__init__.py")`` becomes ``"repro.privacy"``. Synthetic
    fixture paths (``"mechanisms/snippet.py"``) resolve the same way so
    unit tests get a working project without a real tree.

    Parameters
    ----------
    parts:
        Path components as produced by
        :func:`repro.analysis.base.package_parts`.
    """
    pieces = [part for part in parts if part not in ("", ".")]
    if pieces and pieces[-1].endswith(".py"):
        stem = pieces[-1][: -len(".py")]
        pieces = pieces[:-1] if stem == "__init__" else pieces[:-1] + [stem]
    return ".".join([PACKAGE_ROOT, *pieces]) if pieces else PACKAGE_ROOT


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed project.

    Parameters
    ----------
    path:
        Path string exactly as supplied by the caller (used in findings).
    name:
        Dotted module name, e.g. ``"repro.privacy.audit"``.
    package_parts:
        Path components below the ``repro`` package root.
    source:
        Raw module source text.
    tree:
        Parsed AST, or ``None`` when the file does not parse.
    error:
        The :class:`SyntaxError` raised by parsing, when ``tree`` is None.
    """

    path: str
    name: str
    package_parts: tuple[str, ...]
    source: str
    tree: ast.Module | None
    error: SyntaxError | None = None
    _imports: ImportTracker | None = field(default=None, repr=False)

    @property
    def imports(self) -> ImportTracker:
        """Lazily-built import alias tracker for this module."""
        if self._imports is None:
            if self.tree is None:
                self._imports = ImportTracker(ast.Module(body=[], type_ignores=[]))
            else:
                self._imports = ImportTracker(self.tree)
        return self._imports

    @property
    def source_lines(self) -> list[str]:
        """The module source split into lines."""
        return self.source.splitlines()


class ProjectModel:
    """All modules of one analyzer invocation, parsed once.

    Parameters
    ----------
    modules:
        Parsed modules in deterministic (collection) order.
    """

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: tuple[ModuleInfo, ...] = tuple(modules)
        self._by_name: dict[str, ModuleInfo] = {}
        for info in self.modules:
            # First definition wins on (synthetic) name collisions so
            # resolution stays deterministic under any file ordering.
            self._by_name.setdefault(info.name, info)
        self._symbols: "object | None" = None
        self._callgraph: "object | None" = None

    @classmethod
    def from_sources(cls, pairs: Iterable[tuple[str, str]]) -> "ProjectModel":
        """Build a project from in-memory ``(source, path)`` pairs.

        Parameters
        ----------
        pairs:
            Module source text and the (possibly virtual) path it lives at.
        """
        modules = []
        for source, path in pairs:
            parts = package_parts(path)
            tree: ast.Module | None
            error: SyntaxError | None
            try:
                tree, error = ast.parse(source, filename=path), None
            except SyntaxError as exc:
                tree, error = None, exc
            modules.append(
                ModuleInfo(
                    path=path,
                    name=module_name_for(parts),
                    package_parts=parts,
                    source=source,
                    tree=tree,
                    error=error,
                )
            )
        return cls(modules)

    @classmethod
    def from_paths(cls, paths: Iterable[str | Path]) -> "ProjectModel":
        """Build a project by reading files from disk.

        Parameters
        ----------
        paths:
            Python files to parse, in the order they should be analyzed.
        """
        return cls.from_sources(
            (Path(path).read_text(encoding="utf-8"), str(path)) for path in paths
        )

    def module(self, name: str) -> ModuleInfo | None:
        """The module registered under dotted ``name`` (or ``None``)."""
        return self._by_name.get(name)

    def module_names(self) -> tuple[str, ...]:
        """Dotted names of every module, in collection order."""
        return tuple(info.name for info in self.modules)

    @property
    def symbols(self) -> "ProjectSymbols":
        """Lazily-built project-wide symbol resolver."""
        if self._symbols is None:
            from repro.analysis.flow.symbols import ProjectSymbols

            self._symbols = ProjectSymbols(self)
        return self._symbols  # type: ignore[return-value]

    @property
    def callgraph(self) -> "CallGraph":
        """Lazily-built intra-package call graph."""
        if self._callgraph is None:
            from repro.analysis.flow.callgraph import CallGraph

            self._callgraph = CallGraph.build(self)
        return self._callgraph  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:
        return f"ProjectModel({len(self.modules)} modules)"


def single_module_project(
    tree: ast.Module, path: str, source_lines: Sequence[str]
) -> ProjectModel:
    """A one-module project for rules driven outside the engine.

    Parameters
    ----------
    tree:
        The already-parsed module.
    path:
        Path string used for module naming and findings.
    source_lines:
        The module's source lines (re-joined for the project record).
    """
    parts = package_parts(path)
    info = ModuleInfo(
        path=path,
        name=module_name_for(parts),
        package_parts=parts,
        source="\n".join(source_lines),
        tree=tree,
    )
    return ProjectModel([info])
